"""Ablation B -- greedy multiplet cover vs exhaustive minimum enumeration.

On small circuits the exact enumeration is feasible and serves as the
optimality reference: how often does the greedy land on a minimum-size
multiplet, and what does enumeration add in recall/resolution?
Timed kernel: greedy-only vs with-enumeration diagnosis.
"""

import _harness
from repro.campaign.tables import format_table
from repro.core.diagnose import DiagnosisConfig, Diagnoser

CONFIGS = {
    "greedy only": DiagnosisConfig(enumerate_exact=False, per_pattern_candidates=0),
    "greedy+enumeration": DiagnosisConfig(per_pattern_candidates=0),
    "full (enum+per-pattern)": DiagnosisConfig(),
}


def test_ablation_cover_search(benchmark, capsys):
    netlist, patterns, datalog = _harness.representative_trial("rca8", k=2)

    def run_all():
        for config in CONFIGS.values():
            Diagnoser(netlist, config).diagnose(patterns, datalog)

    benchmark.pedantic(run_all, rounds=3, iterations=1)

    rows = []
    for label, config in CONFIGS.items():
        for k in (1, 2, 3):
            aggregates = _harness.run_config_with_config(
                "rca8", k=k, config=config, seed=46
            )
            agg = aggregates.get("xcover")
            if agg is None:
                continue
            rows.append((label, k, agg.n_trials) + _harness.method_row(agg))
    text = format_table(
        ["cover search", "k", "trials"] + _harness.METHOD_COLUMNS,
        rows,
        title="Ablation B: multiplet cover search strategies",
    )
    with capsys.disabled():
        _harness.emit("ablation_cover", text)
