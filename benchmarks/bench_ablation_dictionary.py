"""Ablation D -- effect-cause diagnosis vs precomputed fault dictionary.

The classical cost-structure comparison: a cause-effect dictionary
simulates the *whole* fault universe up front (and again for every new
test set), while the effect-cause approaches only simulate inside the
failing device's candidate envelope.  This ablation reports build cost,
per-device cost and accuracy side by side.  Timed kernel: one dictionary
lookup + one proposed-method diagnosis.
"""

import time

import _harness
from repro.campaign.tables import format_table
from repro.core.diagnose import Diagnoser
from repro.core.dictionary import build_dictionary, diagnose_dictionary


def test_ablation_dictionary(benchmark, capsys):
    netlist, patterns, datalog = _harness.representative_trial("alu8", k=1, seed=77)
    dictionary = build_dictionary(netlist, patterns)
    diagnoser = Diagnoser(netlist)

    def both():
        diagnose_dictionary(dictionary, datalog)
        diagnoser.diagnose(patterns, datalog)

    benchmark.pedantic(both, rounds=3, iterations=1)

    rows = []
    for circuit in ("rca8", "alu8", "mul6"):
        for k in (1, 2):
            aggregates = _harness.run_config(
                circuit, k=k, methods=("xcover", "dictionary"), seed=48
            )
            # Dictionary build time (one-off per circuit/test set).
            campaign = _harness.campaign_for(circuit)
            started = time.perf_counter()
            build_dictionary(campaign.netlist, campaign.patterns)
            build_ms = (time.perf_counter() - started) * 1000
            for method, agg in aggregates.items():
                rows.append(
                    (
                        circuit,
                        k,
                        method,
                        f"{build_ms:.0f}" if method == "dictionary" else "0",
                    )
                    + _harness.method_row(agg)
                )
    text = format_table(
        ["circuit", "k", "method", "build ms"] + _harness.METHOD_COLUMNS,
        rows,
        title="Ablation D: effect-cause (proposed) vs precomputed fault dictionary",
    )
    with capsys.disabled():
        _harness.emit("ablation_dictionary", text)
