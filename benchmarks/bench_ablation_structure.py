"""Ablation E -- structural granularity: original vs NAND-remapped logic.

The same logical defects diagnosed on the original mapping and on the
circuit re-expressed in 2-input NANDs.  Finer granularity means more
sites (and more equivalent positions along each path), so resolution
should widen on the remapped netlist while recall holds -- quantifying
how much a diagnosis depends on the cell library's abstraction level.
Timed kernel: one diagnosis per mapping.
"""

import _harness
from repro._rng import make_rng
from repro.campaign.metrics import score_report

from repro.campaign.tables import format_table
from repro.circuit.library import load_circuit
from repro.circuit.netlist import Site
from repro.circuit.transform import to_nand_inv
from repro.core.diagnose import Diagnoser
from repro.faults.models import StuckAtDefect
from repro.sim.patterns import PatternSet
from repro.tester.harness import apply_test

CIRCUIT = "alu8"
TRIALS = 8


def test_ablation_structure(benchmark, capsys):
    original = load_circuit(CIRCUIT)
    mapped = to_nand_inv(original)
    variants = {"original": original, "nand-mapped": mapped}

    pats0 = PatternSet.random(original, 48, seed=3)
    defects0 = [StuckAtDefect(Site(original.topo_order[20]), 0)]
    datalog0 = apply_test(original, pats0, defects0).datalog
    diagnoser0 = Diagnoser(original)
    benchmark.pedantic(
        lambda: diagnoser0.diagnose(pats0, datalog0), rounds=3, iterations=1
    )

    rows = []
    for label, netlist in variants.items():
        patterns = PatternSet(
            netlist.inputs, 48, PatternSet.random(original, 48, seed=3).bits
        )
        diagnoser = Diagnoser(netlist)
        recalls, resolutions, seconds = [], [], []
        # Stem stuck-at defects on nets common to both mappings (branch
        # pins do not survive the remap, stems do).
        common = list(original.topo_order)
        for trial in range(TRIALS):
            rng = make_rng(6000 + trial)
            defects = [
                StuckAtDefect(Site(rng.choice(common)), rng.getrandbits(1))
            ]
            result = apply_test(netlist, patterns, defects)
            if result.datalog.is_passing_device:
                continue
            report = diagnoser.diagnose(patterns, result.datalog)
            outcome = score_report(netlist, report, defects, 0, 0)
            recalls.append(outcome.recall_near)
            resolutions.append(outcome.resolution)
            seconds.append(outcome.seconds)
        n = len(recalls) or 1
        rows.append(
            (
                label,
                netlist.n_gates,
                len(netlist.sites()),
                len(recalls),
                f"{sum(recalls) / n:.2f}",
                f"{sum(resolutions) / n:.1f}",
                f"{sum(seconds) / n * 1000:.0f}",
            )
        )
    text = format_table(
        ["mapping", "gates", "sites", "trials", "recall", "resolution", "ms/diag"],
        rows,
        title=f"Ablation E: diagnosis vs structural granularity ({CIRCUIT}, k=1)",
    )
    with capsys.disabled():
        _harness.emit("ablation_structure", text)
