"""Ablation C -- passing-pattern vindication on/off.

Vindication removes concrete fault models contradicted by observed passing
patterns.  Off, the hypothesis lists bloat with wrong-polarity models; on,
resolution sharpens at a small theoretical risk under masking.  Timed
kernel: both settings on one device.
"""

import _harness
from repro.campaign.tables import format_table
from repro.core.diagnose import DiagnosisConfig, Diagnoser
from repro.core.refine import RefineConfig

CONFIGS = {
    "vindication on": DiagnosisConfig(refine=RefineConfig(vindicate=True)),
    "vindication off": DiagnosisConfig(refine=RefineConfig(vindicate=False)),
}


def _mean_hypotheses(netlist, patterns, datalog, config) -> float:
    report = Diagnoser(netlist, config).diagnose(patterns, datalog)
    if not report.candidates:
        return 0.0
    return sum(len(c.hypotheses) for c in report.candidates) / len(report.candidates)


def test_ablation_vindication(benchmark, capsys):
    netlist, patterns, datalog = _harness.representative_trial("alu8", k=2)

    def both():
        for config in CONFIGS.values():
            Diagnoser(netlist, config).diagnose(patterns, datalog)

    benchmark.pedantic(both, rounds=3, iterations=1)

    rows = []
    for label, config in CONFIGS.items():
        for k in (1, 2):
            aggregates = _harness.run_config_with_config(
                "alu8", k=k, config=config, seed=47
            )
            agg = aggregates.get("xcover")
            if agg is None:
                continue
            mean_h = _mean_hypotheses(netlist, patterns, datalog, config)
            rows.append(
                (label, k, agg.n_trials, f"{mean_h:.1f}") + _harness.method_row(agg)
            )
    text = format_table(
        ["vindication", "k", "trials", "hyp/site"] + _harness.METHOD_COLUMNS,
        rows,
        title="Ablation C: passing-pattern vindication",
    )
    with capsys.disabled():
        _harness.emit("ablation_vindication", text)
