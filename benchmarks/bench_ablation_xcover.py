"""Ablation A -- exact per-test engine vs X-envelope-only engine.

The X-injection envelope is sound but coarse: any wide-cone site can
"explain" everything it reaches.  The exact flip/pin verification is what
buys precision.  This ablation runs the same trials through both engines.
Timed kernel: both engines on one device.
"""

import _harness
from repro.campaign.tables import format_table
from repro.core.diagnose import DiagnosisConfig, Diagnoser

ENGINES = {
    "pertest (exact)": DiagnosisConfig(engine="pertest"),
    "xcover (envelope)": DiagnosisConfig(engine="xcover"),
}


def test_ablation_engines(benchmark, capsys):
    netlist, patterns, datalog = _harness.representative_trial("rca8", k=2)

    def both():
        for config in ENGINES.values():
            Diagnoser(netlist, config).diagnose(patterns, datalog)

    benchmark.pedantic(both, rounds=3, iterations=1)

    rows = []
    for engine_name, config in ENGINES.items():
        for k in (1, 2, 3):
            aggregates = _harness.run_config_with_config(
                "rca8", k=k, config=config, seed=45
            )
            agg = aggregates.get("xcover")
            if agg is None:
                continue
            rows.append((engine_name, k, agg.n_trials) + _harness.method_row(agg))
    text = format_table(
        ["engine", "k", "trials"] + _harness.METHOD_COLUMNS,
        rows,
        title="Ablation A: exact per-test verification vs X-envelope only",
    )
    with capsys.disabled():
        _harness.emit("ablation_xcover", text)
