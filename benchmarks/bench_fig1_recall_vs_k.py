"""Figure 1 -- recall and resolution versus defect multiplicity.

The headline figure: three method curves over k = 1..6.  The expected
shape -- proposed recall stays high and flat, SLAT degrades once
interacting patterns appear, single-fault collapses for k >= 2 -- is the
qualitative reproduction target.  Timed kernel: one k=4 diagnosis.
"""

import _harness
from repro.campaign.tables import format_series
from repro.core.diagnose import Diagnoser

K_SWEEP = (1, 2, 3, 4, 5, 6)
CIRCUIT = "alu8"


def test_fig1_recall_vs_k(benchmark, capsys):
    netlist, patterns, datalog = _harness.representative_trial(CIRCUIT, k=4)
    diagnoser = Diagnoser(netlist)
    benchmark.pedantic(
        lambda: diagnoser.diagnose(patterns, datalog), rounds=3, iterations=1
    )

    recall = {"xcover": [], "slat": [], "single": []}
    resolution = {"xcover": [], "slat": [], "single": []}
    for k in K_SWEEP:
        aggregates = _harness.run_config(
            CIRCUIT, k=k, methods=("xcover", "slat", "single"), interacting=True
        )
        name_map = {"xcover": "xcover", "slat": "slat", "single-stuck-at": "single"}
        for reported, short in name_map.items():
            agg = aggregates.get(reported)
            recall[short].append(agg.recall_near if agg else float("nan"))
            resolution[short].append(agg.resolution if agg else float("nan"))

    text = (
        format_series(
            "k",
            list(K_SWEEP),
            recall,
            title=f"Figure 1a: recall vs #defects ({CIRCUIT}, interacting)",
        )
        + "\n\n"
        + format_series(
            "k",
            list(K_SWEEP),
            resolution,
            title=f"Figure 1b: resolution (candidates) vs #defects ({CIRCUIT})",
        )
    )
    with capsys.disabled():
        _harness.emit("fig1_recall_vs_k", text)
