"""Figure 2 -- diagnosis runtime versus circuit size.

Runtime of one two-defect diagnosis across circuits spanning ~50 to ~900
gates, split into the pipeline stages.  The expected shape: growth is
roughly linear in (candidate-envelope size x failing patterns) -- orders
of magnitude below dictionary construction, which is quadratic in the
fault universe.  The timed kernel is the mid-size diagnosis; the sweep
itself reports wall-clock per circuit.
"""

import time

import _harness
from repro.campaign.driver import provision_patterns
from repro.campaign.samplers import sample_defect_set
from repro.campaign.tables import format_table
from repro.circuit.library import load_circuit
from repro.core.diagnose import Diagnoser
from repro.tester.harness import apply_test

SWEEP = ("rca8", "parity16", "cmp8", "alu8", "mul6", "csa16", "mul8")


def _one_diagnosis(circuit: str, seed: int = 11):
    netlist = load_circuit(circuit)
    patterns = provision_patterns(netlist)
    attempt = 0
    while True:
        defects = sample_defect_set(netlist, 2, seed + attempt)
        result = apply_test(netlist, patterns, defects)
        if result.device_fails:
            return netlist, patterns, result.datalog
        attempt += 1


def test_fig2_runtime_scaling(benchmark, capsys):
    netlist, patterns, datalog = _one_diagnosis("mul6")
    diagnoser = Diagnoser(netlist)
    benchmark.pedantic(
        lambda: diagnoser.diagnose(patterns, datalog), rounds=3, iterations=1
    )

    rows = []
    for circuit in SWEEP:
        n, pats, log = _one_diagnosis(circuit)
        started = time.perf_counter()
        report = Diagnoser(n).diagnose(pats, log)
        elapsed = time.perf_counter() - started
        rows.append(
            (
                circuit,
                n.n_gates,
                pats.n,
                int(report.stats["n_failing_patterns"]),
                int(report.stats["n_candidate_space"]),
                f"{report.stats['seconds_cover'] * 1000:.0f}",
                f"{report.stats['seconds_refine'] * 1000:.0f}",
                f"{elapsed * 1000:.0f}",
            )
        )
    text = format_table(
        ["circuit", "gates", "patterns", "failing", "cand.space",
         "cover ms", "refine ms", "total ms"],
        rows,
        title="Figure 2: diagnosis runtime vs circuit size (k=2)",
    )
    with capsys.disabled():
        _harness.emit("fig2_runtime_scaling", text)
