"""Figure 3 -- diagnosis resolution versus test-set size.

More patterns means more exculpatory and distinguishing evidence: the
candidate count (resolution) should shrink and recall hold as the applied
test set grows.  Timed kernel: diagnosis under the largest pattern set.
"""

import _harness
from repro.campaign.metrics import score_report
from repro.campaign.samplers import sample_defect_set
from repro.campaign.tables import format_series
from repro.circuit.library import load_circuit
from repro.core.diagnose import Diagnoser
from repro.sim.patterns import PatternSet
from repro.tester.harness import apply_test

CIRCUIT = "alu8"
SIZES = (8, 16, 32, 64, 128)
TRIALS = 6


def test_fig3_testset_size(benchmark, capsys):
    netlist = load_circuit(CIRCUIT)
    big = PatternSet.random(netlist, max(SIZES), seed=71)
    diagnoser = Diagnoser(netlist)

    defects0 = sample_defect_set(netlist, 2, seed=500)
    datalog0 = apply_test(netlist, big, defects0).datalog
    benchmark.pedantic(
        lambda: diagnoser.diagnose(big, datalog0), rounds=3, iterations=1
    )

    recall_series: list[float] = []
    resolution_series: list[float] = []
    for size in SIZES:
        patterns = big.subset(list(range(size)))
        recalls, resolutions = [], []
        for trial in range(TRIALS):
            defects = sample_defect_set(netlist, 2, seed=900 + trial)
            result = apply_test(netlist, patterns, defects)
            if result.datalog.is_passing_device:
                continue
            report = diagnoser.diagnose(patterns, result.datalog)
            outcome = score_report(netlist, report, defects, 0, 0)
            recalls.append(outcome.recall_near)
            resolutions.append(outcome.resolution)
        recall_series.append(sum(recalls) / len(recalls) if recalls else float("nan"))
        resolution_series.append(
            sum(resolutions) / len(resolutions) if resolutions else float("nan")
        )

    text = format_series(
        "patterns",
        list(SIZES),
        {"recall": recall_series, "resolution": resolution_series},
        title=f"Figure 3: recall / resolution vs test-set size ({CIRCUIT}, k=2)",
    )
    with capsys.disabled():
        _harness.emit("fig3_testset_size", text)
