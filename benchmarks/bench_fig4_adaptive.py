"""Figure 4 (extension) -- adaptive diagnosis resolution improvement.

The paper-family extension implemented in :mod:`repro.core.distinguish`:
when the initial diagnosis leaves several equivalent candidates, generate
distinguishing patterns, re-test the (simulated) device and re-diagnose.
Reports resolution before/after over a set of deliberately short initial
test sets (short tests leave the most ambiguity).  Timed kernel: one full
adaptive session.
"""

import _harness
from repro.campaign.samplers import sample_defect_set
from repro.campaign.tables import format_table
from repro.circuit.library import load_circuit
from repro.core.distinguish import adaptive_diagnose
from repro.faults.injection import FaultyCircuit
from repro.sim.patterns import PatternSet

CIRCUIT = "alu8"
TRIALS = 8
INITIAL_PATTERNS = 10


def _session(netlist, seed):
    """Sample until the defect is visible on the short initial test."""
    patterns = PatternSet.random(netlist, INITIAL_PATTERNS, seed=seed)
    golden = {
        out: vec
        for out, vec in FaultyCircuit(netlist, []).simulate_outputs(patterns).items()
    }
    attempt = 0
    while True:
        defects = sample_defect_set(netlist, 1, seed=seed + 7919 * attempt)
        dut = FaultyCircuit(netlist, defects)
        if dut.simulate_outputs(patterns) != golden:
            return patterns, dut, defects
        attempt += 1


def test_fig4_adaptive_resolution(benchmark, capsys):
    netlist = load_circuit(CIRCUIT)
    patterns, dut, _defects = _session(netlist, seed=1234)
    benchmark.pedantic(
        lambda: adaptive_diagnose(
            netlist, patterns, dut.simulate_outputs, target_resolution=3, seed=9
        ),
        rounds=3,
        iterations=1,
    )

    rows = []
    improved = 0
    for trial in range(TRIALS):
        pats, device, defects = _session(netlist, seed=3000 + trial)
        if device.simulate_outputs(pats) == {}:  # pragma: no cover
            continue
        result = adaptive_diagnose(
            netlist, pats, device.simulate_outputs, target_resolution=3, seed=trial
        )
        truth_nets = {s.net for d in defects for s in d.ground_truth_sites()}
        located = bool(
            truth_nets & {c.site.net for c in result.report.candidates}
        )
        if result.final_resolution < result.initial_resolution:
            improved += 1
        rows.append(
            (
                trial,
                result.initial_resolution,
                result.final_resolution,
                result.patterns_added,
                result.rounds,
                located,
            )
        )
    text = format_table(
        ["trial", "res before", "res after", "patterns added", "rounds", "located"],
        rows,
        title=(
            f"Figure 4: adaptive diagnosis on {CIRCUIT} "
            f"({INITIAL_PATTERNS}-pattern initial tests, k=1) -- "
            f"{improved}/{len(rows)} trials sharpened"
        ),
    )
    with capsys.disabled():
        _harness.emit("fig4_adaptive", text)
