"""Figure 5 (extension) -- diagnosis quality under response compaction.

Industrial responses pass through XOR space compactors; diagnosis then
sees parity groups instead of outputs.  Sweeping the signature count from
"no compaction" down to one pin quantifies the observability/recall
trade.  Timed kernel: one diagnosis on the 2-signature circuit.
"""

import _harness
from repro.campaign.metrics import score_report
from repro.campaign.samplers import sample_defect_set
from repro.campaign.tables import format_table
from repro.circuit.library import load_circuit
from repro.core.diagnose import Diagnoser
from repro.sim.patterns import PatternSet
from repro.tester.compactor import attach_compactor
from repro.tester.harness import apply_test

CIRCUIT = "rca8"  # 9 outputs
SIGNATURES = (9, 4, 2, 1)
TRIALS = 8
PATTERNS = 48


def test_fig5_compaction(benchmark, capsys):
    netlist = load_circuit(CIRCUIT)
    compacted2 = attach_compactor(netlist, 2, seed=6)
    pats2 = PatternSet(compacted2.inputs, PATTERNS, PatternSet.random(netlist, PATTERNS, seed=61).bits)
    defects0 = sample_defect_set(netlist, 2, seed=611)
    datalog0 = apply_test(compacted2, pats2, defects0).datalog
    diagnoser2 = Diagnoser(compacted2)
    benchmark.pedantic(
        lambda: diagnoser2.diagnose(pats2, datalog0), rounds=3, iterations=1
    )

    base_patterns = PatternSet.random(netlist, PATTERNS, seed=61)
    rows = []
    for n_sig in SIGNATURES:
        circuit = attach_compactor(netlist, n_sig, seed=6)
        pats = PatternSet(circuit.inputs, base_patterns.n, base_patterns.bits)
        diagnoser = Diagnoser(circuit)
        recalls, resolutions, successes, aliased = [], [], [], 0
        for trial in range(TRIALS):
            defects = sample_defect_set(netlist, 2, seed=700 + trial)
            result = apply_test(circuit, pats, defects)
            if result.datalog.is_passing_device:
                aliased += 1
                continue
            report = diagnoser.diagnose(pats, result.datalog)
            outcome = score_report(circuit, report, defects, 0, 0)
            recalls.append(outcome.recall_near)
            resolutions.append(outcome.resolution)
            successes.append(1.0 if outcome.success else 0.0)
        n = len(recalls) or 1
        rows.append(
            (
                n_sig,
                f"{len(netlist.outputs) / n_sig:.1f}x",
                len(recalls),
                aliased,
                f"{sum(recalls) / n:.2f}",
                f"{sum(resolutions) / n:.1f}",
                f"{sum(successes) / n:.2f}",
            )
        )
    text = format_table(
        ["signatures", "compaction", "trials", "aliased-out", "recall",
         "resolution", "success"],
        rows,
        title=f"Figure 5: diagnosis under XOR response compaction ({CIRCUIT}, k=2)",
    )
    with capsys.disabled():
        _harness.emit("fig5_compaction", text)
