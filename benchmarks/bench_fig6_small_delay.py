"""Figure 6 (extension) -- small-delay defects: detection and localization
versus defect size.

Sweeps the extra delay of a small-delay defect (in units of the clock
period) and reports how many trials become detectable at zero-slack
clocking and how well the timing-aware post-pass localizes the slow net.
Expected shape: a detection knee once the delta exceeds the slack of the
defect's typical sensitized paths, with localization quality following
detection.  Timed kernel: one timed test application + delay diagnosis.
"""

import _harness
from repro.campaign.tables import format_table
from repro.circuit.library import load_circuit
from repro.circuit.netlist import Site
from repro.core.delaydiag import diagnose_small_delay
from repro.sim.patterns import PatternSet
from repro.sim.timing import SmallDelayDefect, apply_delay_test, arrival_times
from repro._rng import make_rng

CIRCUIT = "rca8"
DELTA_FRACTIONS = (0.1, 0.25, 0.5, 1.0)
TRIALS = 10
N_PATTERNS = 192


def test_fig6_small_delay(benchmark, capsys):
    netlist = load_circuit(CIRCUIT)
    patterns = PatternSet.random(netlist, N_PATTERNS, seed=21)
    period = max(arrival_times(netlist).values())

    bench_defect = SmallDelayDefect(Site(netlist.topo_order[10]), period * 0.5)

    def kernel():
        result = apply_delay_test(netlist, patterns, [bench_defect], period=period)
        if not result.datalog.is_passing_device:
            diagnose_small_delay(netlist, patterns, result.datalog, period)

    benchmark.pedantic(kernel, rounds=3, iterations=1)

    rng = make_rng(777)
    stems = [net for net in netlist.topo_order]
    sites = [Site(rng.choice(stems)) for _ in range(TRIALS)]

    rows = []
    for fraction in DELTA_FRACTIONS:
        delta = period * fraction
        detected = 0
        located = 0
        ranks = []
        for site in sites:
            result = apply_delay_test(
                netlist, patterns, [SmallDelayDefect(site, delta)], period=period
            )
            if result.datalog.is_passing_device:
                continue
            detected += 1
            ranked = diagnose_small_delay(netlist, patterns, result.datalog, period)
            nets = [c.net for c in ranked]
            if site.net in nets:
                located += 1
                ranks.append(nets.index(site.net) + 1)
        rows.append(
            (
                f"{fraction:.2f}",
                f"{delta:.1f}",
                TRIALS,
                detected,
                located,
                f"{sum(ranks) / len(ranks):.1f}" if ranks else "-",
            )
        )
    text = format_table(
        ["delta/period", "delta", "trials", "detected", "located", "avg rank"],
        rows,
        title=(
            f"Figure 6: small-delay defects on {CIRCUIT} at zero-slack "
            f"clocking (period={period:.0f})"
        ),
    )
    with capsys.disabled():
        _harness.emit("fig6_small_delay", text)
