"""Figure 7 (extension) -- diagnosis resolution versus N-detect level.

Each additional detection of a fault exercises a different sensitization
context, separating candidates a 1-detect set leaves tied.  Expected
shape: recall already saturated at N=1, resolution (and the
indistinguishability-class count) shrinking as N grows.  Timed kernel:
one diagnosis under the N=4 set.
"""

import _harness
from repro.atpg.ndetect import generate_ndetect_tests
from repro.campaign.metrics import score_report
from repro.campaign.samplers import sample_defect_set
from repro.campaign.tables import format_table
from repro.circuit.library import load_circuit
from repro.core.diagnose import Diagnoser
from repro.core.equivalence import classed_resolution
from repro.tester.harness import apply_test

CIRCUIT = "alu8"
N_LEVELS = (1, 2, 4)
TRIALS = 8


def test_fig7_ndetect_resolution(benchmark, capsys):
    netlist = load_circuit(CIRCUIT)
    pattern_sets = {
        n: generate_ndetect_tests(netlist, n, seed=8).patterns for n in N_LEVELS
    }
    diagnoser = Diagnoser(netlist)

    defects0 = sample_defect_set(netlist, 1, seed=42)
    big = pattern_sets[max(N_LEVELS)]
    datalog0 = apply_test(netlist, big, defects0).datalog
    benchmark.pedantic(
        lambda: diagnoser.diagnose(big, datalog0), rounds=3, iterations=1
    )

    rows = []
    for n in N_LEVELS:
        patterns = pattern_sets[n]
        recalls, resolutions, classes = [], [], []
        for trial in range(TRIALS):
            defects = sample_defect_set(netlist, 1, seed=5000 + trial)
            result = apply_test(netlist, patterns, defects)
            if result.datalog.is_passing_device:
                continue
            report = diagnoser.diagnose(patterns, result.datalog)
            outcome = score_report(netlist, report, defects, 0, 0)
            recalls.append(outcome.recall_near)
            resolutions.append(outcome.resolution)
            classes.append(classed_resolution(netlist, patterns, report))
        count = len(recalls) or 1
        rows.append(
            (
                n,
                patterns.n,
                len(recalls),
                f"{sum(recalls) / count:.2f}",
                f"{sum(resolutions) / count:.1f}",
                f"{sum(classes) / count:.1f}",
            )
        )
    text = format_table(
        ["N-detect", "patterns", "trials", "recall", "resolution",
         "distinct classes"],
        rows,
        title=f"Figure 7: diagnosis sharpness vs N-detect level ({CIRCUIT}, k=1)",
    )
    with capsys.disabled():
        _harness.emit("fig7_ndetect", text)
