"""Figure 8 (extension) -- diagnosis quality versus fail-log truncation.

Production testers stop logging after a configured number of failing
cycles; diagnosis then sees a prefix of the evidence with the rest of the
test *unobserved* (not passing!).  Expected shape: recall degrades
gracefully as the log shrinks -- a couple of failing patterns already
locate most defects -- while resolution widens (less distinguishing and
exculpatory evidence).  Timed kernel: diagnosis from a 2-record log.
"""

import _harness
from repro.campaign.metrics import score_report
from repro.campaign.samplers import sample_defect_set
from repro.campaign.tables import format_table
from repro.circuit.library import load_circuit
from repro.core.diagnose import Diagnoser
from repro.tester.harness import apply_test

CIRCUIT = "alu8"
LIMITS = (None, 8, 4, 2, 1)
TRIALS = 8


def test_fig8_log_truncation(benchmark, capsys):
    netlist = load_circuit(CIRCUIT)
    campaign = _harness.campaign_for(CIRCUIT)
    patterns = campaign.patterns
    diagnoser = Diagnoser(netlist)

    defects0 = sample_defect_set(netlist, 2, seed=404)
    datalog0 = apply_test(netlist, patterns, defects0).datalog.truncate(
        max_failing_patterns=2
    )
    benchmark.pedantic(
        lambda: diagnoser.diagnose(patterns, datalog0), rounds=3, iterations=1
    )

    rows = []
    for limit in LIMITS:
        recalls, resolutions, kept = [], [], []
        for trial in range(TRIALS):
            defects = sample_defect_set(netlist, 2, seed=8000 + trial)
            result = apply_test(netlist, patterns, defects)
            if result.datalog.is_passing_device:
                continue
            datalog = (
                result.datalog
                if limit is None
                else result.datalog.truncate(max_failing_patterns=limit)
            )
            if datalog.is_passing_device:
                continue
            report = diagnoser.diagnose(patterns, datalog)
            outcome = score_report(netlist, report, defects, 0, 0)
            recalls.append(outcome.recall_near)
            resolutions.append(outcome.resolution)
            kept.append(len(datalog.failing_indices))
        n = len(recalls) or 1
        rows.append(
            (
                "full" if limit is None else limit,
                f"{sum(kept) / n:.1f}",
                len(recalls),
                f"{sum(recalls) / n:.2f}",
                f"{sum(resolutions) / n:.1f}",
            )
        )
    text = format_table(
        ["log limit", "avg failing kept", "trials", "recall", "resolution"],
        rows,
        title=f"Figure 8: diagnosis vs ATE fail-log truncation ({CIRCUIT}, k=2)",
    )
    with capsys.disabled():
        _harness.emit("fig8_truncation", text)
