"""Kernel micro-benchmarks (performance regression guard).

Not a paper table: these time the primitives everything else is built
on, so a performance regression in a core loop is caught here rather
than as a mysterious slowdown of the experiment harness.

Two entry points:

- ``pytest benchmarks/bench_kernels.py`` -- pytest-benchmark timings of
  the primitives under the active backend (``REPRO_SIM``).
- ``python benchmarks/bench_kernels.py`` -- the compiled-vs-interpreted
  comparison script.  Times every kernel primitive and a full end-to-end
  diagnosis under both backends (caches reset around every measured run,
  so the compiled numbers include codegen), writes
  ``benchmarks/results/BENCH_kernels.json`` and optionally enforces
  minimum speedups (the CI perf-smoke job runs it with
  ``--assert-kernel-speedup 1.5``).
"""

import argparse
import json
import math
import os
import sys
import time
from pathlib import Path

import pytest

import _harness  # noqa: F401  (keeps sys.path behavior identical to other benches)
from _harness import ACCURACY_CIRCUITS, representative_trial
from repro.circuit.library import load_circuit
from repro.circuit.netlist import Site
from repro.core.backtrace import flip_criticality
from repro.sim.cache import reset_sim_caches
from repro.sim.compile import base_slots, lifted_base
from repro.sim.logicsim import simulate
from repro.sim.packed import active_packed, packed_patterns
from repro.sim.patterns import PatternSet
from repro.sim.threeval import simulate3, x_injection_reach
from repro.sim.event import resimulate_with_overrides

KERNEL_CIRCUITS = ("mul8",) + ACCURACY_CIRCUITS


@pytest.fixture(scope="module")
def workload():
    netlist = load_circuit("mul8")
    patterns = PatternSet.random(netlist, 64, seed=1)
    base = simulate(netlist, patterns)
    return netlist, patterns, base


def test_kernel_full_simulation(benchmark, workload):
    netlist, patterns, _base = workload
    benchmark(simulate, netlist, patterns)


def test_kernel_threeval_simulation(benchmark, workload):
    netlist, patterns, _base = workload
    benchmark(simulate3, netlist, patterns)


def test_kernel_cone_resimulation(benchmark, workload):
    netlist, patterns, base = workload
    site = Site(netlist.topo_order[len(netlist.topo_order) // 4])
    flipped = (base[site.net] ^ patterns.mask) & patterns.mask
    benchmark(
        resimulate_with_overrides, netlist, base, {site: flipped}, patterns.mask
    )


def test_kernel_x_injection(benchmark, workload):
    netlist, patterns, base = workload
    site = Site(netlist.topo_order[len(netlist.topo_order) // 4])
    benchmark(x_injection_reach, netlist, patterns, site, base)


def test_kernel_flip_criticality(benchmark, workload):
    netlist, patterns, base = workload
    site = Site(netlist.topo_order[10])
    benchmark(flip_criticality, netlist, patterns, site, base)


# ---------------------------------------------------------------------------
# Compiled-vs-interpreted comparison script
# ---------------------------------------------------------------------------

RESULT_PATH = Path(__file__).parent / "results" / "BENCH_kernels.json"

BACKENDS = ("interp", "compiled")


def _best_of(fn, repeats: int = 5) -> float:
    """Minimum wall-clock of ``repeats`` calls (noise-robust estimator)."""
    fn()  # warm up allocator / kernel compilation outside the best-of
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _with_backend(backend: str):
    os.environ["REPRO_SIM"] = backend
    reset_sim_caches()


def _bench_primitives(circuit: str, repeats: int) -> dict:
    """Per-primitive timings of one circuit under both backends."""
    netlist = load_circuit(circuit)
    patterns = PatternSet.random(netlist, 64, seed=1)
    site = Site(netlist.topo_order[len(netlist.topo_order) // 4])
    timings: dict[str, dict[str, float]] = {}
    for backend in BACKENDS:
        _with_backend(backend)
        base = simulate(netlist, patterns)
        flipped = (base[site.net] ^ patterns.mask) & patterns.mask
        timings[backend] = {
            "full_pass": _best_of(lambda: simulate(netlist, patterns), repeats),
            "threeval_pass": _best_of(
                lambda: simulate3(netlist, patterns), repeats
            ),
            "cone_resim": _best_of(
                lambda: resimulate_with_overrides(
                    netlist, base, {site: flipped}, patterns.mask
                ),
                repeats,
            ),
            "x_reach": _best_of(
                lambda: x_injection_reach(netlist, patterns, site, base), repeats
            ),
        }
    speedups = {
        name: timings["interp"][name] / timings["compiled"][name]
        for name in timings["interp"]
    }
    geomean = math.exp(sum(math.log(s) for s in speedups.values()) / len(speedups))
    return {
        "circuit": circuit,
        "n_gates": netlist.n_gates,
        "n_patterns": patterns.n,
        "seconds": timings,
        "speedups": speedups,
        "kernel_speedup": geomean,
    }


def _bench_packed_kernels(circuit: str, repeats: int) -> dict:
    """Kernel-level packed-vs-compiled timings of one circuit.

    The engine-level entry points share their dispatch, validation and
    result-dict assembly across backends, so at these circuit sizes the
    fixed overhead hides the kernel gap.  This times exactly the work that
    *differs* per backend: the compiled side pays its per-pass state prep
    (slot-list build / base copy) plus the guarded kernel walk, the packed
    side runs the word kernels and warm specialized cone kernels (codegen
    and the specialization threshold are paid outside the timed region,
    which ``_best_of``'s warm-up call already guarantees).
    """
    netlist = load_circuit(circuit)
    patterns = PatternSet.random(netlist, 64, seed=1)
    mask = patterns.mask
    _with_backend("packed")
    pk = active_packed(netlist)
    kernels = pk.kernels
    program = kernels.program
    base_vals = simulate(netlist, patterns)
    base = base_slots(program, base_vals)
    lifted_on, lifted_zr = lifted_base(program, base_vals, mask)
    pw = packed_patterns(patterns)
    wmask = pw.masks[0]
    vin = pw.in_words[0]
    vo, vz = pw.lifted[0]
    bits = patterns.bits
    inputs = netlist.inputs
    n_slots = program.n_slots

    # Cone primitives are averaged over gate stems spread across the
    # topological order: the per-test engines resim *every* candidate
    # site, so a single mid-topo cone (the largest kind) is not the
    # representative workload.
    gate_nets = [n for n in netlist.topo_order if n in netlist.gates]
    cones = []
    for i in range(1, 6):
        site_net = gate_nets[(i * len(gate_nets)) // 6]
        slot = program.slot_of[site_net]
        cone = netlist.fanout_cone([site_net])
        cone_set, _ = kernels.cone_slots(cone)
        flipped = (base_vals[site_net] ^ mask) & mask
        rk = xk = None
        for _ in range(4):  # cross the use-count specialization threshold
            rk = pk.resim_special(cone, (slot,), (), ())
            xk = pk.xreach_special(cone, slot, None)
        assert rk is not None and xk is not None
        cones.append((slot, cone_set, {slot: flipped}, rk, xk))
    pp: dict[int, int] = {}

    c_full2 = kernels.fn("full2")
    c_full3 = kernels.fn("full3")
    c_cone2 = kernels.fn("cone2_s")
    c_cone3 = kernels.fn("cone3_s")
    p_full2 = pk.fn("full2")
    p_full3 = pk.fn("full3")

    def compiled_full():
        slots = [0] * n_slots
        for s, net in enumerate(inputs):
            slots[s] = bits[net]
        c_full2(slots, mask)

    def compiled_threeval():
        ones = [0] * n_slots
        zeros = [0] * n_slots
        for s, net in enumerate(inputs):
            b = bits[net] & mask
            ones[s] = b
            zeros[s] = b ^ mask
        c_full3(ones, zeros, mask)

    def compiled_cone():
        for _slot, cone_set, st, _rk, _xk in cones:
            slots = base.copy()
            c_cone2(slots, mask, cone_set, st)

    def compiled_xreach():
        for slot, cone_set, _st, _rk, _xk in cones:
            ones = lifted_on.copy()
            zeros = lifted_zr.copy()
            c_cone3(ones, zeros, mask, cone_set, {slot: mask}, {slot: mask})

    def packed_cone():
        for _slot, _cone_set, st, rk, _xk in cones:
            rk.fn(base, mask, st, pp)

    def packed_xreach():
        for _slot, _cone_set, _st, _rk, xk in cones:
            xk.fn(lifted_on, lifted_zr, mask)

    pairs = {
        "full_pass": (compiled_full, lambda: p_full2(vin, wmask)),
        "threeval_pass": (compiled_threeval, lambda: p_full3(vo, vz, wmask)),
        "cone_resim": (compiled_cone, packed_cone),
        "x_reach": (compiled_xreach, packed_xreach),
    }
    # The kernels run in microseconds; a single call is below the clock's
    # reliable resolution, so each timing is an inner loop of calls.
    iters = 100
    timings: dict[str, dict[str, float]] = {"compiled": {}, "packed": {}}
    for name, (cfn, pfn) in pairs.items():

        def loop(fn):
            for _ in range(iters):
                fn()

        timings["compiled"][name] = _best_of(lambda: loop(cfn), repeats) / iters
        timings["packed"][name] = _best_of(lambda: loop(pfn), repeats) / iters
    speedups = {
        name: timings["compiled"][name] / timings["packed"][name]
        for name in timings["compiled"]
    }
    # The floor metric covers the primitives a diagnosis *repeats* --
    # thousands of cone resims / X injections per report.  The full passes
    # run once per (netlist, patterns) context (SimContext memoizes the
    # base vector), so their speedup is reported but not gated.
    gated = ("cone_resim", "x_reach")
    geomean = math.exp(sum(math.log(speedups[n]) for n in gated) / len(gated))
    return {
        "circuit": circuit,
        "n_gates": netlist.n_gates,
        "n_patterns": patterns.n,
        "seconds": timings,
        "speedups": speedups,
        "packed_speedup": geomean,
        "packed_speedup_over": list(gated),
    }


def _bench_e2e(circuit: str, repeats: int) -> dict:
    """Cold-start end-to-end diagnosis wall-clock under both backends."""
    from repro.core.diagnose import Diagnoser

    netlist, patterns, datalog = representative_trial(circuit)
    seconds: dict[str, float] = {}
    for backend in BACKENDS:
        os.environ["REPRO_SIM"] = backend

        def run():
            # Cold caches inside the timed region: the compiled number pays
            # for its own codegen, the honest end-to-end comparison.
            reset_sim_caches()
            Diagnoser(netlist).diagnose(patterns, datalog)

        seconds[backend] = _best_of(run, repeats)
    return {
        "circuit": circuit,
        "n_gates": netlist.n_gates,
        "n_patterns": patterns.n,
        "seconds": seconds,
        "e2e_speedup": seconds["interp"] / seconds["compiled"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare compiled simulation kernels against the "
        "interpreted oracle and write BENCH_kernels.json."
    )
    parser.add_argument(
        "--output", type=Path, default=RESULT_PATH, help="JSON artifact path"
    )
    parser.add_argument(
        "--repeats", type=int, default=5, help="best-of repetitions per timing"
    )
    parser.add_argument(
        "--assert-kernel-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless every circuit's kernel speedup (geomean over "
        "primitives) is at least X",
    )
    parser.add_argument(
        "--assert-e2e-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless every circuit's end-to-end speedup is at least X",
    )
    parser.add_argument(
        "--assert-packed-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless every circuit's packed-over-compiled kernel "
        "speedup (geomean over primitives) is at least X",
    )
    args = parser.parse_args(argv)

    saved_backend = os.environ.get("REPRO_SIM")
    try:
        kernels = [_bench_primitives(c, args.repeats) for c in KERNEL_CIRCUITS]
        packed = [
            _bench_packed_kernels(c, args.repeats) for c in KERNEL_CIRCUITS
        ]
        e2e = [_bench_e2e(c, args.repeats) for c in ACCURACY_CIRCUITS]
    finally:
        if saved_backend is None:
            os.environ.pop("REPRO_SIM", None)
        else:
            os.environ["REPRO_SIM"] = saved_backend
        reset_sim_caches()

    payload = {
        "python": sys.version.split()[0],
        "repeats": args.repeats,
        "kernels": kernels,
        "packed_kernels": packed,
        "e2e": e2e,
        "min_kernel_speedup": min(k["kernel_speedup"] for k in kernels),
        "min_packed_speedup": min(p["packed_speedup"] for p in packed),
        "min_e2e_speedup": min(t["e2e_speedup"] for t in e2e),
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    for entry in kernels:
        print(
            f"{entry['circuit']:>6}  kernel speedup {entry['kernel_speedup']:.2f}x  "
            + "  ".join(
                f"{name} {s:.2f}x" for name, s in entry["speedups"].items()
            )
        )
    for entry in packed:
        print(
            f"{entry['circuit']:>6}  packed speedup {entry['packed_speedup']:.2f}x  "
            + "  ".join(
                f"{name} {s:.2f}x" for name, s in entry["speedups"].items()
            )
        )
    for entry in e2e:
        print(
            f"{entry['circuit']:>6}  e2e {entry['seconds']['interp'] * 1000:.0f}ms"
            f" -> {entry['seconds']['compiled'] * 1000:.0f}ms"
            f"  ({entry['e2e_speedup']:.2f}x)"
        )
    print(f"wrote {args.output}")

    failed = False
    if (
        args.assert_kernel_speedup is not None
        and payload["min_kernel_speedup"] < args.assert_kernel_speedup
    ):
        print(
            f"FAIL: kernel speedup {payload['min_kernel_speedup']:.2f}x "
            f"< required {args.assert_kernel_speedup:.2f}x"
        )
        failed = True
    if (
        args.assert_packed_speedup is not None
        and payload["min_packed_speedup"] < args.assert_packed_speedup
    ):
        print(
            f"FAIL: packed speedup {payload['min_packed_speedup']:.2f}x "
            f"< required {args.assert_packed_speedup:.2f}x"
        )
        failed = True
    if (
        args.assert_e2e_speedup is not None
        and payload["min_e2e_speedup"] < args.assert_e2e_speedup
    ):
        print(
            f"FAIL: e2e speedup {payload['min_e2e_speedup']:.2f}x "
            f"< required {args.assert_e2e_speedup:.2f}x"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
