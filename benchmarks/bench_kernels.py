"""Kernel micro-benchmarks (performance regression guard).

Not a paper table: these time the primitives everything else is built
on, so a performance regression in a core loop is caught here rather
than as a mysterious slowdown of the experiment harness.
"""

import pytest

import _harness  # noqa: F401  (keeps sys.path behavior identical to other benches)
from repro.circuit.library import load_circuit
from repro.circuit.netlist import Site
from repro.core.backtrace import flip_criticality
from repro.sim.logicsim import simulate
from repro.sim.patterns import PatternSet
from repro.sim.threeval import simulate3, x_injection_reach
from repro.sim.event import resimulate_with_overrides


@pytest.fixture(scope="module")
def workload():
    netlist = load_circuit("mul8")
    patterns = PatternSet.random(netlist, 64, seed=1)
    base = simulate(netlist, patterns)
    return netlist, patterns, base


def test_kernel_full_simulation(benchmark, workload):
    netlist, patterns, _base = workload
    benchmark(simulate, netlist, patterns)


def test_kernel_threeval_simulation(benchmark, workload):
    netlist, patterns, _base = workload
    benchmark(simulate3, netlist, patterns)


def test_kernel_cone_resimulation(benchmark, workload):
    netlist, patterns, base = workload
    site = Site(netlist.topo_order[len(netlist.topo_order) // 4])
    flipped = (base[site.net] ^ patterns.mask) & patterns.mask
    benchmark(
        resimulate_with_overrides, netlist, base, {site: flipped}, patterns.mask
    )


def test_kernel_x_injection(benchmark, workload):
    netlist, patterns, base = workload
    site = Site(netlist.topo_order[len(netlist.topo_order) // 4])
    benchmark(x_injection_reach, netlist, patterns, site, base)


def test_kernel_flip_criticality(benchmark, workload):
    netlist, patterns, base = workload
    site = Site(netlist.topo_order[10])
    benchmark(flip_criticality, netlist, patterns, site, base)
