"""Greedy-vs-exact cover optimality gap (correctness regression guard).

Not a paper table: this sweeps seeded multi-defect instances on the
medium-tier circuits and compares the greedy per-test cover against the
implicit-hitting-set engine (:mod:`repro.core.hitting`):

- a **gap** instance is one where the exact engine proves a strictly
  smaller multiplet than the greedy settled on -- the reason the exact
  engine exists; the rate is reported,
- a **violation** is an instance where the greedy found a *smaller*
  complete cover than the "provably minimum" exact cardinality.  That
  would disprove the engine's optimality claim, so the count must be zero
  always.

Two entry points:

- ``pytest benchmarks/bench_optimality_gap.py`` -- pytest-benchmark timing
  of one representative exact search.
- ``python benchmarks/bench_optimality_gap.py`` -- the sweep script.
  Writes ``benchmarks/results/BENCH_optimality_gap.json``; the CI
  optimality-gap job runs it with ``--assert-optimal`` (every instance
  must report ``optimal`` and zero violations).
"""

import argparse
import json
import sys
import time
from pathlib import Path

import _harness
from _harness import ACCURACY_CIRCUITS
from repro.campaign.driver import provision_patterns
from repro.campaign.samplers import sample_defect_set
from repro.circuit.library import load_circuit
from repro.core.backtrace import candidate_sites
from repro.core.budget import OPTIMALITY_OPTIMAL
from repro.core.cover import greedy_pertest_cover
from repro.core.hitting import hitting_set_cover
from repro.core.pertest import build_pertest
from repro.sim.logicsim import simulate
from repro.tester.harness import apply_test

RESULTS = Path(__file__).parent / "results"


def _instances(circuit: str, k: int, trials: int, seed: int):
    """Deterministic failing (netlist, patterns, datalog) instances."""
    netlist = load_circuit(circuit)
    patterns = provision_patterns(netlist)
    produced = 0
    attempt = 0
    while produced < trials:
        defects = sample_defect_set(netlist, k, seed + attempt)
        attempt += 1
        result = apply_test(netlist, patterns, defects)
        if not result.device_fails:
            continue
        produced += 1
        yield netlist, patterns, result.datalog, seed + attempt - 1


def _compare(netlist, patterns, datalog):
    base = simulate(netlist, patterns)
    sites = candidate_sites(netlist, datalog)
    analysis = build_pertest(netlist, patterns, datalog, sites, base)
    greedy = greedy_pertest_cover(analysis)
    started = time.perf_counter()
    exact = hitting_set_cover(
        analysis,
        seed_sites=greedy.sites + greedy.pair_candidates,
        incumbent=greedy.sites if greedy.complete else None,
    )
    return greedy, exact, time.perf_counter() - started


def run_sweep(trials: int, seed: int) -> dict:
    rows = []
    for circuit in ACCURACY_CIRCUITS:
        for k in (1, 2, 3):
            for netlist, patterns, datalog, inst_seed in _instances(
                circuit, k, trials, seed
            ):
                greedy, exact, seconds = _compare(netlist, patterns, datalog)
                greedy_size = len(greedy.sites) if greedy.complete else None
                rows.append(
                    {
                        "circuit": circuit,
                        "k": k,
                        "seed": inst_seed,
                        "greedy_size": greedy_size,
                        "exact_cardinality": exact.cardinality,
                        "exact_covers": len(exact.covers),
                        "optimality": exact.optimality,
                        "verifications": exact.verifications,
                        "seconds": round(seconds, 4),
                    }
                )
    complete = [r for r in rows if r["greedy_size"] is not None and r["exact_covers"]]
    gaps = [r for r in complete if r["greedy_size"] > r["exact_cardinality"]]
    violations = [r for r in complete if r["greedy_size"] < r["exact_cardinality"]]
    non_optimal = [r for r in rows if r["optimality"] != OPTIMALITY_OPTIMAL]
    return {
        "instances": rows,
        "n_instances": len(rows),
        "n_gap": len(gaps),
        "n_violations": len(violations),
        "n_non_optimal": len(non_optimal),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--trials", type=int, default=2, help="instances per (circuit, k)")
    parser.add_argument("--seed", type=int, default=46)
    parser.add_argument(
        "--assert-optimal",
        action="store_true",
        help="fail unless every instance is 'optimal' with zero violations",
    )
    args = parser.parse_args(argv)

    summary = run_sweep(args.trials, args.seed)
    RESULTS.mkdir(exist_ok=True)
    out = RESULTS / "BENCH_optimality_gap.json"
    out.write_text(json.dumps(summary, indent=2) + "\n")

    print(
        f"optimality gap sweep: {summary['n_instances']} instances, "
        f"{summary['n_gap']} greedy-suboptimal, "
        f"{summary['n_violations']} violations, "
        f"{summary['n_non_optimal']} non-optimal statuses"
    )
    print(f"wrote {out}")

    if summary["n_violations"]:
        print("FAIL: greedy beat the 'provably minimum' exact cardinality")
        return 1
    if args.assert_optimal and summary["n_non_optimal"]:
        bad = [
            (r["circuit"], r["k"], r["seed"], r["optimality"])
            for r in summary["instances"]
            if r["optimality"] != OPTIMALITY_OPTIMAL
        ]
        print(f"FAIL: expected every instance optimal, got {bad}")
        return 1
    return 0


def test_optimality_gap_smoke(benchmark):
    """pytest-benchmark entry: one representative exact search."""
    netlist, patterns, datalog = _harness.representative_trial("rca8", k=2)

    def run():
        return _compare(netlist, patterns, datalog)

    greedy, exact, _seconds = benchmark.pedantic(run, rounds=3, iterations=1)
    assert exact.optimality == OPTIMALITY_OPTIMAL
    if greedy.complete and exact.covers:
        assert exact.cardinality <= len(greedy.sites)


if __name__ == "__main__":
    sys.exit(main())
