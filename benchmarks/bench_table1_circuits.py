"""Table 1 -- benchmark circuit characteristics.

Reproduces the standard "circuits used in the evaluation" table: size,
interface, test-set length and stuck-at coverage per circuit.  The timed
kernel is test generation on a representative mid-size circuit.
"""

import _harness
from repro.atpg.random_gen import generate_stuck_at_tests
from repro.campaign.tables import format_table
from repro.circuit.library import SUITE_MEDIUM, SUITE_SMALL, load_circuit

CIRCUITS = tuple(SUITE_SMALL) + tuple(SUITE_MEDIUM)


def test_table1_circuit_characteristics(benchmark, capsys):
    benchmark.pedantic(
        lambda: generate_stuck_at_tests(load_circuit("alu8"), seed=7),
        rounds=3,
        iterations=1,
    )

    rows = []
    for name in CIRCUITS:
        netlist = load_circuit(name)
        report = generate_stuck_at_tests(netlist, seed=7)
        rows.append(
            (
                name,
                len(netlist.inputs),
                len(netlist.outputs),
                netlist.n_gates,
                netlist.depth,
                len(netlist.sites()),
                report.n_faults,
                report.patterns.n,
                f"{report.coverage:.1%}",
            )
        )
    text = format_table(
        ["circuit", "PI", "PO", "gates", "depth", "sites", "faults",
         "patterns", "SA coverage"],
        rows,
        title="Table 1: benchmark circuit characteristics",
    )
    with capsys.disabled():
        _harness.emit("table1_circuits", text)
