"""Table 2 -- single-defect diagnosis per defect family.

The sanity anchor of the evaluation: with one injected defect the proposed
method must locate it essentially always, for every behavioral family
(stuck-at, bridge, open, transition, and the model-free byzantine case),
with small candidate counts.  Timed kernel: one single-defect diagnosis.
"""

import _harness
from repro.campaign.samplers import PURE_MIXES
from repro.campaign.tables import format_table
from repro.core.diagnose import Diagnoser


def test_table2_single_defect(benchmark, capsys):
    netlist, patterns, datalog = _harness.representative_trial("alu8", k=1)
    diagnoser = Diagnoser(netlist)
    benchmark.pedantic(
        lambda: diagnoser.diagnose(patterns, datalog), rounds=3, iterations=1
    )

    rows = []
    for family, mix in PURE_MIXES.items():
        for circuit in _harness.ACCURACY_CIRCUITS:
            aggregates = _harness.run_config(
                circuit, k=1, methods=("xcover",), mix=mix, seed=21
            )
            agg = aggregates.get("xcover")
            if agg is None:
                continue
            rows.append((family, circuit, agg.n_trials) + _harness.method_row(agg))
    text = format_table(
        ["family", "circuit", "trials"] + _harness.METHOD_COLUMNS,
        rows,
        title="Table 2: single-defect diagnosis by defect family (proposed method)",
    )
    with capsys.disabled():
        _harness.emit("table2_single_defect", text)
