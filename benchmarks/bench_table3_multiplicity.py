"""Table 3 -- diagnosis accuracy versus defect multiplicity (k = 1..5).

The core claim: the proposed method's recall stays flat as the number of
simultaneous defects grows (the mixed 30/30/40 defect cocktail of the
silicon statistics).  Timed kernel: one k=3 diagnosis.
"""

import _harness
from repro.campaign.tables import format_table
from repro.core.diagnose import Diagnoser

K_SWEEP = (1, 2, 3, 4, 5)


def test_table3_multiplicity(benchmark, capsys):
    netlist, patterns, datalog = _harness.representative_trial("alu8", k=3)
    diagnoser = Diagnoser(netlist)
    benchmark.pedantic(
        lambda: diagnoser.diagnose(patterns, datalog), rounds=3, iterations=1
    )

    rows = []
    for circuit in _harness.ACCURACY_CIRCUITS:
        for k in K_SWEEP:
            aggregates = _harness.run_config(circuit, k=k, methods=("xcover",))
            agg = aggregates.get("xcover")
            if agg is None:
                continue
            rows.append((circuit, k, agg.n_trials) + _harness.method_row(agg))
    text = format_table(
        ["circuit", "k", "trials"] + _harness.METHOD_COLUMNS,
        rows,
        title="Table 3: proposed method vs number of simultaneous defects",
    )
    with capsys.disabled():
        _harness.emit("table3_multiplicity", text)
