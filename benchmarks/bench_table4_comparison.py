"""Table 4 -- method comparison on interacting defects.

Proposed vs SLAT vs classic single-fault diagnosis, with the sampler
biased so multiple defects share an output cone (the regime that creates
non-SLAT failing patterns).  Reports the fraction of failing patterns with
no single-stuck-at explanation alongside each method's accuracy.
Timed kernel: the three methods back-to-back on one device.
"""

import _harness
from repro.campaign.driver import CampaignConfig
from repro.campaign.tables import format_table
from repro.core.diagnose import Diagnoser
from repro.core.single_fault import diagnose_single_fault
from repro.core.slat import diagnose_slat

K_SWEEP = (2, 3, 4)
METHODS = ("xcover", "slat", "single")


def test_table4_method_comparison(benchmark, capsys):
    netlist, patterns, datalog = _harness.representative_trial("alu8", k=3)
    diagnoser = Diagnoser(netlist)

    def all_methods():
        diagnoser.diagnose(patterns, datalog)
        diagnose_slat(netlist, patterns, datalog)
        diagnose_single_fault(netlist, patterns, datalog)

    benchmark.pedantic(all_methods, rounds=3, iterations=1)

    rows = []
    for circuit in _harness.ACCURACY_CIRCUITS:
        campaign = _harness.campaign_for(circuit)
        for k in K_SWEEP:
            config = CampaignConfig(
                circuit=circuit,
                n_trials=_harness.TRIALS,
                k=k,
                methods=METHODS,
                seed=5,
                interacting=True,
            )
            result = campaign.run(config)
            # Fraction of failing patterns with no single-stuck-at per-test
            # explanation, averaged over trials (from the SLAT reports).
            slat_runs = [o for o in result.outcomes if o.method == "slat"]
            non_slat = (
                sum(1.0 - o.extra.get("slat_fraction", 1.0) for o in slat_runs)
                / len(slat_runs)
                if slat_runs
                else 0.0
            )
            for method_name, agg in result.by_method().items():
                rows.append(
                    (circuit, k, f"{non_slat:.2f}", method_name, agg.n_trials)
                    + _harness.method_row(agg)
                )
    text = format_table(
        ["circuit", "k", "nonSLAT", "method", "trials"] + _harness.METHOD_COLUMNS,
        rows,
        title=(
            "Table 4: proposed (xcover) vs SLAT vs single-stuck-at on "
            "interacting defect cocktails"
        ),
    )
    with capsys.disabled():
        _harness.emit("table4_comparison", text)
