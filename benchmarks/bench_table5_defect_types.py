"""Table 5 -- two-defect accuracy per behavior family, incl. byzantine.

Breaks the k=2 accuracy down by the behavioral family of the injected
cocktail (pure-family sampling), stressing the "no assumptions" claim:
the model-free byzantine family must still be located even though no
classical fault model reproduces it.  Timed kernel: one byzantine-pair
diagnosis.
"""

import _harness
from repro.campaign.samplers import PURE_MIXES
from repro.campaign.tables import format_table
from repro.core.diagnose import Diagnoser


def test_table5_defect_families(benchmark, capsys):
    netlist, patterns, datalog = _harness.representative_trial("rca8", k=2, seed=402)
    diagnoser = Diagnoser(netlist)
    benchmark.pedantic(
        lambda: diagnoser.diagnose(patterns, datalog), rounds=3, iterations=1
    )

    rows = []
    for family, mix in PURE_MIXES.items():
        for circuit in _harness.ACCURACY_CIRCUITS:
            aggregates = _harness.run_config(
                circuit, k=2, methods=("xcover",), mix=mix, seed=33
            )
            agg = aggregates.get("xcover")
            if agg is None:
                continue
            rows.append((family, circuit, agg.n_trials) + _harness.method_row(agg))
    text = format_table(
        ["family", "circuit", "trials"] + _harness.METHOD_COLUMNS,
        rows,
        title="Table 5: double-defect diagnosis by behavior family (proposed method)",
    )
    with capsys.disabled():
        _harness.emit("table5_defect_types", text)
