"""Table 6 -- large-circuit campaign (scalability of accuracy).

Repeats the k=2 accuracy measurement on the large tier (hundreds of
gates, four-digit site counts) to show the method's accuracy does not
erode with design size -- only runtime grows (Figure 2 characterizes
how).  Fewer trials than the mid-tier tables; these are the slow cells.
Timed kernel: one large-circuit diagnosis.
"""

import _harness
from repro.campaign.tables import format_table
from repro.circuit.library import load_circuit
from repro.core.diagnose import Diagnoser

CIRCUITS = ("csa32", "mul8", "rca32")
TRIALS = 5


def test_table6_large_circuits(benchmark, capsys):
    netlist, patterns, datalog = _harness.representative_trial("mul8", k=2, seed=55)
    diagnoser = Diagnoser(netlist)
    benchmark.pedantic(
        lambda: diagnoser.diagnose(patterns, datalog), rounds=3, iterations=1
    )

    rows = []
    for circuit in CIRCUITS:
        loaded = load_circuit(circuit)
        aggregates = _harness.run_config(
            circuit, k=2, methods=("xcover",), trials=TRIALS, seed=61
        )
        agg = aggregates.get("xcover")
        if agg is None:
            continue
        rows.append(
            (circuit, loaded.n_gates, len(loaded.sites()), agg.n_trials)
            + _harness.method_row(agg)
        )
    text = format_table(
        ["circuit", "gates", "sites", "trials"] + _harness.METHOD_COLUMNS,
        rows,
        title="Table 6: large-tier accuracy (proposed method, k=2)",
    )
    with capsys.disabled():
        _harness.emit("table6_large", text)
