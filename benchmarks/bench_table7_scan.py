"""Table 7 -- full-scan cores: defects in next-state logic.

Diagnosis accuracy on the scan-inserted combinational cores of sequential
designs (counters, an LFSR, a shift register).  The defect population
lives in the next-state logic and is observed through flop captures --
the exact setting the method targets in practice.  Expected: accuracy on
par with the combinational suite; shift-register-like cores are trivial
(near-1 resolution), arithmetic next-state logic behaves like the adders.
Timed kernel: one scan-core diagnosis.
"""

import _harness
from repro.campaign.tables import format_table
from repro.circuit.library import SUITE_SCAN, load_circuit
from repro.core.diagnose import Diagnoser


def test_table7_scan_cores(benchmark, capsys):
    netlist, patterns, datalog = _harness.representative_trial(
        "scan_cnt16", k=1, seed=31
    )
    diagnoser = Diagnoser(netlist)
    benchmark.pedantic(
        lambda: diagnoser.diagnose(patterns, datalog), rounds=3, iterations=1
    )

    rows = []
    for circuit in SUITE_SCAN:
        loaded = load_circuit(circuit)
        for k in (1, 2):
            aggregates = _harness.run_config(
                circuit, k=k, methods=("xcover",), seed=71
            )
            agg = aggregates.get("xcover")
            if agg is None:
                continue
            rows.append(
                (circuit, loaded.n_gates, k, agg.n_trials)
                + _harness.method_row(agg)
            )
    text = format_table(
        ["scan core", "gates", "k", "trials"] + _harness.METHOD_COLUMNS,
        rows,
        title="Table 7: diagnosis on full-scan cores of sequential designs",
    )
    with capsys.disabled():
        _harness.emit("table7_scan", text)
