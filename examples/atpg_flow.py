"""ATPG flow showcase: random + compaction + PODEM top-off + transitions.

Reproduces the "circuit characteristics" view of the evaluation (Table 1)
for a few benchmark circuits and shows the effect of compaction, plus a
launch-on-capture transition set.

Run:  python examples/atpg_flow.py
"""

from repro import generate_stuck_at_tests, generate_transition_tests, load_circuit
from repro.campaign.tables import format_table
from repro.circuit.netlist import Site


def main() -> int:
    rows = []
    for name in ("c17", "rca8", "parity16", "mux16", "alu8", "mul6"):
        netlist = load_circuit(name)
        report = generate_stuck_at_tests(netlist, seed=7)
        rows.append(
            (
                name,
                len(netlist.inputs),
                len(netlist.outputs),
                netlist.n_gates,
                netlist.depth,
                report.n_faults,
                report.patterns.n,
                f"{report.coverage:.1%}",
                report.n_untestable,
            )
        )
    print(
        format_table(
            ["circuit", "PI", "PO", "gates", "depth", "faults", "patterns",
             "coverage", "untestable"],
            rows,
            title="Stuck-at ATPG across the benchmark suite",
        )
    )

    netlist = load_circuit("rca8")
    sites = [Site(net) for net in list(netlist.nets())[:20]]
    transition = generate_transition_tests(netlist, sites, seed=7)
    print(
        f"\nTransition (LOC) ATPG on rca8, 20 sites: "
        f"{transition.patterns.n} vectors "
        f"({transition.n_covered}/{transition.n_targets} transitions covered, "
        f"{transition.coverage:.1%})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
