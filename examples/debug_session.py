"""A complete silicon-debug session, end to end.

The grand tour: a *sequential* design gets scan inserted and its
responses compacted; a lot of dice (some with multiple interacting
defects, one with a systematic defect) fails on the tester with truncated
fail logs in scan coordinates; the debug engineer diagnoses every die
from the text logs alone, sharpens one ambiguous case with adaptive
re-testing, and aggregates the lot into a yield-learning report with a
systematic-defect flag.

Run:  python examples/debug_session.py
"""

from repro import Diagnoser, PatternSet, apply_test, scan_insert
from repro._rng import make_rng
from repro.campaign.samplers import sample_defect_set
from repro.campaign.volume import VolumeAggregate
from repro.circuit.netlist import Site
from repro.core.distinguish import adaptive_diagnose
from repro.faults.injection import FaultyCircuit
from repro.faults.models import StuckAtDefect
from repro.seq.generators import counter
from repro.tester.scan import from_tester_log, parse_tester_log, format_tester_log, to_tester_log

N_DICE = 14
LOG_LIMIT = 6  # ATE: stop logging after 6 failing captures


def main() -> int:
    # ------------------------------------------------------------ design
    design = counter(8)
    scan = scan_insert(design, n_chains=2)
    core = scan.netlist
    patterns = PatternSet.random(core, 48, seed=77)
    print(f"design: {design}  ->  scan core {core.n_gates} gates, "
          f"{len(core.outputs)} observed bits")

    # ------------------------------------------------------------ the lot
    rng = make_rng(1234)
    systematic = StuckAtDefect(Site("d5"), 0)  # repeat offender in the lot
    volume = VolumeAggregate()
    ambiguous: tuple | None = None
    diagnoser = Diagnoser(core)
    failing_dice = 0

    for die in range(N_DICE):
        if die % 3 == 0:
            defects = [systematic]
        else:
            defects = sample_defect_set(core, k=rng.choice((1, 2)),
                                        seed=rng.getrandbits(32))
        test = apply_test(core, patterns, defects)
        if test.datalog.is_passing_device:
            continue
        failing_dice += 1

        # Tester side: scan-coordinate text log, truncated like real ATE.
        truncated = test.datalog.truncate(max_failing_patterns=LOG_LIMIT)
        text_log = format_tester_log(to_tester_log(scan.config, truncated))

        # Debug side: text log -> logical datalog -> diagnosis.
        recovered = from_tester_log(
            scan.config, parse_tester_log(text_log), patterns.n
        )
        recovered = type(recovered)(
            recovered.circuit_name, recovered.n_patterns, recovered.records,
            n_observed=truncated.n_observed,
        )
        report = diagnoser.diagnose(patterns, recovered)
        volume.add(report)
        if report.resolution > 6 and ambiguous is None:
            ambiguous = (die, defects, report)

    print(f"\nlot summary: {failing_dice}/{N_DICE} dice failed and were "
          f"diagnosed from truncated scan logs")

    # ---------------------------------------------------- adaptive sharpening
    if ambiguous is not None:
        die, defects, first_report = ambiguous
        print(f"\ndie #{die} is ambiguous ({first_report.resolution} candidates)"
              " -- re-inserting for adaptive test...")
        dut = FaultyCircuit(core, defects)
        session = adaptive_diagnose(
            core, patterns, dut.simulate_outputs, target_resolution=4, seed=9
        )
        print(f"  after {session.patterns_added} distinguishing patterns: "
              f"{session.initial_resolution} -> {session.final_resolution} candidates")

    # ---------------------------------------------------------- yield report
    print("\nmechanism Pareto (top model per die):")
    for kind, count in volume.mechanism_pareto():
        print(f"  {kind:>9s} {count:3d} {'#' * count}")
    flagged = volume.systematic_suspects(n_sites=len(core.sites()))
    print("\nsystematic-defect screen:")
    if flagged:
        offender_zone = {"d5"} | set(core.driver("d5").inputs) | {
            dest for dest, _pin in core.fanout("d5")
        }
        for net, score in flagged[:5]:
            marker = (
                "  <-- injected repeat offender's cell"
                if net in offender_zone or net == "d5"
                else ""
            )
            print(f"  net {net}: surprise {score:.1f}{marker}")
    else:
        print("  nothing anomalous")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
