"""Quickstart: diagnose a two-defect device end to end.

Run:  python examples/quickstart.py [circuit] [k]

Flow (the whole library in ~40 lines):
1. pick an open benchmark circuit,
2. generate a compacted stuck-at test set (random + PODEM top-off),
3. inject a random multi-defect cocktail into a simulated device,
4. apply the test and capture the tester datalog,
5. run the assumption-free diagnosis and compare against ground truth.
"""

import sys

from repro import (
    Diagnoser,
    apply_test,
    load_circuit,
    provision_patterns,
    sample_defect_set,
)


def main() -> int:
    circuit = sys.argv[1] if len(sys.argv) > 1 else "alu8"
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    netlist = load_circuit(circuit)
    print(f"circuit {netlist.name}: {netlist.n_gates} gates, "
          f"{len(netlist.inputs)} PIs, {len(netlist.outputs)} POs")

    patterns = provision_patterns(netlist)
    print(f"test set: {patterns.n} patterns (ATPG-compacted)")

    defects = sample_defect_set(netlist, k=k, seed=2008)
    print("injected defects (ground truth):")
    for defect in defects:
        print(f"  {defect}")

    test = apply_test(netlist, patterns, defects)
    datalog = test.datalog
    print(f"tester: {len(datalog.failing_indices)}/{patterns.n} failing patterns, "
          f"{datalog.n_fail_atoms} fail atoms")
    if datalog.is_passing_device:
        print("device passes this test set - nothing to diagnose")
        return 0

    report = Diagnoser(netlist).diagnose(patterns, datalog)
    print()
    print(report.summary())

    truth_nets = {s.net for d in defects for s in d.ground_truth_sites()}
    found = truth_nets & {c.site.net for c in report.candidates}
    print()
    print(f"located {len(found)}/{len(truth_nets)} true defect nets "
          f"({', '.join(sorted(found)) or 'none'}) "
          f"among {len(report.candidates)} candidates "
          f"in {report.stats['seconds'] * 1000:.0f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
