"""Full-scan flow: sequential design -> scan core -> tester log -> diagnosis.

The missing front half most diagnosis demos skip: start from a genuinely
*sequential* design, insert scan, test the combinational core, collect
failures in real tester coordinates (cycle / chain / position), translate
back, and diagnose -- locating a defect buried in the next-state logic.

Run:  python examples/scan_flow.py
"""

from repro import Diagnoser, PatternSet, apply_test, scan_insert
from repro.circuit.netlist import Site
from repro.faults.models import StuckAtDefect
from repro.seq.generators import counter
from repro.tester.scan import format_tester_log, from_tester_log, to_tester_log


def main() -> int:
    design = counter(6)
    print(f"sequential design: {design} ")

    scan = scan_insert(design, n_chains=2)
    core = scan.netlist
    print(
        f"after scan insertion: core has {len(core.inputs)} PIs "
        f"(incl. {design.n_flops} scan-in bits), {len(core.outputs)} observed "
        f"bits on {scan.config.n_chains} chains"
    )

    patterns = PatternSet.random(core, 32, seed=11)
    defect = StuckAtDefect(Site("d3"), 0)  # bit-3 next-state logic broken
    print(f"injected defect (hidden): {defect}")
    test = apply_test(core, patterns, [defect])

    fails = to_tester_log(scan.config, test.datalog)
    text = format_tester_log(fails)
    print(f"\ntester saw {len(fails)} failing bits; first lines of the log:")
    for line in text.splitlines()[:6]:
        print(f"  {line}")

    # --- the diagnosis side only gets the text log ----------------------
    from repro.tester.scan import parse_tester_log

    recovered = from_tester_log(
        scan.config, parse_tester_log(text), patterns.n
    )
    report = Diagnoser(core).diagnose(patterns, recovered)
    print()
    print(report.summary())
    top = report.candidates[0]
    print(
        f"\ntop candidate: {top.site} as {top.best_kind} -- "
        f"{'correct cell!' if top.site.net == 'd3' else 'check neighborhood'}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
