"""The headline scenario: failing patterns that violate SLAT assumptions.

SLAT-class diagnosis assumes every failing pattern is explainable by one
stuck-at fault in isolation.  This script manufactures devices where two
defects corrupt *disjoint outputs on the same pattern* (so no single site
can explain it) and shows, side by side, how the per-test baseline loses
exactly those patterns while the assumption-free method explains them and
still locates every defect.

Run:  python examples/slat_escape.py
"""

from repro import (
    Diagnoser,
    apply_test,
    diagnose_slat,
    load_circuit,
    provision_patterns,
    sample_defect_set,
)
from repro.campaign.metrics import score_report
from repro.campaign.tables import format_table


def main() -> int:
    netlist = load_circuit("alu8")
    patterns = provision_patterns(netlist)

    rows = []
    for seed in range(12):
        defects = sample_defect_set(netlist, k=3, seed=seed, interacting=True)
        test = apply_test(netlist, patterns, defects)
        if test.datalog.is_passing_device:
            continue

        slat = diagnose_slat(netlist, patterns, test.datalog)
        ours = Diagnoser(netlist).diagnose(patterns, test.datalog)

        slat_score = score_report(netlist, slat, defects, 0, 0)
        ours_score = score_report(netlist, ours, defects, 0, 0)
        rows.append(
            (
                seed,
                len(test.datalog.failing_indices),
                int(slat.stats["n_non_slat_patterns"]),
                f"{slat_score.recall_near:.2f}",
                f"{ours_score.recall_near:.2f}",
                len(ours.uncovered_atoms),
            )
        )

    print(
        format_table(
            [
                "seed",
                "failing pats",
                "non-SLAT pats",
                "SLAT recall",
                "ours recall",
                "ours unexplained",
            ],
            rows,
            title="Interacting triple defects on alu8: SLAT escape analysis",
        )
    )
    non_slat_total = sum(r[2] for r in rows)
    print(
        f"\n{non_slat_total} failing patterns across {len(rows)} devices had NO "
        "single-stuck-at explanation -- the patterns SLAT silently drops.\n"
        "The assumption-free method explains them via joint flip/pin "
        "assignments over multiplet sites (masking and joint sensitization)."
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
