"""From an ATE datalog file to a PFA work order.

This example mirrors the hand-off in a real failure-analysis flow: the
tester side dumps a plain-text datalog; the diagnosis side reads it back
(no access to the defective device, only the netlist and the evidence),
and produces a ranked *work order* for the physical failure analysis lab:
which sites to cross-section first, what mechanism to expect at each, and
which neighborhood to deprocess.

Run:  python examples/tester_to_pfa.py
"""

from pathlib import Path
import tempfile

from repro import (
    Datalog,
    Diagnoser,
    apply_test,
    load_circuit,
    provision_patterns,
    sample_defect_set,
)


def tester_side(netlist, patterns, out_path: Path) -> None:
    """What happens at the ATE: test a (secretly defective) device."""
    defects = sample_defect_set(netlist, k=2, seed=4242)
    test = apply_test(netlist, patterns, defects)
    out_path.write_text(test.datalog.to_text())
    print("[tester] defects on this die (hidden from diagnosis):")
    for defect in defects:
        print(f"[tester]   {defect}")
    print(f"[tester] wrote datalog: {out_path} "
          f"({len(test.datalog.failing_indices)} failing patterns)")


def diagnosis_side(netlist, patterns, log_path: Path) -> None:
    """What the FA lab receives: netlist + datalog text, nothing else."""
    datalog = Datalog.from_text(log_path.read_text())
    report = Diagnoser(netlist).diagnose(patterns, datalog)

    print("\n=== PFA WORK ORDER", "=" * 40)
    print(f"device: {report.circuit}   method: {report.method}")
    print(f"evidence: {len(datalog.failing_indices)} failing patterns, "
          f"{datalog.n_fail_atoms} failing (pattern, output) observations")
    if report.uncovered_atoms:
        print(f"WARNING: {len(report.uncovered_atoms)} observations unexplained "
              "- suspect >2 interacting defects or an inter-cell mechanism")
    print("\nminimal explanations (multiplets), best first:")
    for rank, multiplet in enumerate(report.multiplets[:5], start=1):
        print(f"  #{rank} {multiplet.describe()}")
    print("\nsite work list:")
    for rank, candidate in enumerate(report.candidates[:8], start=1):
        best = candidate.best
        mechanism = best.kind if best else "unknown"
        if best and best.aggressor:
            mechanism = f"short to net {best.aggressor}"
        neighborhood = sorted(
            {candidate.site.net}
            | set(
                netlist.driver(candidate.site.net).inputs
                if netlist.driver(candidate.site.net)
                else ()
            )
        )
        print(f"  {rank}. site {candidate.site}  expect: {mechanism:<18s} "
              f"deprocess near nets: {', '.join(neighborhood)}")


def main() -> int:
    netlist = load_circuit("csa16")
    patterns = provision_patterns(netlist)
    with tempfile.TemporaryDirectory() as tmp:
        log_path = Path(tmp) / "die_0042.datalog"
        tester_side(netlist, patterns, log_path)
        diagnosis_side(netlist, patterns, log_path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
