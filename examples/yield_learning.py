"""Yield-learning campaign: volume diagnosis over a lot of failing dice.

A fab's yield team does not diagnose one die -- it diagnoses hundreds and
looks for the *systematic* signal: which defect mechanisms dominate, how
sharp the localization is per mechanism, where PFA time should go.  This
script simulates a lot with a known defect Pareto, runs the full diagnosis
flow on every failing die and reconstructs the Pareto from diagnosis
results alone.

Run:  python examples/yield_learning.py [n_dice]
"""

import sys

from repro import Diagnoser, apply_test, load_circuit, provision_patterns
from repro.campaign.metrics import score_report
from repro.campaign.samplers import DefectMix, sample_defect_set
from repro.campaign.tables import format_table
from repro.campaign.volume import VolumeAggregate
from repro._rng import make_rng

#: The lot's (hidden) defect Pareto: mostly shorts, some opens and delays.
LOT_MIX = DefectMix(stuck=0.2, bridge=0.4, open=0.2, transition=0.2)


def main() -> int:
    n_dice = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    netlist = load_circuit("mul6")
    patterns = provision_patterns(netlist)
    diagnoser = Diagnoser(netlist)
    rng = make_rng(777)

    per_family: dict[str, list] = {}
    volume = VolumeAggregate()
    n_failing = 0
    for die in range(n_dice):
        k = 1 if rng.random() < 0.8 else 2  # mostly single-defect dice
        defects = sample_defect_set(netlist, k=k, seed=rng.getrandbits(32), mix=LOT_MIX)
        test = apply_test(netlist, patterns, defects)
        if test.datalog.is_passing_device:
            continue  # test escape: invisible on this pattern set
        n_failing += 1
        report = diagnoser.diagnose(patterns, test.datalog)
        volume.add(report)
        outcome = score_report(
            netlist, report, defects,
            len(test.datalog.failing_indices), test.datalog.n_fail_atoms,
        )
        for family in outcome.families:
            per_family.setdefault(family, []).append(outcome)

    rows = []
    for family, outcomes in sorted(per_family.items()):
        n = len(outcomes)
        rows.append(
            (
                family,
                n,
                f"{sum(o.recall_near for o in outcomes) / n:.2f}",
                f"{sum(o.resolution for o in outcomes) / n:.1f}",
                f"{sum(o.seconds for o in outcomes) / n * 1000:.0f}ms",
            )
        )
    print(
        format_table(
            ["defect family", "dice", "localization", "avg candidates", "diag time"],
            rows,
            title=f"Yield-learning over {n_failing} failing dice (mul6)",
        )
    )

    print("\nDiagnosis-reconstructed mechanism Pareto (top model per die):")
    for kind, count in volume.mechanism_pareto():
        bar = "#" * count
        print(f"  {kind:>8s} {count:3d} {bar}")
    print(
        "\nInjected lot mix was stuck=0.2 bridge=0.4 open=0.2 transition=0.2;"
        "\nthe reconstructed Pareto should rank bridges first."
    )

    suspects = volume.systematic_suspects(n_sites=len(netlist.sites()))
    if suspects:
        print("\nstatistically anomalous nets (possible systematic defect):")
        for net, score in suspects[:5]:
            print(f"  {net}: surprise {score:.1f}")
    else:
        print("\nno systematic (repeat-offender) nets - consistent with "
              "random particle defects")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
