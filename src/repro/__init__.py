"""repro -- Multiple defect diagnosis using no assumptions on failing
pattern characteristics (DAC 2008): a full open reproduction.

Quickstart::

    from repro import (
        load_circuit, provision_patterns, sample_defect_set, apply_test,
        Diagnoser,
    )

    netlist = load_circuit("alu8")
    patterns = provision_patterns(netlist)
    defects = sample_defect_set(netlist, k=2, seed=42)
    test = apply_test(netlist, patterns, defects)
    report = Diagnoser(netlist).diagnose(patterns, test.datalog)
    print(report.summary())

Layer map (see DESIGN.md for the full inventory):

- ``repro.circuit`` netlists, ``.bench`` I/O, benchmark generators,
- ``repro.sim`` bit-parallel 2-/3-valued simulation,
- ``repro.faults`` fault models, multi-defect DUT emulation, collapsing,
- ``repro.atpg`` PODEM + compacted random test generation,
- ``repro.tester`` datalogs and test application,
- ``repro.core`` the diagnosis method and its baselines,
- ``repro.campaign`` injection experiments and metrics.
"""

from repro.circuit import (
    Gate,
    GateKind,
    Netlist,
    NetlistBuilder,
    Site,
    circuit_names,
    load_circuit,
    parse_bench,
    parse_bench_file,
    write_bench,
)
from repro.sim import PatternSet, simulate, simulate3, simulate_outputs
from repro.faults import (
    BridgeDefect,
    BridgeKind,
    ByzantineDefect,
    Defect,
    FaultyCircuit,
    OpenDefect,
    StuckAtDefect,
    TransitionDefect,
    TransitionKind,
    collapse_stuck_at,
    stuck_at_universe,
)
from repro.atpg import Podem, generate_stuck_at_tests, generate_transition_tests
from repro.atpg.ndetect import generate_ndetect_tests
from repro.sim.timing import (
    SmallDelayDefect,
    apply_delay_test,
    arrival_times,
    static_slack,
)
from repro.core.delaydiag import diagnose_small_delay
from repro.tester import Datalog, FailRecord, TestResult, apply_test
from repro.tester.scan import ScanChainConfig, ScanFail, from_tester_log, to_tester_log
from repro.core import (
    Candidate,
    Diagnoser,
    DiagnosisConfig,
    DiagnosisReport,
    Hypothesis,
    Multiplet,
    diagnose_single_fault,
    diagnose_slat,
)
from repro.core.dictionary import build_dictionary, diagnose_dictionary
from repro.core.distinguish import adaptive_diagnose, distinguishing_pattern
from repro.core.equivalence import classed_resolution, group_candidates
from repro.tester.compactor import attach_compactor
from repro.seq import (
    Flop,
    ScanDesign,
    SequentialNetlist,
    parse_bench_sequential,
    scan_insert,
    unroll,
)
from repro.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    DefectMix,
    sample_defect_set,
)
from repro.campaign.driver import provision_patterns
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Gate",
    "GateKind",
    "Netlist",
    "NetlistBuilder",
    "Site",
    "circuit_names",
    "load_circuit",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "PatternSet",
    "simulate",
    "simulate3",
    "simulate_outputs",
    "BridgeDefect",
    "BridgeKind",
    "ByzantineDefect",
    "Defect",
    "FaultyCircuit",
    "OpenDefect",
    "StuckAtDefect",
    "TransitionDefect",
    "TransitionKind",
    "collapse_stuck_at",
    "stuck_at_universe",
    "Podem",
    "generate_stuck_at_tests",
    "generate_transition_tests",
    "generate_ndetect_tests",
    "SmallDelayDefect",
    "apply_delay_test",
    "arrival_times",
    "static_slack",
    "diagnose_small_delay",
    "Datalog",
    "FailRecord",
    "TestResult",
    "apply_test",
    "ScanChainConfig",
    "ScanFail",
    "from_tester_log",
    "to_tester_log",
    "build_dictionary",
    "diagnose_dictionary",
    "adaptive_diagnose",
    "distinguishing_pattern",
    "classed_resolution",
    "group_candidates",
    "attach_compactor",
    "Flop",
    "ScanDesign",
    "SequentialNetlist",
    "parse_bench_sequential",
    "scan_insert",
    "unroll",
    "Candidate",
    "Diagnoser",
    "DiagnosisConfig",
    "DiagnosisReport",
    "Hypothesis",
    "Multiplet",
    "diagnose_single_fault",
    "diagnose_slat",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "DefectMix",
    "sample_defect_set",
    "provision_patterns",
    "ReproError",
]
