"""Seeded random-number helpers.

All stochastic behavior in the library (pattern generation, defect sampling,
campaign drivers) flows through :func:`make_rng` so that experiments are
reproducible bit-for-bit from a single integer seed.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")

#: Seed used by examples and benchmarks unless overridden.
DEFAULT_SEED = 20080608  # DAC 2008 nominal date - purely a mnemonic.


def make_rng(seed: int | random.Random | None = None) -> random.Random:
    """Return a :class:`random.Random` from a seed, an existing RNG or None.

    Passing an existing RNG returns it unchanged, which lets call chains
    thread one generator through many layers without reseeding.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None:
        seed = DEFAULT_SEED
    return random.Random(seed)


def spawn(rng: random.Random, tag: str) -> random.Random:
    """Derive an independent child RNG from ``rng`` labeled by ``tag``.

    Used by campaign drivers so that adding trials for one experiment does
    not perturb the random stream of another.  The derivation goes through
    SHA-256 so it is stable across processes and Python versions
    (``hash(str)`` is salted and would not be).
    """
    digest = hashlib.sha256(f"{rng.getrandbits(64)}:{tag}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def sample_distinct(rng: random.Random, population: Sequence[T], k: int) -> list[T]:
    """Sample ``k`` distinct items, raising a clear error when impossible."""
    if k > len(population):
        raise ValueError(
            f"cannot sample {k} distinct items from population of {len(population)}"
        )
    return rng.sample(list(population), k)


def weighted_choice(rng: random.Random, items: Iterable[tuple[T, float]]) -> T:
    """Choose one item according to (item, weight) pairs."""
    pairs = list(items)
    total = sum(w for _, w in pairs)
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    pick = rng.random() * total
    acc = 0.0
    for item, weight in pairs:
        acc += weight
        if pick <= acc:
            return item
    return pairs[-1][0]
