"""Automatic test pattern generation.

- :mod:`repro.atpg.podem` -- a classic PODEM implementation for stuck-at
  faults plus a justification-only mode,
- :mod:`repro.atpg.random_gen` -- random pattern generation with fault-
  simulation-based compaction and deterministic PODEM top-off,
- :mod:`repro.atpg.transition` -- launch-on-capture transition test pairs,
- :mod:`repro.atpg.ndetect` -- N-detect pattern sets,
- :mod:`repro.atpg.diagnostic` -- diagnostic (distinguishability) expansion.
"""

from repro.atpg.podem import Podem, PodemResult, justify
from repro.atpg.random_gen import generate_stuck_at_tests, AtpgReport
from repro.atpg.transition import generate_transition_tests
from repro.atpg.ndetect import generate_ndetect_tests
from repro.atpg.diagnostic import expand_diagnostic

__all__ = [
    "Podem",
    "PodemResult",
    "justify",
    "generate_stuck_at_tests",
    "AtpgReport",
    "generate_transition_tests",
    "generate_ndetect_tests",
    "expand_diagnostic",
]
