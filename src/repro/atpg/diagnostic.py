"""Diagnostic test pattern generation (DTPG).

Detection-oriented test sets leave many fault pairs *indistinguishable*:
both faults produce identical responses on every applied pattern, so
diagnosis must report them together.  Diagnostic generation attacks the
pairs directly: find the indistinguished pairs, then search for patterns
on which the two faults' responses differ and add them.

This is the static (pre-tester) counterpart of the adaptive flow in
:mod:`repro.core.distinguish`: the adaptive loop sharpens one device
online; DTPG sharpens the *pattern set* once, for every future device.
The distinguishability ratio it reports is exactly the expected diagnosis
resolution improvement measured in Figure 7's N-detect study -- DTPG gets
the same effect with far fewer patterns because every added vector is
aimed at a surviving ambiguity.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import combinations

from repro._rng import make_rng
from repro.circuit.netlist import Netlist
from repro.faults.collapse import collapse_stuck_at
from repro.faults.models import Defect
from repro.sim.faultsim import defect_output_diff
from repro.sim.logicsim import simulate
from repro.sim.patterns import PatternSet


def fault_signatures(
    netlist: Netlist,
    patterns: PatternSet,
    faults: list[Defect],
) -> dict[Defect, tuple]:
    """Canonical full-response signature per fault under ``patterns``."""
    base = simulate(netlist, patterns)
    return {
        fault: tuple(sorted(defect_output_diff(netlist, patterns, fault, base).items()))
        for fault in faults
    }


def indistinguished_pairs(
    signatures: dict[Defect, tuple],
    detected_only: bool = True,
) -> list[tuple[Defect, Defect]]:
    """Fault pairs with identical (non-empty, if ``detected_only``) responses."""
    groups: dict[tuple, list[Defect]] = {}
    for fault, signature in signatures.items():
        if detected_only and not signature:
            continue
        groups.setdefault(signature, []).append(fault)
    pairs: list[tuple[Defect, Defect]] = []
    for members in groups.values():
        members.sort(key=str)
        pairs.extend(combinations(members, 2))
    return pairs


@dataclass
class DiagnosticAtpgReport:
    """Outcome of diagnostic expansion."""

    patterns: PatternSet
    n_faults: int
    pairs_before: int
    pairs_after: int
    patterns_added: int
    unresolvable_pairs: list = field(default_factory=list)

    @property
    def distinguishability_gain(self) -> float:
        if self.pairs_before == 0:
            return 0.0
        return 1.0 - self.pairs_after / self.pairs_before


def expand_diagnostic(
    netlist: Netlist,
    patterns: PatternSet,
    faults: list[Defect] | None = None,
    seed: int | random.Random | None = None,
    batch: int = 48,
    max_batches_per_pair: int = 8,
    max_added: int | None = None,
) -> DiagnosticAtpgReport:
    """Add patterns until surviving fault pairs are distinguished (or
    proven resistant to the random search effort).

    ``faults`` defaults to the collapsed stuck-at representatives --
    collapse-equivalent faults are indistinguishable *by construction*
    and must not be attacked.
    """
    rng = make_rng(seed)
    if faults is None:
        faults = list(collapse_stuck_at(netlist).representatives)

    signatures = fault_signatures(netlist, patterns, faults)
    pairs = indistinguished_pairs(signatures)
    pairs_before = len(pairs)
    added = 0
    unresolved: list = []

    for fault_a, fault_b in pairs:
        # An earlier addition may already have split this pair.
        sig_a = fault_signatures(netlist, patterns, [fault_a])[fault_a]
        sig_b = fault_signatures(netlist, patterns, [fault_b])[fault_b]
        if sig_a != sig_b:
            continue
        if max_added is not None and added >= max_added:
            unresolved.append((fault_a, fault_b))
            continue
        found = None
        for _ in range(max_batches_per_pair):
            trial = PatternSet.random(netlist, batch, rng)
            base = simulate(netlist, trial)
            diff_a = defect_output_diff(netlist, trial, fault_a, base)
            diff_b = defect_output_diff(netlist, trial, fault_b, base)
            delta = 0
            for out in set(diff_a) | set(diff_b):
                delta |= diff_a.get(out, 0) ^ diff_b.get(out, 0)
            if delta:
                index = (delta & -delta).bit_length() - 1
                found = trial.pattern(index)
                break
        if found is None:
            unresolved.append((fault_a, fault_b))
            continue
        patterns = patterns.concat(
            PatternSet.from_vectors(netlist.inputs, [found])
        ).dedup()
        added += 1

    final = fault_signatures(netlist, patterns, faults)
    pairs_after = len(indistinguished_pairs(final))
    return DiagnosticAtpgReport(
        patterns=patterns,
        n_faults=len(faults),
        pairs_before=pairs_before,
        pairs_after=pairs_after,
        patterns_added=added,
        unresolvable_pairs=unresolved,
    )
