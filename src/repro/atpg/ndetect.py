"""N-detect test generation.

An N-detect set observes every (collapsed) stuck-at fault through at
least N different patterns.  Its diagnostic value: each extra detection
of a fault tends to exercise a different sensitization context, which
separates candidates that a 1-detect set leaves tied -- the mechanism
behind the resolution-vs-N experiment (Figure 7).

Strategy: start from the compacted 1-detect set, then add random batches
keeping only patterns that raise some fault's detection count below the
target, finally aim PODEM (with varying don't-care fillers) at faults
still short of N.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro._rng import make_rng
from repro.atpg.podem import Podem
from repro.atpg.random_gen import generate_stuck_at_tests
from repro.circuit.netlist import Netlist
from repro.faults.collapse import collapse_stuck_at
from repro.faults.models import Defect
from repro.sim.faultsim import fault_coverage
from repro.sim.logicsim import simulate
from repro.sim.patterns import PatternSet


@dataclass
class NDetectReport:
    """Outcome of N-detect generation."""

    patterns: PatternSet
    n_detect: int
    detect_counts: dict[Defect, int] = field(default_factory=dict)
    n_faults: int = 0
    n_meeting_target: int = 0

    @property
    def fraction_meeting_target(self) -> float:
        """Testable faults detected at least N times.

        May sit below 1.0 even after exhaustive effort: a fault with fewer
        than N *possible* detecting input vectors (e.g. a branch fault
        sensitizable by exactly one combination) is inherently capped --
        the standard N-detect caveat.
        """
        testable = sum(1 for c in self.detect_counts.values() if c > 0)
        return self.n_meeting_target / testable if testable else 1.0


def _detection_counts(netlist, patterns, faults, base=None):
    grading = fault_coverage(netlist, patterns, faults, base)
    return {
        fault: bin(grading.detect_bits.get(fault, 0)).count("1")
        for fault in faults
    }


def generate_ndetect_tests(
    netlist: Netlist,
    n_detect: int,
    seed: int | random.Random | None = None,
    random_batch: int = 32,
    max_random_batches: int = 20,
    max_podem_per_fault: int = 4,
) -> NDetectReport:
    """Grow a pattern set until every detectable fault is seen >= N times."""
    rng = make_rng(seed)
    base_report = generate_stuck_at_tests(netlist, seed=rng.getrandbits(32))
    patterns = base_report.patterns
    faults = list(collapse_stuck_at(netlist).representatives)
    counts = _detection_counts(netlist, patterns, faults)

    def deficient() -> list[Defect]:
        return [f for f in faults if 0 < counts[f] < n_detect]

    # Phase 1: random top-up, keeping patterns with marginal value.
    for _ in range(max_random_batches):
        if not deficient():
            break
        batch = PatternSet.random(netlist, random_batch, rng)
        batch_base = simulate(netlist, batch)
        grading = fault_coverage(netlist, batch, deficient(), batch_base)
        keep: set[int] = set()
        gains = dict(counts)
        for fault, bits in grading.detect_bits.items():
            vec = bits
            while vec and gains[fault] < n_detect:
                low = vec & -vec
                keep.add(low.bit_length() - 1)
                gains[fault] += 1
                vec ^= low
        if not keep:
            continue
        extra = batch.subset(sorted(keep))
        patterns = patterns.concat(extra).dedup()
        counts = _detection_counts(netlist, patterns, faults)

    # Phase 2: PODEM with different fillers for the stubborn remainder.
    for fault in list(deficient()):
        vectors = []
        for attempt in range(max_podem_per_fault):
            engine = Podem(netlist, max_backtracks=64, seed=rng.getrandbits(32))
            result = engine.generate(fault)  # type: ignore[arg-type]
            if result.success:
                vectors.append(result.pattern)
            if counts[fault] + len(vectors) >= n_detect:
                break
        if vectors:
            extra = PatternSet.from_vectors(netlist.inputs, vectors)
            patterns = patterns.concat(extra).dedup()
            counts = _detection_counts(netlist, patterns, faults)

    meeting = sum(1 for c in counts.values() if c >= n_detect)
    return NDetectReport(
        patterns=patterns,
        n_detect=n_detect,
        detect_counts=counts,
        n_faults=len(faults),
        n_meeting_target=meeting,
    )
