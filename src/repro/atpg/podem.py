"""PODEM automatic test pattern generation for stuck-at faults.

A scalar good/faulty-machine implementation of Goel's PODEM: decisions are
made only on primary inputs, chosen by backtracing an objective (fault
activation first, then D-frontier propagation) through the netlist, with
chronological backtracking on conflicts and an X-path check for early
pruning.  Level-based controllability/observability stand in for SCOAP.

The same machinery exposes :func:`justify`, which finds an input assignment
driving one internal net to a required value -- used by launch-on-capture
transition test generation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._rng import make_rng
from repro.circuit.gates import GateKind
from repro.circuit.netlist import Netlist
from repro.errors import AtpgError
from repro.faults.models import StuckAtDefect

X = 2  # scalar three-valued "unknown"


def _eval_scalar(kind: GateKind, ins: list[int]) -> int:
    """Three-valued scalar gate evaluation (0, 1, X=2)."""
    if kind in (GateKind.AND, GateKind.NAND):
        if any(v == 0 for v in ins):
            out = 0
        elif all(v == 1 for v in ins):
            out = 1
        else:
            out = X
        return out if kind is GateKind.AND else _inv(out)
    if kind in (GateKind.OR, GateKind.NOR):
        if any(v == 1 for v in ins):
            out = 1
        elif all(v == 0 for v in ins):
            out = 0
        else:
            out = X
        return out if kind is GateKind.OR else _inv(out)
    if kind in (GateKind.XOR, GateKind.XNOR):
        if any(v == X for v in ins):
            return X
        out = 0
        for v in ins:
            out ^= v
        return out if kind is GateKind.XOR else _inv(out)
    if kind is GateKind.BUF:
        return ins[0]
    if kind is GateKind.NOT:
        return _inv(ins[0])
    if kind is GateKind.MUX:
        a, b, sel = ins
        if sel == 0:
            return a
        if sel == 1:
            return b
        return a if a == b and a != X else X
    if kind is GateKind.CONST0:
        return 0
    if kind is GateKind.CONST1:
        return 1
    raise AtpgError(f"cannot evaluate {kind} in PODEM")


def _inv(v: int) -> int:
    return v if v == X else v ^ 1


@dataclass
class PodemResult:
    """Outcome of one PODEM run."""

    pattern: dict[str, int] | None  #: full input assignment, or None
    status: str  #: "detected", "untestable" or "aborted"
    backtracks: int

    @property
    def success(self) -> bool:
        return self.pattern is not None


class Podem:
    """PODEM engine bound to one netlist.

    Parameters
    ----------
    netlist:
        Target circuit.
    max_backtracks:
        Abort threshold; an abort means "gave up", not "untestable".
    seed:
        Filler values for don't-care inputs of successful patterns.
    """

    def __init__(self, netlist: Netlist, max_backtracks: int = 512, seed: int = 0):
        self.netlist = netlist
        self.max_backtracks = max_backtracks
        self._rng = make_rng(seed)

    # -- public API -----------------------------------------------------------

    def generate(self, fault: StuckAtDefect) -> PodemResult:
        """Find a pattern detecting ``fault``, prove it untestable, or abort."""
        self.netlist.validate_site(fault.site)
        return self._search(fault)

    # -- machinery ---------------------------------------------------------------

    def _simulate(
        self, assignment: dict[str, int], fault: StuckAtDefect | None
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Good/faulty three-valued simulation under a partial PI assignment."""
        netlist = self.netlist
        good: dict[str, int] = {}
        faulty: dict[str, int] = {}
        site = fault.site if fault else None
        for net in netlist.inputs:
            v = assignment.get(net, X)
            good[net] = v
            faulty[net] = fault.value if (site and site.is_stem and site.net == net) else v
        for net in netlist.topo_order:
            gate = netlist.gates[net]
            g_ins = [good[src] for src in gate.inputs]
            f_ins = [
                fault.value
                if (site and site.branch == (net, pin))
                else faulty[src]
                for pin, src in enumerate(gate.inputs)
            ]
            good[net] = _eval_scalar(gate.kind, g_ins)
            out_f = _eval_scalar(gate.kind, f_ins)
            if site and site.is_stem and site.net == net:
                out_f = fault.value
            faulty[net] = out_f
        return good, faulty

    @staticmethod
    def _error(good: dict[str, int], faulty: dict[str, int], net: str) -> bool:
        return good[net] != X and faulty[net] != X and good[net] != faulty[net]

    def _detected(self, good: dict[str, int], faulty: dict[str, int]) -> bool:
        return any(self._error(good, faulty, out) for out in self.netlist.outputs)

    def _x_path_exists(self, good: dict[str, int], faulty: dict[str, int]) -> bool:
        """Can some error still reach an output through X nets?

        Pure pruning heuristic: when no *net* yet carries an error (e.g. a
        just-activated branch fault, whose error lives at a pin), pruning
        does not apply and the search must continue.
        """
        if not any(self._error(good, faulty, net) for net in self.netlist.nets()):
            return True
        frontier = [
            net
            for net in self.netlist.nets()
            if self._error(good, faulty, net) or faulty[net] == X or good[net] == X
        ]
        alive = set(frontier)
        for out in self.netlist.outputs:
            if out in alive and self._reaches_error_backward(out, alive, good, faulty):
                return True
        return False

    def _reaches_error_backward(
        self,
        root: str,
        alive: set[str],
        good: dict[str, int],
        faulty: dict[str, int],
    ) -> bool:
        """DFS from an output through 'alive' nets looking for an error net."""
        stack = [root]
        seen: set[str] = set()
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            if self._error(good, faulty, net):
                return True
            gate = self.netlist.gates.get(net)
            if gate is None:
                continue
            stack.extend(src for src in gate.inputs if src in alive and src not in seen)
        return False

    def _d_frontier(
        self,
        good: dict[str, int],
        faulty: dict[str, int],
        fault: StuckAtDefect | None = None,
    ) -> list[str]:
        frontier = []
        for net in self.netlist.topo_order:
            if good[net] != X and faulty[net] != X:
                continue
            gate = self.netlist.gates[net]
            if any(self._error(good, faulty, src) for src in gate.inputs):
                frontier.append(net)
        # A branch fault's error lives at a pin, not on a net: once the stem
        # carries the activating value, the reading gate is frontier material.
        if fault is not None and fault.site.branch is not None:
            gate_out = fault.site.branch[0]
            activated = good[fault.site.net] == fault.value ^ 1
            undecided = good[gate_out] == X or faulty[gate_out] == X
            if activated and undecided and gate_out not in frontier:
                frontier.insert(0, gate_out)
        return frontier

    def _objective(
        self,
        fault: StuckAtDefect,
        good: dict[str, int],
        faulty: dict[str, int],
    ) -> tuple[str, int] | None:
        site = fault.site
        need = fault.value ^ 1
        if good[site.net] == X:
            return (site.net, need)
        if good[site.net] != need:
            return None  # activation contradicted: backtrack
        frontier = self._d_frontier(good, faulty, fault)
        if not frontier:
            return None
        # Lowest-level frontier gate first (shortest remaining propagation).
        frontier.sort(key=self.netlist.level)
        gate = self.netlist.gates[frontier[0]]
        ctrl = gate.kind.controlling_value
        want = 1 if ctrl is None else ctrl ^ 1
        for src in gate.inputs:
            if good[src] == X:
                return (src, want)
        return None

    def _backtrace(self, net: str, value: int, good: dict[str, int]) -> tuple[str, int]:
        """Walk an objective back to an unassigned primary input."""
        current, want = net, value
        guard = 0
        while True:
            guard += 1
            if guard > self.netlist.n_nets + len(self.netlist.inputs) + 1:
                raise AtpgError("backtrace failed to reach a primary input")
            gate = self.netlist.gates.get(current)
            if gate is None:  # primary input
                return current, want
            kind = gate.kind
            if kind is GateKind.NOT:
                current, want = gate.inputs[0], want ^ 1
                continue
            if kind is GateKind.BUF:
                current = gate.inputs[0]
                continue
            if kind is GateKind.MUX:
                a, b, sel = gate.inputs
                if good[sel] == 0:
                    current = a
                elif good[sel] == 1:
                    current = b
                elif good[a] == X and good[b] != X:
                    current = a
                elif good[b] == X and good[a] != X:
                    current = b
                else:
                    current, want = sel, self._rng.getrandbits(1)
                continue
            if kind in (GateKind.XOR, GateKind.XNOR):
                known = [good[s] for s in gate.inputs if good[s] != X]
                xs = [s for s in gate.inputs if good[s] == X]
                if not xs:
                    raise AtpgError("backtrace objective already fully assigned")
                parity = 0
                for v in known:
                    parity ^= v
                if kind is GateKind.XNOR:
                    parity ^= 1
                current, want = xs[0], want ^ parity
                continue
            ctrl = kind.controlling_value
            body = want ^ (1 if kind.inverting else 0)
            xs = [s for s in gate.inputs if good[s] == X]
            if not xs:
                raise AtpgError("backtrace objective already fully assigned")
            if (ctrl == 0 and body == 0) or (ctrl == 1 and body == 1):
                # One controlling input suffices: pick the easiest (lowest level).
                current = min(xs, key=self.netlist.level)
                want = ctrl
            else:
                # All inputs must be non-controlling: attack the hardest first.
                current = max(xs, key=self.netlist.level)
                want = ctrl ^ 1

    def _search(self, fault: StuckAtDefect | None, goal: tuple[str, int] | None = None) -> PodemResult:
        """Shared search loop for detection (fault) and justification (goal)."""
        assignment: dict[str, int] = {}
        decisions: list[tuple[str, int, bool]] = []  # (pi, value, alternative_tried)
        backtracks = 0
        while True:
            good, faulty = self._simulate(assignment, fault)
            if fault is not None:
                done = self._detected(good, faulty)
            else:
                net, want = goal  # type: ignore[misc]
                done = good[net] == want
            if done:
                pattern = {
                    pi: assignment.get(pi, self._rng.getrandbits(1))
                    for pi in self.netlist.inputs
                }
                return PodemResult(pattern, "detected", backtracks)

            objective = self._next_objective(fault, goal, good, faulty)
            if objective is not None:
                pi, val = self._backtrace(*objective, good)
                assignment[pi] = val
                decisions.append((pi, val, False))
                continue

            # Conflict: chronological backtracking.
            while decisions:
                pi, val, tried = decisions.pop()
                del assignment[pi]
                if not tried:
                    backtracks += 1
                    if backtracks > self.max_backtracks:
                        return PodemResult(None, "aborted", backtracks)
                    assignment[pi] = val ^ 1
                    decisions.append((pi, val ^ 1, True))
                    break
            else:
                return PodemResult(None, "untestable", backtracks)

    def _next_objective(
        self,
        fault: StuckAtDefect | None,
        goal: tuple[str, int] | None,
        good: dict[str, int],
        faulty: dict[str, int],
    ) -> tuple[str, int] | None:
        if fault is not None:
            obj = self._objective(fault, good, faulty)
            if obj is None:
                return None
            if obj[0] != fault.site.net and not self._x_path_exists(good, faulty):
                return None
            return obj
        net, want = goal  # type: ignore[misc]
        if good[net] == X:
            return (net, want)
        return None  # justified value contradicts goal -> backtrack


def justify(
    netlist: Netlist, net: str, value: int, max_backtracks: int = 512, seed: int = 0
) -> dict[str, int] | None:
    """Input assignment making ``net`` carry ``value``, or None if impossible.

    Used for the launch vector of transition test pairs.
    """
    if value not in (0, 1):
        raise AtpgError("justify target value must be 0/1")
    if net not in netlist.gates and not netlist.is_input(net):
        raise AtpgError(f"unknown net {net!r}")
    engine = Podem(netlist, max_backtracks=max_backtracks, seed=seed)
    result = engine._search(None, goal=(net, value))
    return result.pattern
