"""Random pattern generation with compaction and deterministic top-off.

The standard industrial recipe: flood the circuit with random patterns,
grade them by fault simulation, keep only patterns that contribute
coverage (greedy compaction), then aim PODEM at the random-resistant
remainder.  The resulting compact high-coverage sets drive every
reproduction experiment, mirroring the commercial-ATPG test sets used by
the original evaluation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro._rng import make_rng
from repro.atpg.podem import Podem
from repro.circuit.netlist import Netlist
from repro.faults.collapse import collapse_stuck_at
from repro.faults.models import Defect, StuckAtDefect
from repro.sim.faultsim import effective_pattern_order, fault_coverage
from repro.sim.patterns import PatternSet


@dataclass
class AtpgReport:
    """Summary of a test generation run (feeds Table 1)."""

    patterns: PatternSet
    coverage: float
    n_faults: int
    n_detected: int
    n_untestable: int
    n_aborted: int
    collapse_ratio: float
    podem_patterns: int = 0
    random_patterns: int = 0
    undetected: list[Defect] = field(default_factory=list)


def generate_stuck_at_tests(
    netlist: Netlist,
    seed: int | random.Random | None = None,
    random_batch: int = 64,
    max_random_batches: int = 8,
    max_backtracks: int = 64,
    compact: bool = True,
    podem_time_budget: float | None = 30.0,
) -> AtpgReport:
    """Generate a compacted stuck-at test set for ``netlist``.

    Random batches are added while they still improve coverage, then every
    remaining collapsed fault gets a PODEM attempt.  With ``compact`` the
    random phase is reduced to the greedy marginal-coverage prefix.

    ``max_backtracks`` is deliberately modest: random-resistant faults in
    heavily redundant logic (random DAGs especially) are usually
    *untestable*, and proving that is exponential; an abort only costs a
    little reported coverage.  ``podem_time_budget`` (seconds) bounds the
    whole top-off phase; leftover faults are counted as aborted.
    """
    import time as _time

    deadline = None if podem_time_budget is None else _time.monotonic() + podem_time_budget
    rng = make_rng(seed)
    collapsed = collapse_stuck_at(netlist)
    targets: list[Defect] = list(collapsed.representatives)

    pool = PatternSet.random(netlist, random_batch, rng)
    best_cov = fault_coverage(netlist, pool, targets).coverage
    for _ in range(max_random_batches - 1):
        if best_cov >= 1.0:
            break
        extra = PatternSet.random(netlist, random_batch, rng)
        candidate = pool.concat(extra)
        cov = fault_coverage(netlist, candidate, targets).coverage
        if cov <= best_cov:
            break
        pool, best_cov = candidate, cov

    if compact:
        order = effective_pattern_order(netlist, pool, targets)
        pool = pool.subset(order)
    pool = pool.dedup()
    random_count = pool.n

    grading = fault_coverage(netlist, pool, targets)
    engine = Podem(netlist, max_backtracks=max_backtracks, seed=rng.getrandbits(32))
    podem_vectors = []
    n_untestable = 0
    n_aborted = 0
    still_undetected: list[Defect] = []
    for fault in grading.undetected:
        assert isinstance(fault, StuckAtDefect)
        if deadline is not None and _time.monotonic() > deadline:
            n_aborted += 1
            still_undetected.append(fault)
            continue
        result = engine.generate(fault)
        if result.success:
            podem_vectors.append(result.pattern)
        elif result.status == "untestable":
            n_untestable += 1
        else:
            n_aborted += 1
            still_undetected.append(fault)

    if podem_vectors:
        extra = PatternSet.from_vectors(netlist.inputs, podem_vectors)
        pool = pool.concat(extra).dedup()

    final = fault_coverage(netlist, pool, targets)
    testable = len(targets) - n_untestable
    coverage = len(final.detected) / testable if testable else 1.0
    return AtpgReport(
        patterns=pool,
        coverage=coverage,
        n_faults=len(targets),
        n_detected=len(final.detected),
        n_untestable=n_untestable,
        n_aborted=n_aborted,
        collapse_ratio=collapsed.collapse_ratio,
        podem_patterns=pool.n - random_count if pool.n > random_count else 0,
        random_patterns=random_count,
        undetected=still_undetected,
    )
