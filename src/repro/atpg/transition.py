"""Launch-on-capture transition test generation.

A transition fault (slow-to-rise at site ``s``) needs a two-vector test:
the launch vector sets ``s`` to the initial value, the capture vector both
creates the transition and propagates the (late) old value to an output --
i.e. the capture vector is a stuck-at test for the initial value at ``s``.
This module pairs PODEM-generated capture vectors with justification-only
launch vectors and interleaves them so that the simulator's
consecutive-pattern delay semantics (see
:class:`~repro.faults.models.TransitionDefect`) observes every intended
launch/capture edge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro._rng import make_rng
from repro.atpg.podem import Podem, justify
from repro.circuit.netlist import Netlist, Site
from repro.faults.models import StuckAtDefect, TransitionKind
from repro.sim.patterns import PatternSet


@dataclass
class TransitionAtpgReport:
    patterns: PatternSet
    n_targets: int
    n_covered: int

    @property
    def coverage(self) -> float:
        return self.n_covered / self.n_targets if self.n_targets else 1.0


def generate_transition_tests(
    netlist: Netlist,
    sites: list[Site] | None = None,
    seed: int | random.Random | None = None,
    max_backtracks: int = 256,
) -> TransitionAtpgReport:
    """Generate LOC pairs covering slow-to-rise/fall at the given sites.

    ``sites`` defaults to all stems.  Returns the interleaved
    (launch, capture) pattern set.
    """
    rng = make_rng(seed)
    if sites is None:
        sites = [Site(net) for net in netlist.nets()]
    engine = Podem(netlist, max_backtracks=max_backtracks, seed=rng.getrandbits(32))
    vectors: list[dict[str, int]] = []
    covered = 0
    n_targets = 0
    for site in sites:
        for kind in (TransitionKind.SLOW_TO_RISE, TransitionKind.SLOW_TO_FALL):
            n_targets += 1
            initial = 0 if kind is TransitionKind.SLOW_TO_RISE else 1
            # Capture vector: detect stuck-at-<initial> at the site.
            capture = engine.generate(StuckAtDefect(site, initial))
            if not capture.success:
                continue
            launch = justify(
                netlist, site.net, initial,
                max_backtracks=max_backtracks, seed=rng.getrandbits(32),
            )
            if launch is None:
                continue
            vectors.append(launch)
            vectors.append(capture.pattern)
            covered += 1
    patterns = PatternSet.from_vectors(netlist.inputs, vectors)
    return TransitionAtpgReport(patterns, n_targets, covered)
