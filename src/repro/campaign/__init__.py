"""Defect-injection experiment framework.

Drives the reproduction experiments end to end: sample a defect set, build
the failing device, apply the test, run one or more diagnosis methods,
score each against ground truth, and aggregate over trials.

- :mod:`repro.campaign.samplers` -- randomized defect-set sampling,
- :mod:`repro.campaign.metrics` -- per-trial scoring (recall / precision /
  resolution) with equivalence-aware site matching,
- :mod:`repro.campaign.driver` -- the trial/campaign runner,
- :mod:`repro.campaign.runner` -- resilient execution (worker pool,
  per-trial timeout, retry, checkpoint/resume),
- :mod:`repro.campaign.journal` -- the append-only JSONL trial journal,
- :mod:`repro.campaign.tables` -- plain-text table/figure rendering used
  by the benchmark harness.
"""

from repro.campaign.samplers import DefectMix, sample_defect_set
from repro.campaign.metrics import TrialOutcome, score_report
from repro.campaign.driver import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    TrialResult,
)
from repro.campaign.journal import Journal, TrialRecord
from repro.campaign.runner import RunnerConfig, execute_campaign
from repro.campaign.tables import format_table, format_series
from repro.campaign.volume import VolumeAggregate, aggregate_reports

__all__ = [
    "DefectMix",
    "sample_defect_set",
    "TrialOutcome",
    "score_report",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "TrialResult",
    "Journal",
    "TrialRecord",
    "RunnerConfig",
    "execute_campaign",
    "format_table",
    "format_series",
    "VolumeAggregate",
    "aggregate_reports",
]
