"""The campaign runner: injected-defect trials end to end.

A :class:`Campaign` owns one circuit and one test set (ATPG-generated and
cached per circuit) and runs seeded trials: sample a defect set, emulate
the failing device, collect the datalog, run each requested diagnosis
method, and score it against ground truth.  Every experiment table in
``benchmarks/`` is a thin configuration of this driver.

Execution (worker pools, per-trial timeouts, retry, checkpoint/resume)
lives in :mod:`repro.campaign.runner`; :meth:`Campaign.run` delegates to
it and with the default :class:`~repro.campaign.runner.RunnerConfig`
behaves exactly like the historical serial in-process loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Sequence

from repro._rng import make_rng, spawn
from repro.atpg.random_gen import generate_stuck_at_tests
from repro.campaign.metrics import Aggregate, TrialOutcome, aggregate_by, score_report
from repro.campaign.samplers import DEFAULT_MIX, DefectMix, sample_defect_set
from repro.circuit.library import load_circuit
from repro.circuit.netlist import Netlist
from repro.core.budget import Budget
from repro.core.diagnose import DiagnosisConfig, Diagnoser
from repro.core.single_fault import diagnose_single_fault
from repro.core.slat import diagnose_slat
from repro.errors import FaultModelError, OscillationError, ReproError, TrialError
from repro.obs.metrics import record_ingest, record_skip_reasons
from repro.obs.trace import (
    STAGES,
    Tracer,
    install_tracer,
    span_count,
    stage_seconds,
    uninstall_tracer,
)
from repro.sim.patterns import PatternSet
from repro.tester.harness import apply_test

if TYPE_CHECKING:
    from repro.campaign.runner import RunnerConfig

#: Keyed by (circuit name, pattern-content fingerprint): two different
#: pattern sets of equal length hash differently, so they never collide the
#: way the old ``(name, n)`` key could.  Module-level caches are per
#: process by construction, which makes them safe under the multi-process
#: runner -- each worker warms its own copy (fork inherits the parent's).
_dictionary_cache: dict[tuple[str, str], object] = {}


def dictionary_for(netlist: Netlist, patterns: PatternSet):
    """Build-once fault dictionary for a (circuit, test set) pair.

    The cache mirrors reality: the dictionary is built once per test set
    and amortized over every diagnosed device; its build cost is reported
    in the diagnosis stats.
    """
    from repro.core.dictionary import build_dictionary

    key = (netlist.name, patterns.fingerprint())
    dictionary = _dictionary_cache.get(key)
    if dictionary is None:
        dictionary = build_dictionary(netlist, patterns)
        _dictionary_cache[key] = dictionary
    return dictionary


def _run_dictionary(netlist: Netlist, patterns: PatternSet, datalog):
    from repro.core.dictionary import diagnose_dictionary

    return diagnose_dictionary(dictionary_for(netlist, patterns), datalog)


#: Registry of diagnosis methods runnable by the campaign driver.
METHODS: dict[str, Callable] = {
    "xcover": lambda netlist, patterns, datalog: Diagnoser(netlist).diagnose(
        patterns, datalog
    ),
    "slat": diagnose_slat,
    "single": diagnose_single_fault,
    "dictionary": _run_dictionary,
}

#: Keyed by (circuit name, structural signature, seed, min_patterns): the
#: provisioned content is a pure function of the netlist and seed, and the
#: signature keeps two different netlists that share a name apart.
_pattern_cache: dict[tuple, PatternSet] = {}


def _netlist_signature(netlist: Netlist) -> tuple:
    stats = netlist.stats()
    return (netlist.name, stats["inputs"], stats["outputs"], stats["gates"])


def provision_patterns(
    netlist: Netlist, seed: int = 7, min_patterns: int = 16
) -> PatternSet:
    """ATPG-provisioned (compacted, topped-off) test set, cached per circuit.

    Tops up with random patterns when the compacted set is very short, so
    every circuit sees a believable production test length and delay
    defects get launch/capture diversity.
    """
    key = (_netlist_signature(netlist), seed, min_patterns)
    cached = _pattern_cache.get(key)
    if cached is not None:
        return cached
    report = generate_stuck_at_tests(netlist, seed=seed)
    patterns = report.patterns
    if patterns.n < min_patterns:
        filler = PatternSet.random(netlist, min_patterns - patterns.n, seed + 1)
        patterns = patterns.concat(filler).dedup()
    _pattern_cache[key] = patterns
    return patterns


@dataclass
class CampaignConfig:
    """One experiment's parameters (a row group of a table)."""

    circuit: str
    n_trials: int = 20
    k: int = 2
    mix: DefectMix = field(default_factory=lambda: DEFAULT_MIX)
    methods: tuple[str, ...] = ("xcover",)
    seed: int = 1
    interacting: bool = False
    diagnosis_config: DiagnosisConfig | None = None
    #: Degrade oscillating defect sets to three-valued simulation instead
    #: of resampling them away (see :func:`repro.tester.harness.apply_test`).
    oscillation_fallback: bool = True
    #: Resampling budget per trial before it counts as skipped.
    max_resample: int = 10
    #: Datalog noise spec (e.g. ``"flip:0.02"`` or ``"flip:0.02+dup:0.1"``,
    #: see :func:`repro.tester.noise.parse_noise_spec`).  When set, every
    #: trial's datalog is corrupted then re-ingested through the
    #: quarantining sanitizer, diagnosis runs on the sanitized evidence,
    #: and the validation oracle judges each report against the raw log.
    #: ``None`` (the default) leaves the pipeline byte-identical to the
    #: noise-free historical behavior.
    noise: str | None = None
    #: Record a per-trial span tree (see :mod:`repro.obs.trace`): each
    #: trial's record carries its spans, outcomes gain ``trace_*`` summary
    #: extras, and the assembled result collects every tree for Chrome-trace
    #: export.  Deliberately excluded from the journal fingerprint -- a
    #: traced resume replays an untraced journal and vice versa, because
    #: tracing never changes a trial's result.
    trace: bool = False

    def trial_seed(self, trial: int) -> int:
        """The deterministic seed of trial ``trial`` of this campaign."""
        return self.seed * 1_000_003 + trial


@dataclass
class TrialResult:
    """One trial's outcomes plus its resampling diary."""

    outcomes: list[TrialOutcome] | None
    #: Resample attempts by cause: exception class name for sampling /
    #: simulation errors, ``"no_failures"`` for defect sets the test set
    #: never observed.
    skip_reasons: dict[str, int] = field(default_factory=dict)

    @property
    def skipped(self) -> bool:
        return self.outcomes is None


@dataclass
class CampaignResult:
    """All trial outcomes of one campaign plus convenience aggregation."""

    config: CampaignConfig
    outcomes: list[TrialOutcome] = field(default_factory=list)
    skipped_trials: int = 0  #: defect sets that produced no failures
    wall_seconds: float = 0.0
    #: Resample attempts summed over all trials, by cause (exception class
    #: name or ``"no_failures"``) -- the breakdown behind ``skipped_trials``.
    skip_reasons: dict[str, int] = field(default_factory=dict)
    #: Trials that terminally failed (timeout, crash, in-trial exception).
    trial_errors: list[TrialError] = field(default_factory=list)
    #: Trials replayed from a journal instead of executed (``--resume``).
    resumed_trials: int = 0
    #: Per-trial span trees when ``config.trace`` was set: one
    #: ``{"trial", "seed", "spans"}`` entry per traced record, ready for
    #: :func:`repro.obs.trace.to_chrome_trace`.
    traces: list[dict] = field(default_factory=list)

    @property
    def failed_trials(self) -> int:
        return len(self.trial_errors)

    def by_method(self) -> dict[str, Aggregate]:
        return aggregate_by(self.outcomes, key=lambda o: o.method)

    def by_completeness(self) -> dict[str, Aggregate]:
        """Aggregates split by anytime verdict (exact vs truncated runs)."""
        return aggregate_by(self.outcomes, key=lambda o: o.completeness)

    def aggregate(self, method: str) -> Aggregate:
        return Aggregate.over(method, [o for o in self.outcomes if o.method == method])


class Campaign:
    """Reusable trial runner for one circuit."""

    def __init__(
        self,
        circuit: str | Netlist,
        patterns: PatternSet | None = None,
        pattern_seed: int = 7,
    ):
        self.netlist = (
            circuit if isinstance(circuit, Netlist) else load_circuit(circuit)
        )
        self.patterns = patterns or provision_patterns(self.netlist, pattern_seed)
        self.pattern_seed = pattern_seed
        #: (circuit name, pattern seed) when the campaign can be rebuilt
        #: from the registry in a spawned worker; None when it holds a
        #: custom netlist or pattern set and workers must inherit by fork.
        self.spawn_spec: tuple[str, int] | None = (
            (circuit, pattern_seed)
            if isinstance(circuit, str) and patterns is None
            else None
        )

    def run_trial(
        self,
        trial_seed: int,
        k: int,
        mix: DefectMix = DEFAULT_MIX,
        methods: Sequence[str] = ("xcover",),
        interacting: bool = False,
        diagnosis_config: DiagnosisConfig | None = None,
        max_resample: int = 10,
        oscillation_fallback: bool = True,
        deadline_seconds: float | None = None,
        noise: str | None = None,
    ) -> list[TrialOutcome] | None:
        """One trial: returns outcomes per method, or None if the sampled
        defect sets never produced observable failures."""
        return self.run_trial_ex(
            trial_seed,
            k,
            mix=mix,
            methods=methods,
            interacting=interacting,
            diagnosis_config=diagnosis_config,
            max_resample=max_resample,
            oscillation_fallback=oscillation_fallback,
            deadline_seconds=deadline_seconds,
            noise=noise,
        ).outcomes

    def run_trial_ex(
        self,
        trial_seed: int,
        k: int,
        mix: DefectMix = DEFAULT_MIX,
        methods: Sequence[str] = ("xcover",),
        interacting: bool = False,
        diagnosis_config: DiagnosisConfig | None = None,
        max_resample: int = 10,
        oscillation_fallback: bool = True,
        deadline_seconds: float | None = None,
        noise: str | None = None,
        tracer: Tracer | None = None,
    ) -> TrialResult:
        """Like :meth:`run_trial` but keeps the resampling diary.

        Every resample is attributed to its cause instead of vanishing
        into a counter: exception class names for sampling/simulation
        errors, ``"no_failures"`` for unobservable defect sets.

        ``deadline_seconds`` is a wall-clock budget for the *whole trial*
        shared across methods: each xcover-engine diagnosis gets the time
        remaining on the trial clock (further capped by the per-run
        ``deadline_seconds`` of ``diagnosis_config`` when set), so the
        trial degrades to truncated-but-reported diagnoses instead of
        being killed from outside.  Baseline methods (slat, single,
        dictionary) are not governed -- they are cheap by construction.

        ``noise`` (a spec string, see
        :func:`repro.tester.noise.parse_noise_spec`) corrupts the trial's
        datalog before ingestion; diagnosis then runs on the quarantined
        sanitizer output, every method's report is judged by the
        validation oracle against the raw log, and the outcome carries
        the ingestion anomaly counters and the oracle verdict.

        ``tracer`` (a :class:`~repro.obs.trace.Tracer`) records a
        ``method:<name>`` span per diagnosis method with the pipeline's
        stage spans nested inside, and adds ``trace_spans`` /
        ``trace_<stage>_s`` summary extras to each outcome.  Untraced
        trials carry none of these keys, so journals and CSVs stay
        byte-identical when tracing is off.
        """
        if tracer is not None:
            install_tracer(tracer)
            try:
                return self._run_trial_traced(
                    trial_seed,
                    k,
                    mix,
                    methods,
                    interacting,
                    diagnosis_config,
                    max_resample,
                    oscillation_fallback,
                    deadline_seconds,
                    noise,
                    tracer,
                )
            finally:
                uninstall_tracer(tracer)
        return self._run_trial_traced(
            trial_seed,
            k,
            mix,
            methods,
            interacting,
            diagnosis_config,
            max_resample,
            oscillation_fallback,
            deadline_seconds,
            noise,
            None,
        )

    def _run_trial_traced(
        self,
        trial_seed: int,
        k: int,
        mix: DefectMix,
        methods: Sequence[str],
        interacting: bool,
        diagnosis_config: DiagnosisConfig | None,
        max_resample: int,
        oscillation_fallback: bool,
        deadline_seconds: float | None,
        noise: str | None,
        tracer: Tracer | None,
    ) -> TrialResult:
        noise_model = None
        if noise is not None:
            from repro.tester.noise import parse_noise_spec

            noise_model = parse_noise_spec(noise)
        rng = make_rng(trial_seed)
        trial_deadline = (
            time.monotonic() + deadline_seconds
            if deadline_seconds is not None
            else None
        )
        skip_reasons: dict[str, int] = {}

        def count(reason: str) -> None:
            skip_reasons[reason] = skip_reasons.get(reason, 0) + 1

        on_oscillation = "fallback" if oscillation_fallback else "raise"
        for _attempt in range(max_resample):
            try:
                defects = sample_defect_set(
                    self.netlist, k, spawn(rng, "defects"), mix, interacting
                )
                noise_kwargs = (
                    {"noise": noise_model, "noise_seed": trial_seed}
                    if noise_model is not None
                    else {}
                )
                result = apply_test(
                    self.netlist,
                    self.patterns,
                    defects,
                    on_oscillation,
                    **noise_kwargs,
                )
            except (OscillationError, FaultModelError) as exc:
                count(type(exc).__name__)
                continue
            if result.device_fails:
                break
            count("no_failures")
        else:
            record_skip_reasons(skip_reasons)
            return TrialResult(outcomes=None, skip_reasons=skip_reasons)

        if result.ingest is not None:
            record_ingest(result.ingest)
        outcomes: list[TrialOutcome] = []
        for method in methods:
            budget = self._method_budget(diagnosis_config, trial_deadline)
            runner = self._resolve(method, diagnosis_config, budget, tracer)
            method_span = None
            if tracer is not None:
                with tracer.span(f"method:{method}", method=method) as method_span:
                    report = runner(self.netlist, self.patterns, result.datalog)
                    if noise_model is not None:
                        from repro.core.oracle import validate_report

                        report = validate_report(
                            self.netlist, self.patterns, report, result.raw
                        )
            else:
                report = runner(self.netlist, self.patterns, result.datalog)
                if noise_model is not None:
                    # Post-hoc oracle pass, uniform over every method: judge
                    # the report against the raw (pre-sanitized) evidence.
                    from repro.core.oracle import validate_report

                    report = validate_report(
                        self.netlist, self.patterns, report, result.raw
                    )
            outcome = score_report(
                self.netlist,
                report,
                defects,
                n_failing_patterns=len(result.datalog.failing_indices),
                n_fail_atoms=result.datalog.n_fail_atoms,
            )
            # Carry method-specific statistics (e.g. SLAT's non-SLAT pattern
            # counts) into the outcome so tables can aggregate them.
            outcome.extra.update(
                {
                    key: float(value)
                    for key, value in report.stats.items()
                    if isinstance(value, (int, float)) and key != "seconds"
                }
            )
            if result.oscillation_fallback:
                outcome.extra["oscillation_fallback"] = 1.0
                outcome.extra["x_atoms"] = float(result.x_atoms)
            if result.ingest is not None:
                outcome.extra["quarantined"] = float(result.ingest.quarantined)
                outcome.extra["ingest_anomalies"] = float(result.ingest.anomalies)
            if method_span is not None:
                # Flat per-method summary of the subtree: total seconds per
                # pipeline stage plus the span count.  Only present on
                # traced runs, so untraced journals/CSVs are unchanged.
                subtree = [method_span.to_dict()]
                totals = stage_seconds(subtree)
                outcome.extra["trace_spans"] = float(span_count(subtree))
                for stage in STAGES:
                    outcome.extra[f"trace_{stage}_s"] = totals.get(stage, 0.0)
            outcomes.append(outcome)
        record_skip_reasons(skip_reasons)
        return TrialResult(outcomes=outcomes, skip_reasons=skip_reasons)

    def run(
        self, config: CampaignConfig, runner: "RunnerConfig | None" = None
    ) -> CampaignResult:
        """Run ``config.n_trials`` seeded trials.

        ``runner`` selects the execution strategy (worker pool, per-trial
        timeout, retry, journal/resume); the default is the serial
        in-process loop.  See :mod:`repro.campaign.runner`.
        """
        from repro.campaign.runner import execute_campaign

        return execute_campaign(self, config, runner)

    @staticmethod
    def _method_budget(
        diagnosis_config: DiagnosisConfig | None,
        trial_deadline: float | None,
    ) -> Budget | None:
        """A fresh per-method :class:`Budget`, or None when ungoverned.

        Each method gets its own budget (truncation trails must not leak
        between methods of one trial) holding the config's count ceilings
        and the *smaller* of the config deadline and the time left on the
        trial clock.
        """
        deadline = (
            diagnosis_config.deadline_seconds
            if diagnosis_config is not None
            else None
        )
        if trial_deadline is not None:
            remaining = max(0.0, trial_deadline - time.monotonic())
            deadline = remaining if deadline is None else min(deadline, remaining)
        max_multiplets = (
            diagnosis_config.max_multiplets if diagnosis_config is not None else None
        )
        max_expansions = (
            diagnosis_config.max_expansions if diagnosis_config is not None else None
        )
        if deadline is None and max_multiplets is None and max_expansions is None:
            return None
        return Budget(
            deadline_seconds=deadline,
            max_multiplets=max_multiplets,
            max_expansions=max_expansions,
        )

    @staticmethod
    def _resolve(
        method: str,
        diagnosis_config: DiagnosisConfig | None,
        budget: Budget | None = None,
        tracer: Tracer | None = None,
    ) -> Callable:
        if method == "xcover" and (
            diagnosis_config is not None
            or budget is not None
            or tracer is not None
        ):
            return lambda netlist, patterns, datalog: Diagnoser(
                netlist, diagnosis_config
            ).diagnose(patterns, datalog, budget=budget, tracer=tracer)
        try:
            return METHODS[method]
        except KeyError:
            raise ReproError(
                f"unknown diagnosis method {method!r}; known: {sorted(METHODS)}"
            ) from None


def run_campaign(
    config: CampaignConfig, runner: "RunnerConfig | None" = None
) -> CampaignResult:
    """Convenience one-shot campaign over a registered circuit."""
    return Campaign(config.circuit).run(config, runner)


def run_noise_sweep(
    config: CampaignConfig,
    model: str = "flip",
    rates: Sequence[float] = (0.0, 0.01, 0.02, 0.05, 0.1),
    runner: "RunnerConfig | None" = None,
) -> dict[float, CampaignResult]:
    """The noise robustness axis: one campaign per corruption rate.

    Every rate reuses the same circuit, test set, defect samples and
    diagnosis configuration -- only the datalog corruption varies -- so
    per-method resolution/recall/``confirmed_rate`` curves against the
    noise rate isolate the cost of corrupted evidence.  Rate 0.0 runs
    with the noise machinery disabled entirely except for the oracle
    (which then judges reports against the clean datalog), making it the
    byte-identical-resolution anchor of the curve.
    """
    campaign = Campaign(config.circuit)
    results: dict[float, CampaignResult] = {}
    for rate in rates:
        spec = f"{model}:{rate:g}"
        results[rate] = campaign.run(replace(config, noise=spec), runner)
    return results
