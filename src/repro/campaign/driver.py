"""The campaign runner: injected-defect trials end to end.

A :class:`Campaign` owns one circuit and one test set (ATPG-generated and
cached per circuit) and runs seeded trials: sample a defect set, emulate
the failing device, collect the datalog, run each requested diagnosis
method, and score it against ground truth.  Every experiment table in
``benchmarks/`` is a thin configuration of this driver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro._rng import make_rng, spawn
from repro.atpg.random_gen import generate_stuck_at_tests
from repro.campaign.metrics import Aggregate, TrialOutcome, aggregate_by, score_report
from repro.campaign.samplers import DEFAULT_MIX, DefectMix, sample_defect_set
from repro.circuit.library import load_circuit
from repro.circuit.netlist import Netlist
from repro.core.diagnose import DiagnosisConfig, Diagnoser
from repro.core.single_fault import diagnose_single_fault
from repro.core.slat import diagnose_slat
from repro.errors import FaultModelError, OscillationError, ReproError
from repro.sim.patterns import PatternSet
from repro.tester.harness import apply_test

_dictionary_cache: dict[tuple[str, int], object] = {}


def _run_dictionary(netlist: Netlist, patterns: PatternSet, datalog):
    """Dictionary baseline with a per-(circuit, test set) build cache.

    The cache mirrors reality: the dictionary is built once per test set
    and amortized over every diagnosed device; its build cost is reported
    in the diagnosis stats.
    """
    from repro.core.dictionary import build_dictionary, diagnose_dictionary

    key = (netlist.name, patterns.n)
    dictionary = _dictionary_cache.get(key)
    if dictionary is None:
        dictionary = build_dictionary(netlist, patterns)
        _dictionary_cache[key] = dictionary
    return diagnose_dictionary(dictionary, datalog)


#: Registry of diagnosis methods runnable by the campaign driver.
METHODS: dict[str, Callable] = {
    "xcover": lambda netlist, patterns, datalog: Diagnoser(netlist).diagnose(
        patterns, datalog
    ),
    "slat": diagnose_slat,
    "single": diagnose_single_fault,
    "dictionary": _run_dictionary,
}

_pattern_cache: dict[tuple[str, int], PatternSet] = {}


def provision_patterns(
    netlist: Netlist, seed: int = 7, min_patterns: int = 16
) -> PatternSet:
    """ATPG-provisioned (compacted, topped-off) test set, cached per circuit.

    Tops up with random patterns when the compacted set is very short, so
    every circuit sees a believable production test length and delay
    defects get launch/capture diversity.
    """
    key = (netlist.name, seed)
    cached = _pattern_cache.get(key)
    if cached is not None:
        return cached
    report = generate_stuck_at_tests(netlist, seed=seed)
    patterns = report.patterns
    if patterns.n < min_patterns:
        filler = PatternSet.random(netlist, min_patterns - patterns.n, seed + 1)
        patterns = patterns.concat(filler).dedup()
    _pattern_cache[key] = patterns
    return patterns


@dataclass
class CampaignConfig:
    """One experiment's parameters (a row group of a table)."""

    circuit: str
    n_trials: int = 20
    k: int = 2
    mix: DefectMix = field(default_factory=lambda: DEFAULT_MIX)
    methods: tuple[str, ...] = ("xcover",)
    seed: int = 1
    interacting: bool = False
    diagnosis_config: DiagnosisConfig | None = None


@dataclass
class CampaignResult:
    """All trial outcomes of one campaign plus convenience aggregation."""

    config: CampaignConfig
    outcomes: list[TrialOutcome] = field(default_factory=list)
    skipped_trials: int = 0  #: defect sets that produced no failures/oscillated
    wall_seconds: float = 0.0

    def by_method(self) -> dict[str, Aggregate]:
        return aggregate_by(self.outcomes, key=lambda o: o.method)

    def aggregate(self, method: str) -> Aggregate:
        return Aggregate.over(method, [o for o in self.outcomes if o.method == method])


class Campaign:
    """Reusable trial runner for one circuit."""

    def __init__(
        self,
        circuit: str | Netlist,
        patterns: PatternSet | None = None,
        pattern_seed: int = 7,
    ):
        self.netlist = (
            circuit if isinstance(circuit, Netlist) else load_circuit(circuit)
        )
        self.patterns = patterns or provision_patterns(self.netlist, pattern_seed)

    def run_trial(
        self,
        trial_seed: int,
        k: int,
        mix: DefectMix = DEFAULT_MIX,
        methods: Sequence[str] = ("xcover",),
        interacting: bool = False,
        diagnosis_config: DiagnosisConfig | None = None,
        max_resample: int = 10,
    ) -> list[TrialOutcome] | None:
        """One trial: returns outcomes per method, or None if the sampled
        defect sets never produced observable failures."""
        rng = make_rng(trial_seed)
        for _attempt in range(max_resample):
            try:
                defects = sample_defect_set(
                    self.netlist, k, spawn(rng, "defects"), mix, interacting
                )
                result = apply_test(self.netlist, self.patterns, defects)
            except (OscillationError, FaultModelError):
                continue
            if result.device_fails:
                break
        else:
            return None

        outcomes: list[TrialOutcome] = []
        for method in methods:
            runner = self._resolve(method, diagnosis_config)
            report = runner(self.netlist, self.patterns, result.datalog)
            outcome = score_report(
                self.netlist,
                report,
                defects,
                n_failing_patterns=len(result.datalog.failing_indices),
                n_fail_atoms=result.datalog.n_fail_atoms,
            )
            # Carry method-specific statistics (e.g. SLAT's non-SLAT pattern
            # counts) into the outcome so tables can aggregate them.
            outcome.extra.update(
                {
                    key: float(value)
                    for key, value in report.stats.items()
                    if isinstance(value, (int, float)) and key != "seconds"
                }
            )
            outcomes.append(outcome)
        return outcomes

    def run(self, config: CampaignConfig) -> CampaignResult:
        """Run ``config.n_trials`` seeded trials."""
        started = time.perf_counter()
        result = CampaignResult(config=config)
        for trial in range(config.n_trials):
            outcomes = self.run_trial(
                trial_seed=config.seed * 1_000_003 + trial,
                k=config.k,
                mix=config.mix,
                methods=config.methods,
                interacting=config.interacting,
                diagnosis_config=config.diagnosis_config,
            )
            if outcomes is None:
                result.skipped_trials += 1
                continue
            result.outcomes.extend(outcomes)
        result.wall_seconds = time.perf_counter() - started
        return result

    @staticmethod
    def _resolve(
        method: str, diagnosis_config: DiagnosisConfig | None
    ) -> Callable:
        if method == "xcover" and diagnosis_config is not None:
            return lambda netlist, patterns, datalog: Diagnoser(
                netlist, diagnosis_config
            ).diagnose(patterns, datalog)
        try:
            return METHODS[method]
        except KeyError:
            raise ReproError(
                f"unknown diagnosis method {method!r}; known: {sorted(METHODS)}"
            ) from None


def run_campaign(config: CampaignConfig) -> CampaignResult:
    """Convenience one-shot campaign over a registered circuit."""
    return Campaign(config.circuit).run(config)
