"""Campaign result export: CSV and JSON for downstream analysis.

The benchmark harness prints human tables; this module emits
machine-readable artifacts so campaign data can be re-analyzed (plotting,
regression tracking, cross-lot comparisons) without re-running anything.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Mapping

from repro.campaign.driver import CampaignResult
from repro.campaign.metrics import Aggregate, TrialOutcome

OUTCOME_FIELDS = [
    "circuit",
    "method",
    "k",
    "families",
    "recall_exact",
    "recall_net",
    "recall_near",
    "precision",
    "resolution",
    "success",
    "n_failing_patterns",
    "n_fail_atoms",
    "uncovered_atoms",
    "seconds",
    "best_multiplet_size",
    "completeness",
    "consistency",
    "quarantined",
]

AGGREGATE_FIELDS = [
    "group",
    "n_trials",
    "recall_exact",
    "recall_net",
    "recall_near",
    "precision",
    "resolution",
    "success_rate",
    "uncovered_atoms",
    "seconds",
    "truncated_rate",
    "confirmed_rate",
]


def _outcome_row(outcome: TrialOutcome) -> dict:
    row = {
        field: getattr(outcome, field)
        for field in OUTCOME_FIELDS
        if field != "quarantined"
    }
    row["families"] = "+".join(outcome.families)
    row["success"] = int(outcome.success)
    row["quarantined"] = int(outcome.extra.get("quarantined", 0))
    return row


def outcomes_to_csv(result: CampaignResult) -> str:
    """One CSV row per (trial, method) outcome."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=OUTCOME_FIELDS)
    writer.writeheader()
    for outcome in result.outcomes:
        writer.writerow(_outcome_row(outcome))
    return buffer.getvalue()


def aggregates_to_csv(aggregates: Mapping[str, Aggregate]) -> str:
    """One CSV row per aggregation group (typically per method)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=AGGREGATE_FIELDS)
    writer.writeheader()
    for aggregate in aggregates.values():
        writer.writerow({field: getattr(aggregate, field) for field in AGGREGATE_FIELDS})
    return buffer.getvalue()


def result_to_json(result: CampaignResult, indent: int | None = 2) -> str:
    """Full campaign record: config echo, outcomes, per-method aggregates."""
    config = result.config
    payload = {
        "config": {
            "circuit": config.circuit,
            "n_trials": config.n_trials,
            "k": config.k,
            "methods": list(config.methods),
            "seed": config.seed,
            "interacting": config.interacting,
            "mix": dict(config.mix.items()),
            "noise": config.noise,
        },
        "skipped_trials": result.skipped_trials,
        "skip_reasons": dict(result.skip_reasons),
        "trial_errors": [err.to_dict() for err in result.trial_errors],
        "resumed_trials": result.resumed_trials,
        "wall_seconds": result.wall_seconds,
        "outcomes": [
            {**_outcome_row(o), "extra": dict(o.extra)} for o in result.outcomes
        ],
        "aggregates": {
            name: {field: getattr(agg, field) for field in AGGREGATE_FIELDS}
            for name, agg in result.by_method().items()
        },
    }
    return json.dumps(payload, indent=indent)
