"""Campaign result export: CSV and JSON for downstream analysis.

The benchmark harness prints human tables; this module emits
machine-readable artifacts so campaign data can be re-analyzed (plotting,
regression tracking, cross-lot comparisons) without re-running anything.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Mapping

from repro.campaign.driver import CampaignResult
from repro.campaign.metrics import Aggregate, TrialOutcome
from repro.obs.trace import STAGES

#: Simulation-work profiling columns, sourced from ``outcome.extra`` (the
#: driver copies every numeric ``report.stats`` entry there).  Rows from
#: journals written before these counters existed default to 0.
SIM_STAT_FIELDS = [
    "sim_gate_evals",
    "sim_full_passes",
    "sim_cone_passes",
    "sim_cache_hits",
    "sim_cache_misses",
]

#: Per-stage tracing columns (``--trace`` campaigns only): span count plus
#: seconds per pipeline stage, sourced from the ``trace_*`` extras the
#: driver computes from each method's span subtree.  Emitted only when at
#: least one outcome carries them, so untraced CSVs keep the historical
#: header byte-for-byte.
TRACE_STAT_FIELDS = ["trace_spans"] + [f"trace_{stage}_s" for stage in STAGES]

OUTCOME_FIELDS = [
    "circuit",
    "method",
    "k",
    "families",
    "recall_exact",
    "recall_net",
    "recall_near",
    "precision",
    "resolution",
    "success",
    "n_failing_patterns",
    "n_fail_atoms",
    "uncovered_atoms",
    "seconds",
    "best_multiplet_size",
    "completeness",
    "consistency",
    "optimality",
    "quarantined",
    *SIM_STAT_FIELDS,
]

AGGREGATE_FIELDS = [
    "group",
    "n_trials",
    "recall_exact",
    "recall_net",
    "recall_near",
    "precision",
    "resolution",
    "success_rate",
    "uncovered_atoms",
    "seconds",
    "truncated_rate",
    "confirmed_rate",
]


def _outcome_row(outcome: TrialOutcome, trace: bool = False) -> dict:
    from_extra = {"quarantined", *SIM_STAT_FIELDS}
    row = {
        field: getattr(outcome, field)
        for field in OUTCOME_FIELDS
        if field not in from_extra
    }
    row["families"] = "+".join(outcome.families)
    row["success"] = int(outcome.success)
    for field in from_extra:
        row[field] = int(outcome.extra.get(field, 0))
    if trace:
        # Seconds stay float (unlike the integral sim counters); rows from
        # untraced trials in a mixed result default to 0.0.
        for field in TRACE_STAT_FIELDS:
            row[field] = float(outcome.extra.get(field, 0.0))
    return row


def outcomes_to_csv(result: CampaignResult, trace: bool | None = None) -> str:
    """One CSV row per (trial, method) outcome.

    ``trace`` appends the :data:`TRACE_STAT_FIELDS` columns; the default
    (``None``) auto-detects from the outcomes, so untraced results keep
    the historical header.
    """
    if trace is None:
        trace = any("trace_spans" in o.extra for o in result.outcomes)
    fieldnames = OUTCOME_FIELDS + TRACE_STAT_FIELDS if trace else OUTCOME_FIELDS
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for outcome in result.outcomes:
        writer.writerow(_outcome_row(outcome, trace=trace))
    return buffer.getvalue()


def aggregates_to_csv(aggregates: Mapping[str, Aggregate]) -> str:
    """One CSV row per aggregation group (typically per method)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=AGGREGATE_FIELDS)
    writer.writeheader()
    for aggregate in aggregates.values():
        writer.writerow({field: getattr(aggregate, field) for field in AGGREGATE_FIELDS})
    return buffer.getvalue()


def result_to_json(result: CampaignResult, indent: int | None = 2) -> str:
    """Full campaign record: config echo, outcomes, per-method aggregates."""
    config = result.config
    payload = {
        "config": {
            "circuit": config.circuit,
            "n_trials": config.n_trials,
            "k": config.k,
            "methods": list(config.methods),
            "seed": config.seed,
            "interacting": config.interacting,
            "mix": dict(config.mix.items()),
            "noise": config.noise,
        },
        "skipped_trials": result.skipped_trials,
        "skip_reasons": dict(result.skip_reasons),
        "trial_errors": [err.to_dict() for err in result.trial_errors],
        "resumed_trials": result.resumed_trials,
        "wall_seconds": result.wall_seconds,
        "outcomes": [
            {**_outcome_row(o), "extra": dict(o.extra)} for o in result.outcomes
        ],
        "aggregates": {
            name: {field: getattr(agg, field) for field in AGGREGATE_FIELDS}
            for name, agg in result.by_method().items()
        },
    }
    return json.dumps(payload, indent=indent)
