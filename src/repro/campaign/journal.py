"""Append-only JSONL trial journal: checkpoint/resume for campaigns.

Every completed, skipped or failed trial is written as one JSON line the
moment it finishes, so a campaign killed at any point (including SIGKILL
mid-write -- a torn final line is tolerated) can be restarted with
``resume`` and replay nothing: journaled trials are folded back into the
result and only the remainder executes.  Because trials are seeded and the
serialization round-trips floats exactly, a resumed campaign converges to
aggregates identical to an uninterrupted run.

Record schema (one object per line)::

    {"kind": "header", "v": 1, "fingerprint": "<config digest>"}
    {"kind": "trial", "v": 1, "circuit": "c432", "trial": 5, "seed": 1000016,
     "status": "ok" | "skipped" | "error", "attempts": 1, "elapsed": 0.12,
     "outcomes": [...],            # present when status == "ok"
     "skip_reasons": {"no_failures": 2, "OscillationError": 1},
     "error": {...}}               # present when status == "error"

The header pins the campaign configuration (everything except the trial
count, so a journaled campaign may be *extended* with more trials); a
resume against a journal written under a different configuration raises
:class:`~repro.errors.JournalError` instead of silently mixing runs.

Outcome payloads are field-generic over :class:`TrialOutcome`, so fields
added later (e.g. the anytime ``completeness`` verdict) serialize without
schema changes; reading is symmetric -- unknown fields in newer journals
are dropped and missing fields in older journals take their dataclass
defaults -- so journals stay readable across versions in both directions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import IO

from repro.campaign.metrics import TrialOutcome
from repro.errors import JournalError, TrialError

SCHEMA_VERSION = 1


# -- outcome serialization ----------------------------------------------------

_OUTCOME_FIELDS = tuple(f.name for f in fields(TrialOutcome))


def outcome_to_dict(outcome: TrialOutcome) -> dict:
    """Exact, JSON-safe image of a :class:`TrialOutcome`."""
    payload = {name: getattr(outcome, name) for name in _OUTCOME_FIELDS}
    payload["families"] = list(outcome.families)
    payload["extra"] = dict(outcome.extra)
    return payload


def outcome_from_dict(payload: dict) -> TrialOutcome:
    """Inverse of :func:`outcome_to_dict` (bit-exact for floats)."""
    data = dict(payload)
    data["families"] = tuple(data.get("families", ()))
    data["extra"] = dict(data.get("extra", {}))
    unknown = set(data) - set(_OUTCOME_FIELDS)
    for name in unknown:  # forward compatibility: ignore newer fields
        del data[name]
    return TrialOutcome(**data)


# -- trial records ------------------------------------------------------------


@dataclass
class TrialRecord:
    """One trial's terminal state, as journaled."""

    circuit: str
    trial: int
    seed: int
    status: str  #: "ok" | "skipped" | "error"
    attempts: int = 1
    elapsed: float = 0.0
    outcomes: list[TrialOutcome] = field(default_factory=list)
    skip_reasons: dict[str, int] = field(default_factory=dict)
    error: TrialError | None = None
    #: Span-tree forest (plain dicts, see :mod:`repro.obs.trace`) when the
    #: trial ran traced; None otherwise.  Serialized only when present, so
    #: untraced journal lines are byte-identical to the historical format.
    trace: list | None = None

    @property
    def key(self) -> tuple[str, int, int]:
        return (self.circuit, self.seed, self.trial)

    def to_dict(self) -> dict:
        payload = {
            "kind": "trial",
            "v": SCHEMA_VERSION,
            "circuit": self.circuit,
            "trial": self.trial,
            "seed": self.seed,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
            "skip_reasons": dict(self.skip_reasons),
        }
        if self.status == "ok":
            payload["outcomes"] = [outcome_to_dict(o) for o in self.outcomes]
        if self.error is not None:
            payload["error"] = self.error.to_dict()
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TrialRecord":
        try:
            record = cls(
                circuit=str(payload["circuit"]),
                trial=int(payload["trial"]),
                seed=int(payload["seed"]),
                status=str(payload["status"]),
                attempts=int(payload.get("attempts", 1)),
                elapsed=float(payload.get("elapsed", 0.0)),
                outcomes=[
                    outcome_from_dict(o) for o in payload.get("outcomes", [])
                ],
                skip_reasons={
                    str(k): int(v)
                    for k, v in payload.get("skip_reasons", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"malformed trial record: {exc}") from exc
        if record.status not in ("ok", "skipped", "error"):
            raise JournalError(f"unknown trial status {record.status!r}")
        if "error" in payload:
            record.error = TrialError.from_dict(payload["error"])
        trace = payload.get("trace")
        if isinstance(trace, list):
            record.trace = trace
        return record


def config_fingerprint(config) -> str:
    """Digest of everything that determines a trial's result.

    ``n_trials`` is deliberately excluded: a journaled campaign can be
    extended with more trials without invalidating completed ones.
    """
    image = (
        config.circuit,
        config.k,
        tuple(config.methods),
        config.seed,
        config.interacting,
        tuple(config.mix.items()),
        repr(config.diagnosis_config),
    )
    # Appended only when set, so journals written before the noise axis
    # existed keep their fingerprint and stay resumable.
    if getattr(config, "noise", None):
        image = image + (config.noise,)
    return hashlib.sha256(repr(image).encode()).hexdigest()[:16]


# -- the journal file ---------------------------------------------------------


class Journal:
    """Append-only JSONL writer/reader over one campaign's trials."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh: IO[str] | None = None

    # -- reading --------------------------------------------------------------

    def load(self, fingerprint: str | None = None) -> dict[tuple, TrialRecord]:
        """All journaled trial records keyed by ``(circuit, seed, trial)``.

        A torn final line (the driver was killed mid-write) is discarded;
        a torn line anywhere *else* means the file was corrupted, not
        interrupted, and raises.  When two records share a key the later
        one wins (a retried trial re-journals its terminal state).  When
        ``fingerprint`` is given, the header must match it.
        """
        if not self.path.exists():
            return {}
        records: dict[tuple, TrialRecord] = {}
        header_seen = False
        lines = self.path.read_text().splitlines()
        for lineno, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    break  # torn tail from an interrupted append
                raise JournalError(
                    f"{self.path}:{lineno}: corrupt journal line: {exc}"
                ) from exc
            kind = payload.get("kind")
            if kind == "header":
                header_seen = True
                if (
                    fingerprint is not None
                    and payload.get("fingerprint") != fingerprint
                ):
                    raise JournalError(
                        f"{self.path}: journal was written by a different "
                        f"campaign configuration (fingerprint "
                        f"{payload.get('fingerprint')!r} != {fingerprint!r}); "
                        "refusing to resume"
                    )
                continue
            if kind != "trial":
                continue  # unknown record kinds are skipped, not fatal
            record = TrialRecord.from_dict(payload)
            records[record.key] = record
        if records and not header_seen and fingerprint is not None:
            raise JournalError(
                f"{self.path}: journal has trial records but no header; "
                "cannot verify it belongs to this campaign"
            )
        return records

    # -- writing --------------------------------------------------------------

    def start(self, fingerprint: str, resume: bool) -> dict[tuple, TrialRecord]:
        """Open for appending; returns already-completed records.

        With ``resume=False`` any existing journal is truncated and a fresh
        header written; with ``resume=True`` existing records are loaded
        (validating the header) and appends continue after them.
        """
        completed: dict[tuple, TrialRecord] = {}
        if resume:
            completed = self.load(fingerprint)
            self._drop_torn_tail()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        mode = "a" if resume and self.path.exists() else "w"
        self._fh = self.path.open(mode, encoding="utf-8")
        if mode == "w" or (mode == "a" and not completed and self._is_empty()):
            self._write_line(
                {"kind": "header", "v": SCHEMA_VERSION, "fingerprint": fingerprint}
            )
        return completed

    def append(self, record: TrialRecord) -> None:
        if self._fh is None:
            raise JournalError("journal is not open for writing")
        self._write_line(record.to_dict())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- internals ------------------------------------------------------------

    def _drop_torn_tail(self) -> None:
        """Truncate a partially written final line so appends start clean."""
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        cut = raw.rfind(b"\n") + 1
        if cut < len(raw):
            with self.path.open("r+b") as fh:
                fh.truncate(cut)

    def _is_empty(self) -> bool:
        try:
            return self.path.stat().st_size == 0
        except OSError:
            return True

    def _write_line(self, payload: dict) -> None:
        assert self._fh is not None
        self._fh.write(json.dumps(payload, separators=(",", ":")) + "\n")
        self._fh.flush()
