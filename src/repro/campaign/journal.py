"""Append-only JSONL trial journal: checkpoint/resume for campaigns.

Every completed, skipped or failed trial is written as one JSON line the
moment it finishes, so a campaign killed at any point (including SIGKILL
mid-write -- a torn final line is tolerated) can be restarted with
``resume`` and replay nothing: journaled trials are folded back into the
result and only the remainder executes.  Because trials are seeded and the
serialization round-trips floats exactly, a resumed campaign converges to
aggregates identical to an uninterrupted run.

Record schema (one object per line)::

    {"kind": "header", "v": 1, "fingerprint": "<config digest>"}
    {"kind": "trial", "v": 1, "circuit": "c432", "trial": 5, "seed": 1000016,
     "status": "ok" | "skipped" | "error", "attempts": 1, "elapsed": 0.12,
     "outcomes": [...],            # present when status == "ok"
     "skip_reasons": {"no_failures": 2, "OscillationError": 1},
     "error": {...}}               # present when status == "error"

The header pins the campaign configuration (everything except the trial
count, so a journaled campaign may be *extended* with more trials); a
resume against a journal written under a different configuration raises
:class:`~repro.errors.JournalError` instead of silently mixing runs.

Outcome payloads are field-generic over :class:`TrialOutcome`, so fields
added later (e.g. the anytime ``completeness`` verdict) serialize without
schema changes; reading is symmetric -- unknown fields in newer journals
are dropped and missing fields in older journals take their dataclass
defaults -- so journals stay readable across versions in both directions.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import IO

try:  # POSIX only; Windows falls back to lock-free appends.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

from repro import chaos
from repro.campaign.metrics import TrialOutcome
from repro.errors import JournalError, TrialError

SCHEMA_VERSION = 1


# -- JSONL primitives (shared by the trial journal and the job store) ---------


def load_jsonl(path: str | Path) -> list[tuple[int, dict]]:
    """Parse a JSONL file into ``(lineno, payload)`` pairs.

    A torn *final* line (the writer was killed mid-append) is silently
    dropped; a malformed line anywhere else means corruption rather than
    interruption and raises :class:`~repro.errors.JournalError`.
    """
    path = Path(path)
    if not path.exists():
        return []
    records: list[tuple[int, dict]] = []
    lines = path.read_text().splitlines()
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # torn tail from an interrupted append
            raise JournalError(
                f"{path}:{lineno}: corrupt journal line: {exc}"
            ) from exc
        if isinstance(payload, dict):
            records.append((lineno, payload))
    return records


class JsonlAppender:
    """Append-only JSONL writer with per-record durability and a writer lock.

    Every :meth:`append` flushes and (by default) ``os.fsync``\\ s, so a
    record that was acknowledged survives ``kill -9`` of the process and
    most machine-level crashes; campaigns chasing throughput over
    durability can opt out with ``fsync=False`` (the historical behavior:
    flush only).

    On :meth:`open` an advisory ``fcntl`` lock is taken on the file, so a
    second writer on the same path -- another daemon instance, a campaign
    resumed twice -- fails fast with a :class:`JournalError` instead of
    silently interleaving lines.  The lock is per open-file-description:
    two handles in one process conflict just like two processes do.

    ``chaos_site`` names this appender's fault-injection sites
    (``<site>.write`` / ``<site>.fsync`` / ``<site>.lock``, see
    :mod:`repro.chaos`); disarmed, the checkpoints are no-ops.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = True,
        lock: bool = True,
        chaos_site: str = "journal",
    ):
        self.path = Path(path)
        self.fsync = fsync
        self.lock = lock
        self.chaos_site = chaos_site
        self._fh: IO[str] | None = None

    @property
    def is_open(self) -> bool:
        return self._fh is not None

    def open(self, *, truncate: bool = False) -> None:
        """Open for appending (locking first), dropping any torn tail."""
        if self._fh is not None:
            raise JournalError(f"{self.path}: appender is already open")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fh = self.path.open("w" if truncate else "a", encoding="utf-8")
        if self.lock and fcntl is not None:
            try:
                chaos.checkpoint(f"{self.chaos_site}.lock")
            except OSError:
                fh.close()
                raise
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
            except OSError as exc:
                fh.close()
                raise JournalError(
                    f"{self.path}: journal is locked by another writer "
                    f"({exc}); refusing to interleave records"
                ) from exc
        if not truncate:
            self._truncate_torn_tail()
        self._fh = fh

    def append(self, payload: dict) -> None:
        if self._fh is None:
            raise JournalError(f"{self.path}: appender is not open")
        line = json.dumps(payload, separators=(",", ":")) + "\n"
        chaos.checkpoint(f"{self.chaos_site}.write", nbytes=len(line))
        self._fh.write(line)
        self._fh.flush()
        if self.fsync:
            chaos.checkpoint(f"{self.chaos_site}.fsync")
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()  # releases the advisory lock
            self._fh = None

    def is_empty(self) -> bool:
        try:
            return self.path.stat().st_size == 0
        except OSError:
            return True

    def _truncate_torn_tail(self) -> None:
        """Repair an interrupted final append so new appends start clean.

        A final line that parses is a record whose newline never landed:
        keep it and supply the newline (``load`` already counts it, so
        truncating would silently lose an acknowledged record).  Anything
        else is a torn fragment and is cut.
        """
        if not self.path.exists():
            return
        raw = self.path.read_bytes()
        cut = raw.rfind(b"\n") + 1
        if cut >= len(raw):
            return
        try:
            json.loads(raw[cut:].decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            with self.path.open("r+b") as fh:
                fh.truncate(cut)
        else:
            with self.path.open("ab") as fh:
                fh.write(b"\n")


# -- outcome serialization ----------------------------------------------------

_OUTCOME_FIELDS = tuple(f.name for f in fields(TrialOutcome))


def outcome_to_dict(outcome: TrialOutcome) -> dict:
    """Exact, JSON-safe image of a :class:`TrialOutcome`."""
    payload = {name: getattr(outcome, name) for name in _OUTCOME_FIELDS}
    payload["families"] = list(outcome.families)
    payload["extra"] = dict(outcome.extra)
    return payload


def outcome_from_dict(payload: dict) -> TrialOutcome:
    """Inverse of :func:`outcome_to_dict` (bit-exact for floats)."""
    data = dict(payload)
    data["families"] = tuple(data.get("families", ()))
    data["extra"] = dict(data.get("extra", {}))
    unknown = set(data) - set(_OUTCOME_FIELDS)
    for name in unknown:  # forward compatibility: ignore newer fields
        del data[name]
    return TrialOutcome(**data)


# -- trial records ------------------------------------------------------------


@dataclass
class TrialRecord:
    """One trial's terminal state, as journaled."""

    circuit: str
    trial: int
    seed: int
    status: str  #: "ok" | "skipped" | "error"
    attempts: int = 1
    elapsed: float = 0.0
    outcomes: list[TrialOutcome] = field(default_factory=list)
    skip_reasons: dict[str, int] = field(default_factory=dict)
    error: TrialError | None = None
    #: Span-tree forest (plain dicts, see :mod:`repro.obs.trace`) when the
    #: trial ran traced; None otherwise.  Serialized only when present, so
    #: untraced journal lines are byte-identical to the historical format.
    trace: list | None = None

    @property
    def key(self) -> tuple[str, int, int]:
        return (self.circuit, self.seed, self.trial)

    def to_dict(self) -> dict:
        payload = {
            "kind": "trial",
            "v": SCHEMA_VERSION,
            "circuit": self.circuit,
            "trial": self.trial,
            "seed": self.seed,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed": self.elapsed,
            "skip_reasons": dict(self.skip_reasons),
        }
        if self.status == "ok":
            payload["outcomes"] = [outcome_to_dict(o) for o in self.outcomes]
        if self.error is not None:
            payload["error"] = self.error.to_dict()
        if self.trace is not None:
            payload["trace"] = self.trace
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "TrialRecord":
        try:
            record = cls(
                circuit=str(payload["circuit"]),
                trial=int(payload["trial"]),
                seed=int(payload["seed"]),
                status=str(payload["status"]),
                attempts=int(payload.get("attempts", 1)),
                elapsed=float(payload.get("elapsed", 0.0)),
                outcomes=[
                    outcome_from_dict(o) for o in payload.get("outcomes", [])
                ],
                skip_reasons={
                    str(k): int(v)
                    for k, v in payload.get("skip_reasons", {}).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise JournalError(f"malformed trial record: {exc}") from exc
        if record.status not in ("ok", "skipped", "error"):
            raise JournalError(f"unknown trial status {record.status!r}")
        if "error" in payload:
            record.error = TrialError.from_dict(payload["error"])
        trace = payload.get("trace")
        if isinstance(trace, list):
            record.trace = trace
        return record


def config_fingerprint(config) -> str:
    """Digest of everything that determines a trial's result.

    ``n_trials`` is deliberately excluded: a journaled campaign can be
    extended with more trials without invalidating completed ones.
    """
    image = (
        config.circuit,
        config.k,
        tuple(config.methods),
        config.seed,
        config.interacting,
        tuple(config.mix.items()),
        repr(config.diagnosis_config),
    )
    # Appended only when set, so journals written before the noise axis
    # existed keep their fingerprint and stay resumable.
    if getattr(config, "noise", None):
        image = image + (config.noise,)
    return hashlib.sha256(repr(image).encode()).hexdigest()[:16]


# -- the journal file ---------------------------------------------------------


class Journal:
    """Append-only JSONL writer/reader over one campaign's trials.

    ``fsync`` chooses per-record durability (see :class:`JsonlAppender`);
    the campaign hot path opts out via
    :attr:`~repro.campaign.runner.RunnerConfig.journal_fsync` while the
    diagnosis daemon's job store keeps the durable default.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True):
        self.path = Path(path)
        self._writer = JsonlAppender(path, fsync=fsync)

    # -- reading --------------------------------------------------------------

    def load(self, fingerprint: str | None = None) -> dict[tuple, TrialRecord]:
        """All journaled trial records keyed by ``(circuit, seed, trial)``.

        A torn final line (the driver was killed mid-write) is discarded;
        a torn line anywhere *else* means the file was corrupted, not
        interrupted, and raises.  When two records share a key the later
        one wins (a retried trial re-journals its terminal state).  When
        ``fingerprint`` is given, the header must match it.
        """
        if not self.path.exists():
            return {}
        records: dict[tuple, TrialRecord] = {}
        header_seen = False
        for _lineno, payload in load_jsonl(self.path):
            kind = payload.get("kind")
            if kind == "header":
                header_seen = True
                if (
                    fingerprint is not None
                    and payload.get("fingerprint") != fingerprint
                ):
                    raise JournalError(
                        f"{self.path}: journal was written by a different "
                        f"campaign configuration (fingerprint "
                        f"{payload.get('fingerprint')!r} != {fingerprint!r}); "
                        "refusing to resume"
                    )
                continue
            if kind != "trial":
                continue  # unknown record kinds are skipped, not fatal
            record = TrialRecord.from_dict(payload)
            records[record.key] = record
        if records and not header_seen and fingerprint is not None:
            raise JournalError(
                f"{self.path}: journal has trial records but no header; "
                "cannot verify it belongs to this campaign"
            )
        return records

    # -- writing --------------------------------------------------------------

    def start(self, fingerprint: str, resume: bool) -> dict[tuple, TrialRecord]:
        """Open for appending; returns already-completed records.

        With ``resume=False`` any existing journal is truncated and a fresh
        header written; with ``resume=True`` existing records are loaded
        (validating the header) and appends continue after them.
        """
        completed: dict[tuple, TrialRecord] = {}
        if resume:
            completed = self.load(fingerprint)
        self._writer.open(truncate=not (resume and self.path.exists()))
        if not completed and self._writer.is_empty():
            self._writer.append(
                {"kind": "header", "v": SCHEMA_VERSION, "fingerprint": fingerprint}
            )
        return completed

    def append(self, record: TrialRecord) -> None:
        if not self._writer.is_open:
            raise JournalError("journal is not open for writing")
        self._writer.append(record.to_dict())

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
