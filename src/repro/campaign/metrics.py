"""Per-trial diagnosis scoring.

Ground truth is the set of sites where the injected defects originate
errors.  Matching is equivalence-aware at three strictness levels:

- ``exact``: the reported site equals the true site,
- ``net``: the reported site lies on the true net (stem/branch conflated),
- ``near``: the reported net is within one gate of the true net -- the
  tolerance physical failure analysis actually works with, and the level
  at which logically equivalent candidates (e.g. an inverter's input vs
  output stuck faults) count as a correct localization.

The headline metrics follow diagnosis literature conventions:

- **recall** (a.k.a. diagnosability / accuracy): fraction of true sites
  located,
- **precision**: fraction of reported sites that are true (or adjacent),
- **resolution**: number of reported candidate sites (lower is better,
  given recall),
- **success**: all true defect sites located in one report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.circuit.netlist import Netlist, Site
from repro.core.budget import COMPLETENESS_EXACT
from repro.core.report import DiagnosisReport
from repro.faults.models import Defect


def _neighbor_nets(netlist: Netlist, net: str) -> frozenset[str]:
    """The net itself, its driver's inputs and its direct fanout outputs."""
    near = {net}
    gate = netlist.driver(net)
    if gate is not None:
        near.update(gate.inputs)
    for dest, _pin in netlist.fanout(net):
        near.add(dest)
    return frozenset(near)


@dataclass
class TrialOutcome:
    """Scored result of one (defect set, method) diagnosis run."""

    circuit: str
    method: str
    k: int
    families: tuple[str, ...]
    recall_exact: float
    recall_net: float
    recall_near: float
    precision: float
    resolution: int
    success: bool
    n_failing_patterns: int
    n_fail_atoms: int
    uncovered_atoms: int
    seconds: float
    best_multiplet_size: int = 0
    #: Anytime verdict of the underlying report ("exact" unless a budget
    #: truncated the run -- then "truncated" or "deadline").
    completeness: str = COMPLETENESS_EXACT
    #: Oracle consistency verdict of the underlying report ("confirmed",
    #: "partial", "refuted", "unvalidated"); empty when the oracle never ran.
    consistency: str = ""
    #: Cover-cardinality claim of the underlying report ("optimal",
    #: "bounded", "budget"); empty when the default greedy engine ran.
    optimality: str = ""
    extra: dict[str, float] = field(default_factory=dict)


def score_report(
    netlist: Netlist,
    report: DiagnosisReport,
    defects: Iterable[Defect],
    n_failing_patterns: int,
    n_fail_atoms: int,
) -> TrialOutcome:
    """Compare a diagnosis report against injected ground truth."""
    defects = list(defects)
    truth: set[Site] = set()
    for defect in defects:
        truth.update(defect.ground_truth_sites())
    truth_nets = {site.net for site in truth}
    near_nets: set[str] = set()
    for net in truth_nets:
        near_nets.update(_neighbor_nets(netlist, net))

    reported = [c.site for c in report.candidates]
    reported_nets = {site.net for site in reported}

    hit_exact = sum(1 for t in truth if t in set(reported))
    hit_net = sum(1 for t in truth if t.net in reported_nets)
    hit_near = sum(
        1
        for t in truth
        if reported_nets & _neighbor_nets(netlist, t.net)
    )
    n_truth = len(truth) or 1

    precise = sum(1 for site in reported if site.net in near_nets)
    precision = precise / len(reported) if reported else 0.0

    return TrialOutcome(
        circuit=report.circuit,
        method=report.method,
        k=len(defects),
        families=tuple(sorted(d.family for d in defects)),
        recall_exact=hit_exact / n_truth,
        recall_net=hit_net / n_truth,
        recall_near=hit_near / n_truth,
        precision=precision,
        resolution=len(reported),
        success=hit_near == len(truth),
        n_failing_patterns=n_failing_patterns,
        n_fail_atoms=n_fail_atoms,
        uncovered_atoms=len(report.uncovered_atoms),
        seconds=float(report.stats.get("seconds", 0.0)),
        best_multiplet_size=(
            report.best_multiplet.size if report.best_multiplet else 0
        ),
        completeness=report.completeness,
        consistency=report.consistency or "",
        optimality=report.optimality or "",
    )


@dataclass
class Aggregate:
    """Mean statistics over a group of trial outcomes."""

    group: str
    n_trials: int
    recall_exact: float
    recall_net: float
    recall_near: float
    precision: float
    resolution: float
    success_rate: float
    uncovered_atoms: float
    seconds: float
    #: Fraction of trials whose report was not exact (budget-truncated).
    truncated_rate: float = 0.0
    #: Fraction of trials the oracle independently confirmed (0.0 when the
    #: oracle never ran -- an unvalidated trial is not a confirmed one).
    confirmed_rate: float = 0.0

    @classmethod
    def over(cls, group: str, outcomes: list[TrialOutcome]) -> "Aggregate":
        """Mean every statistic over ``outcomes``.

        Every rate flows through one ``n == 0``-guarded mean, so an empty
        group -- a campaign whose every trial was skipped or quarantined
        -- aggregates to all-zero rates instead of dividing by zero or
        leaking ``nan`` into exported CSVs.
        """
        n = len(outcomes)

        def mean(getter) -> float:
            if n == 0:
                return 0.0
            return sum(getter(o) for o in outcomes) / n

        return cls(
            group=group,
            n_trials=n,
            recall_exact=mean(lambda o: o.recall_exact),
            recall_net=mean(lambda o: o.recall_net),
            recall_near=mean(lambda o: o.recall_near),
            precision=mean(lambda o: o.precision),
            resolution=mean(lambda o: o.resolution),
            success_rate=mean(lambda o: 1.0 if o.success else 0.0),
            uncovered_atoms=mean(lambda o: o.uncovered_atoms),
            seconds=mean(lambda o: o.seconds),
            truncated_rate=mean(
                lambda o: 0.0 if o.completeness == COMPLETENESS_EXACT else 1.0
            ),
            confirmed_rate=mean(
                lambda o: 1.0 if o.consistency == "confirmed" else 0.0
            ),
        )


def aggregate_by(
    outcomes: list[TrialOutcome], key
) -> dict[str, Aggregate]:
    """Group outcomes by ``key(outcome)`` and aggregate each group."""
    groups: dict[str, list[TrialOutcome]] = {}
    for outcome in outcomes:
        groups.setdefault(str(key(outcome)), []).append(outcome)
    return {
        name: Aggregate.over(name, members) for name, members in sorted(groups.items())
    }
