"""Resilient campaign execution: worker pool, timeout, retry, resume.

:func:`execute_campaign` turns a :class:`~repro.campaign.driver.Campaign`
plus a :class:`~repro.campaign.driver.CampaignConfig` into a
:class:`~repro.campaign.driver.CampaignResult` under a
:class:`RunnerConfig` that chooses how much resilience to buy:

- **serial in-process** (the default ``jobs=1``, no timeout): byte-for-byte
  the historical behavior, nothing forked, easiest to debug;
- **process isolation** (``jobs > 1`` or a per-trial ``timeout``): each
  trial runs in its own worker process, so a stuck trial is killed at its
  deadline, a dying worker (segfault-equivalent, OOM kill) fails only its
  own trial, and ``jobs=N`` trials run concurrently.  Workers are forked
  from the warmed-up parent where the platform allows, so pattern
  provisioning and dictionary builds are not repeated per trial.

Failures are recorded, never fatal: a trial that exhausts its retries is
journaled as a :class:`~repro.errors.TrialError` with a cause tag, and the
campaign completes with every other trial intact.  Transient causes
(worker crash, timeout) are retried with exponential backoff and
deterministic jitter; deterministic in-trial exceptions are not, because
the same seed would only reproduce them.

Trial results are assembled in trial order regardless of completion order,
so ``jobs=4`` converges to the same outcome list as ``jobs=1``.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from pathlib import Path

from repro._rng import make_rng, spawn
from repro.campaign.driver import Campaign, CampaignConfig, CampaignResult
from repro.campaign.journal import Journal, TrialRecord, config_fingerprint
from repro.errors import (
    TRANSIENT_CAUSES,
    JournalError,
    ReproError,
    TrialError,
    classify_cause,
)
from repro.obs.metrics import record_channel_error, record_retry, record_trial
from repro.obs.trace import Tracer
from repro.sim.cache import reset_sim_caches


@dataclass
class RunnerConfig:
    """Execution policy for one campaign run."""

    #: Concurrent worker processes; 1 keeps the serial in-process loop
    #: unless a timeout forces isolation.
    jobs: int = 1
    #: Per-trial wall-clock budget in seconds; a trial past its deadline is
    #: killed and recorded as a ``"timeout"`` TrialError.  Requires process
    #: isolation, which is engaged automatically when set.
    timeout: float | None = None
    #: Retries for *transient* failures (crash, timeout) on top of the
    #: first attempt.  Deterministic failures are never retried.
    retries: int = 1
    #: Base backoff delay in seconds; attempt ``i`` sleeps
    #: ``backoff * 2**(i-1)`` scaled by deterministic jitter in [0.5, 1.5).
    backoff: float = 0.05
    #: Path of the append-only JSONL trial journal; None disables
    #: checkpointing.
    journal: str | Path | None = None
    #: Fold journaled trials back in instead of re-executing them.
    resume: bool = False
    #: ``os.fsync`` every journal record.  Off by default on the campaign
    #: hot path (flush-only, the historical behavior: a torn tail is
    #: tolerated and one lost trial merely re-executes on resume); the
    #: diagnosis daemon's job store runs with durability on.
    journal_fsync: bool = False
    #: Fraction of ``timeout`` handed to the diagnosis engine as a
    #: cooperative in-process deadline, so a heavy trial truncates itself
    #: and reports a partial diagnosis *before* the kill timeout fires.
    #: The margin left (default 20%) absorbs sampling, emulation and
    #: scoring.  ``None`` disables the layering (historical behavior:
    #: heavy trials die at the kill timeout with nothing to show).
    deadline_margin: float | None = 0.8

    @property
    def isolated(self) -> bool:
        return self.jobs > 1 or self.timeout is not None

    @property
    def inprocess_deadline(self) -> float | None:
        """Engine-level deadline derived from the kill timeout, if any."""
        if self.timeout is None or self.deadline_margin is None:
            return None
        return self.timeout * self.deadline_margin


def backoff_delay(base: float, attempt: int, seed: int) -> float:
    """Exponential backoff with deterministic (seed, attempt) jitter.

    The jitter threads through the library's seeded RNG tree
    (:func:`repro._rng.make_rng` / :func:`~repro._rng.spawn`) -- never the
    global ``random`` module -- so two campaigns run with identical seeds
    schedule retries identically and journal replay ordering is
    reproducible.
    """
    rng = spawn(make_rng(seed), f"backoff:{attempt}")
    jitter = 0.5 + rng.random()
    return base * (2 ** (attempt - 1)) * jitter


# -- trial execution (shared by serial and worker paths) ----------------------


def _execute_trial(
    campaign: Campaign,
    config: CampaignConfig,
    trial: int,
    deadline: float | None = None,
) -> TrialRecord:
    """Run one trial to a terminal TrialRecord; never raises trial errors."""
    seed = config.trial_seed(trial)
    tracer = Tracer() if getattr(config, "trace", False) else None
    started = time.perf_counter()
    try:
        if tracer is not None:
            with tracer.span("trial", trial=trial, seed=seed):
                result = campaign.run_trial_ex(
                    trial_seed=seed,
                    k=config.k,
                    mix=config.mix,
                    methods=config.methods,
                    interacting=config.interacting,
                    diagnosis_config=config.diagnosis_config,
                    max_resample=config.max_resample,
                    oscillation_fallback=config.oscillation_fallback,
                    deadline_seconds=deadline,
                    noise=config.noise,
                    tracer=tracer,
                )
        else:
            result = campaign.run_trial_ex(
                trial_seed=seed,
                k=config.k,
                mix=config.mix,
                methods=config.methods,
                interacting=config.interacting,
                diagnosis_config=config.diagnosis_config,
                max_resample=config.max_resample,
                oscillation_fallback=config.oscillation_fallback,
                deadline_seconds=deadline,
                noise=config.noise,
            )
    except Exception as exc:
        return TrialRecord(
            circuit=config.circuit,
            trial=trial,
            seed=seed,
            status="error",
            elapsed=time.perf_counter() - started,
            error=TrialError(
                f"trial {trial} (seed {seed}) failed: {exc}",
                circuit=config.circuit,
                trial=trial,
                seed=seed,
                cause=classify_cause(exc),
            ),
            trace=tracer.to_dicts() if tracer is not None else None,
        )
    return TrialRecord(
        circuit=config.circuit,
        trial=trial,
        seed=seed,
        status="skipped" if result.skipped else "ok",
        elapsed=time.perf_counter() - started,
        outcomes=result.outcomes or [],
        skip_reasons=result.skip_reasons,
        trace=tracer.to_dicts() if tracer is not None else None,
    )


# -- worker process side ------------------------------------------------------

#: Set in the parent before forking so workers inherit the warmed-up
#: campaign without pickling; spawn-based workers rebuild from the spec.
_WORKER_CAMPAIGN: Campaign | None = None


def _worker_main(
    spec, config: CampaignConfig, trial: int, conn, deadline: float | None = None
) -> None:
    try:
        campaign = _WORKER_CAMPAIGN
        if campaign is None:
            if spec is None:
                raise ReproError(
                    "worker cannot rebuild a campaign with custom patterns "
                    "or netlist under the spawn start method"
                )
            campaign = Campaign(spec[0], pattern_seed=spec[1])
        record = _execute_trial(campaign, config, trial, deadline)
        conn.send(record.to_dict())
    except BaseException as exc:
        # Last-resort report; if even this send fails the parent sees a
        # crash, which is the correct classification.
        try:
            conn.send({"kind": "worker-error", "message": repr(exc)})
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


# -- isolated (multi-process) scheduler ---------------------------------------


@dataclass
class _Active:
    proc: "mp.process.BaseProcess"
    conn: "mp_connection.Connection"
    deadline: float | None
    attempts: int
    started: float


def _terminate(proc) -> None:
    try:
        proc.terminate()
        proc.join(0.5)
        if proc.is_alive():
            proc.kill()
            proc.join(1.0)
    except Exception:
        pass


def _run_isolated(
    campaign: Campaign,
    config: CampaignConfig,
    rc: RunnerConfig,
    pending: list[int],
    emit,
) -> None:
    """Schedule ``pending`` trials over worker processes; emit records."""
    global _WORKER_CAMPAIGN
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else "spawn")
    use_fork = ctx.get_start_method() == "fork"
    if not use_fork and campaign.spawn_spec is None:
        raise ReproError(
            "parallel/timeout execution needs the fork start method for a "
            "campaign built from a custom netlist or pattern set"
        )
    jobs = max(1, rc.jobs)
    #: (trial, attempts already made) ready to launch.
    queue: deque[tuple[int, int]] = deque((t, 0) for t in pending)
    #: (ready monotonic time, trial, attempts) sleeping out a backoff.
    waiting: list[tuple[float, int, int]] = []
    active: dict[int, _Active] = {}

    def fail(trial: int, attempts: int, cause: str, message: str) -> None:
        """Handle a failed attempt: retry transient causes, else terminal.

        Only transient causes (crash, timeout) buy a backoff retry; a
        ``"deadline"`` overrun -- the kill timeout firing despite an armed
        in-process engine deadline -- is deterministic and burns no
        retries.
        """
        seed = config.trial_seed(trial)
        if cause in TRANSIENT_CAUSES and attempts <= rc.retries:
            record_retry(cause)
            delay = backoff_delay(rc.backoff, attempts, seed)
            waiting.append((time.monotonic() + delay, trial, attempts))
            return
        emit(
            TrialRecord(
                circuit=config.circuit,
                trial=trial,
                seed=seed,
                status="error",
                attempts=attempts,
                error=TrialError(
                    message,
                    circuit=config.circuit,
                    trial=trial,
                    seed=seed,
                    cause=cause,
                    attempts=attempts,
                ),
            )
        )

    _WORKER_CAMPAIGN = campaign if use_fork else None
    try:
        while queue or waiting or active:
            now = time.monotonic()
            # Wake backoff sleepers whose delay elapsed.
            still_waiting = []
            for ready_at, trial, attempts in waiting:
                if ready_at <= now:
                    queue.append((trial, attempts))
                else:
                    still_waiting.append((ready_at, trial, attempts))
            waiting[:] = still_waiting

            # Launch up to the job limit.
            while queue and len(active) < jobs:
                trial, attempts = queue.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        campaign.spawn_spec,
                        config,
                        trial,
                        child_conn,
                        rc.inprocess_deadline,
                    ),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                active[trial] = _Active(
                    proc=proc,
                    conn=parent_conn,
                    deadline=(now + rc.timeout) if rc.timeout else None,
                    attempts=attempts + 1,
                    started=now,
                )

            if not active:
                # Everything is sleeping out a backoff; nap until the first
                # sleeper is ready.
                if waiting:
                    time.sleep(max(0.0, min(w[0] for w in waiting) - now))
                continue

            # Wait for a result, the nearest deadline, or a sleeper.
            horizon = 0.25
            deadlines = [a.deadline for a in active.values() if a.deadline]
            if deadlines:
                horizon = min(horizon, max(0.0, min(deadlines) - now))
            if waiting:
                horizon = min(horizon, max(0.0, min(w[0] for w in waiting) - now))
            ready = mp_connection.wait(
                [a.conn for a in active.values()], timeout=horizon
            )

            for conn in ready:
                trial = next(t for t, a in active.items() if a.conn is conn)
                slot = active.pop(trial)
                payload = None
                channel_error: BaseException | None = None
                try:
                    payload = conn.recv()
                except (EOFError, OSError) as exc:
                    # A broken result channel is still a crash for retry
                    # purposes (the worker's fate is unknown), but never a
                    # *silent* one: classify it, count it, and carry the
                    # cause into the failure message.
                    channel_error = exc
                    record_channel_error(classify_cause(exc))
                conn.close()
                slot.proc.join(5.0)
                if isinstance(payload, dict) and payload.get("kind") == "trial":
                    record = TrialRecord.from_dict(payload)
                    record.attempts = slot.attempts
                    emit(record)
                elif isinstance(payload, dict):
                    fail(
                        trial,
                        slot.attempts,
                        "crash",
                        f"trial {trial} worker error: "
                        f"{payload.get('message', 'unknown')}",
                    )
                else:
                    detail = (
                        f"result channel {type(channel_error).__name__}: "
                        f"{channel_error}"
                        if channel_error is not None
                        else "no payload"
                    )
                    fail(
                        trial,
                        slot.attempts,
                        "crash",
                        f"trial {trial} worker died without reporting "
                        f"(exit code {slot.proc.exitcode}; {detail})",
                    )

            now = time.monotonic()
            for trial in list(active):
                slot = active[trial]
                if slot.deadline is not None and now >= slot.deadline:
                    _terminate(slot.proc)
                    slot.conn.close()
                    del active[trial]
                    if rc.inprocess_deadline is not None:
                        # The engine was handed a deadline below this kill
                        # timeout and still overran: the weight is outside
                        # the governed pipeline, so a retry would only
                        # replay it.  Terminal, deterministic, no retry.
                        fail(
                            trial,
                            slot.attempts,
                            "deadline",
                            f"trial {trial} overran the "
                            f"{rc.inprocess_deadline:g}s in-process deadline "
                            f"and was killed at the {rc.timeout:g}s timeout",
                        )
                    else:
                        fail(
                            trial,
                            slot.attempts,
                            "timeout",
                            f"trial {trial} exceeded the {rc.timeout:g}s "
                            "per-trial timeout and was killed",
                        )
                elif not slot.proc.is_alive() and not slot.conn.poll():
                    # Died between waits without ever sending a byte.
                    slot.conn.close()
                    del active[trial]
                    fail(
                        trial,
                        slot.attempts,
                        "crash",
                        f"trial {trial} worker died without reporting "
                        f"(exit code {slot.proc.exitcode})",
                    )
    finally:
        _WORKER_CAMPAIGN = None
        for slot in active.values():
            _terminate(slot.proc)
            try:
                slot.conn.close()
            except Exception:
                pass


# -- serial in-process path ---------------------------------------------------


def _run_serial(
    campaign: Campaign,
    config: CampaignConfig,
    rc: RunnerConfig,
    pending: list[int],
    emit,
) -> None:
    for trial in pending:
        attempts = 0
        while True:
            attempts += 1
            record = _execute_trial(campaign, config, trial, rc.inprocess_deadline)
            record.attempts = attempts
            if (
                record.status != "error"
                or record.error is None
                or not record.error.is_transient
                or attempts > rc.retries
            ):
                emit(record)
                break
            record_retry(record.error.cause)
            time.sleep(backoff_delay(rc.backoff, attempts, record.seed))


# -- the entry point ----------------------------------------------------------

#: Content key of the last campaign executed in this process.  A
#: multi-circuit sweep (the benchmark tables, ``run_noise_sweep`` over
#: different circuits) changes key between batches; resetting the sim
#: caches there bounds memory across the sweep while keeping the memos
#: warm for same-circuit reruns (noise rates, resume, repeated configs).
_LAST_CAMPAIGN_KEY: tuple[str, str] | None = None


def execute_campaign(
    campaign: Campaign,
    config: CampaignConfig,
    runner: RunnerConfig | None = None,
) -> CampaignResult:
    """Run a campaign under an execution policy and assemble its result.

    With a journal configured, every terminal trial record is appended the
    moment it exists, so an interrupted run can be resumed; with
    ``resume=True`` journaled trials are folded in without re-execution
    and the assembled aggregates are identical to an uninterrupted run.
    """
    global _LAST_CAMPAIGN_KEY
    rc = runner or RunnerConfig()
    started = time.perf_counter()
    batch_key = (campaign.netlist.fingerprint(), campaign.patterns.fingerprint())
    if _LAST_CAMPAIGN_KEY is not None and _LAST_CAMPAIGN_KEY != batch_key:
        # New (circuit, test set) batch: drop the previous batch's contexts
        # and kernels so a sweep that never repeats a key stays bounded.
        reset_sim_caches()
    _LAST_CAMPAIGN_KEY = batch_key
    records: dict[int, TrialRecord] = {}
    resumed = 0

    journal: Journal | None = None
    if rc.journal is not None:
        journal = Journal(rc.journal, fsync=rc.journal_fsync)
        completed = journal.start(config_fingerprint(config), rc.resume)
    elif rc.resume:
        raise JournalError("resume requested but no journal path configured")
    else:
        completed = {}

    pending: list[int] = []
    for trial in range(config.n_trials):
        key = (config.circuit, config.trial_seed(trial), trial)
        record = completed.get(key)
        if record is not None:
            records[trial] = record
            resumed += 1
        else:
            pending.append(trial)

    def emit(record: TrialRecord) -> None:
        record_trial(
            record.status,
            record.error.cause if record.error is not None else None,
        )
        records[record.trial] = record
        if journal is not None:
            journal.append(record)

    try:
        if pending:
            if rc.isolated:
                if "dictionary" in config.methods:
                    # Warm the parent's dictionary cache so forked workers
                    # inherit the build instead of repeating it per trial.
                    from repro.campaign.driver import dictionary_for

                    dictionary_for(campaign.netlist, campaign.patterns)
                _run_isolated(campaign, config, rc, pending, emit)
            else:
                _run_serial(campaign, config, rc, pending, emit)
    finally:
        if journal is not None:
            journal.close()

    result = CampaignResult(config=config)
    result.resumed_trials = resumed
    for trial in sorted(records):
        record = records[trial]
        for reason, count in record.skip_reasons.items():
            result.skip_reasons[reason] = (
                result.skip_reasons.get(reason, 0) + count
            )
        if record.status == "ok":
            result.outcomes.extend(record.outcomes)
        elif record.status == "skipped":
            result.skipped_trials += 1
        elif record.error is not None:
            result.trial_errors.append(record.error)
        if record.trace:
            result.traces.append(
                {"trial": record.trial, "seed": record.seed, "spans": record.trace}
            )
    result.wall_seconds = time.perf_counter() - started
    return result
