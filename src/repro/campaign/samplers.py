"""Randomized defect-set sampling for injection campaigns.

Defect families follow a configurable mixture; the default reproduces the
classic silicon statistic used by intra-cell/diagnosis studies (roughly
30% stuck-at-like, 30% bridges, 40% delay/open behaviors), with a
``byzantine`` knob for the model-free stress experiments.

``interacting=True`` biases multi-defect sets toward sites sharing an
output cone -- the regime where failing patterns are caused by several
defects at once and SLAT-style assumptions break, i.e. the headline
scenario of the reproduced paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro._rng import make_rng, weighted_choice
from repro.circuit.netlist import Netlist, Site
from repro.errors import FaultModelError
from repro.faults.injection import defect_creates_feedback
from repro.faults.models import (
    BridgeDefect,
    BridgeKind,
    ByzantineDefect,
    Defect,
    OpenDefect,
    StuckAtDefect,
    TransitionDefect,
    TransitionKind,
)


@dataclass(frozen=True)
class DefectMix:
    """Relative family weights for defect sampling."""

    stuck: float = 0.3
    bridge: float = 0.3
    open: float = 0.2
    transition: float = 0.2
    byzantine: float = 0.0

    def items(self) -> list[tuple[str, float]]:
        return [
            ("stuck", self.stuck),
            ("bridge", self.bridge),
            ("open", self.open),
            ("transition", self.transition),
            ("byzantine", self.byzantine),
        ]


#: Paper-flavored default: 30/30/40 stuck / bridge / delay-like.
DEFAULT_MIX = DefectMix()

#: Pure-family mixes used by the per-type experiment (Table 5).
PURE_MIXES = {
    "stuck": DefectMix(1, 0, 0, 0, 0),
    "bridge": DefectMix(0, 1, 0, 0, 0),
    "open": DefectMix(0, 0, 1, 0, 0),
    "transition": DefectMix(0, 0, 0, 1, 0),
    "byzantine": DefectMix(0, 0, 0, 0, 1),
}


def sample_defect(
    netlist: Netlist,
    rng: random.Random,
    family: str,
    used_nets: set[str],
    placement=None,
) -> Defect | None:
    """Draw one defect of ``family`` avoiding nets already carrying one.

    ``placement`` (a :class:`repro.circuit.layout.Placement`) switches
    bridge sampling from the level-proximity proxy to geometric adjacency.
    Returns None when no legal draw exists (e.g. bridge in a tiny circuit
    where every partner closes a loop); callers retry with a fresh family.
    """
    sites = [s for s in netlist.sites() if s.net not in used_nets]
    if not sites:
        return None
    stems = [s for s in sites if s.is_stem]
    branches = [s for s in sites if not s.is_stem]
    if family == "stuck":
        site = rng.choice(sites)
        return StuckAtDefect(site, rng.getrandbits(1))
    if family == "open":
        # Opens prefer branches (a broken via on one fanout leg); fall back
        # to stems in branch-free circuits.
        site = rng.choice(branches or stems)
        return OpenDefect(site, rng.getrandbits(1))
    if family == "transition":
        site = rng.choice(sites)
        kind = rng.choice((TransitionKind.SLOW_TO_RISE, TransitionKind.SLOW_TO_FALL))
        return TransitionDefect(site, kind)
    if family == "byzantine":
        site = rng.choice(sites)
        return ByzantineDefect(site, seed=rng.getrandbits(48), activity=0.4)
    if family == "bridge":
        victims = [s.net for s in stems]
        rng.shuffle(victims)
        for victim in victims[:24]:
            cone = netlist.fanout_cone([victim])
            if placement is not None:
                box = placement.boxes[victim]
                partners = [
                    net
                    for net in netlist.nets()
                    if net != victim
                    and net not in cone
                    and net not in used_nets
                    and box.distance(placement.boxes[net]) <= 1.0
                ]
            else:
                level = netlist.level(victim)
                partners = [
                    net
                    for net in netlist.nets()
                    if net != victim
                    and net not in cone
                    and net not in used_nets
                    and abs(netlist.level(net) - level) <= 3
                ]
            if partners:
                return BridgeDefect(victim, rng.choice(partners), BridgeKind.DOMINANT)
        return None
    raise FaultModelError(f"unknown defect family {family!r}")


def sample_defect_set(
    netlist: Netlist,
    k: int,
    seed: int | random.Random | None = None,
    mix: DefectMix = DEFAULT_MIX,
    interacting: bool = False,
    max_tries: int = 200,
    placement=None,
) -> list[Defect]:
    """Sample ``k`` simultaneous defects on distinct nets.

    With ``interacting`` the sampler restricts sites to the fan-in cone of
    one randomly chosen output, maximizing the chance that several defects
    disturb the same failing patterns.  ``placement`` routes bridge draws
    through synthesized geometry (see :mod:`repro.circuit.layout`).
    """
    rng = make_rng(seed)
    region: set[str] | None = None
    if interacting and k > 1:
        root = rng.choice(list(netlist.outputs))
        region = netlist.fanin_cone([root])

    defects: list[Defect] = []
    used_nets: set[str] = set()
    tries = 0
    while len(defects) < k:
        tries += 1
        if tries > max_tries:
            raise FaultModelError(
                f"could not sample {k} compatible defects on {netlist.name} "
                f"after {max_tries} tries"
            )
        family = weighted_choice(rng, mix.items())
        blocked = used_nets if region is None else used_nets | {
            net for net in netlist.nets() if net not in region
        }
        defect = sample_defect(netlist, rng, family, blocked, placement)
        if defect is None:
            continue
        trial = defects + [defect]
        if defect_creates_feedback(netlist, trial):
            continue
        defects.append(defect)
        for site in defect.ground_truth_sites():
            used_nets.add(site.net)
        if isinstance(defect, BridgeDefect):
            used_nets.add(defect.aggressor)
    return defects


def ground_truth_sites(defects: list[Defect]) -> frozenset[Site]:
    sites: set[Site] = set()
    for defect in defects:
        sites.update(defect.ground_truth_sites())
    return frozenset(sites)
