"""Plain-text rendering of experiment tables and figures.

The benchmark harness prints every reproduced table/figure in the same
row/series structure as the paper's evaluation; these helpers keep the
formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}".rstrip("0").rstrip(".") if value else "0"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str | None = None,
) -> str:
    """Aligned monospace table."""
    str_rows = [[format_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)


def format_series(
    x_label: str,
    xs: Sequence,
    series: dict[str, Sequence[float]],
    title: str | None = None,
    width: int = 40,
) -> str:
    """A 'figure' as data columns plus an ASCII trend bar per series point.

    Keeps the exact numbers (for EXPERIMENTS.md comparison) while giving a
    quick visual read of who wins and where curves cross.
    """
    headers = [x_label]
    for name in series:
        headers += [name, ""]
    rows = []
    peak = max((max(vals) for vals in series.values() if len(vals)), default=1.0) or 1.0
    for i, x in enumerate(xs):
        row: list[str] = [format_cell(x)]
        for name, vals in series.items():
            value = vals[i] if i < len(vals) else float("nan")
            bar = "#" * int(round(width * (value / peak))) if value == value else "?"
            row += [format_cell(value), bar]
        rows.append(row)
    return format_table(headers, rows, title=title)
