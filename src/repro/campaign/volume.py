"""Volume diagnosis: aggregating many dice into yield-learning signal.

One die's diagnosis is a localization; a *population* of failing dice is
a process statement.  This module aggregates diagnosis reports across a
lot:

- **mechanism Pareto** -- which fault models dominate the top-ranked
  candidates (the defect-type mix the fab should chase),
- **site heat** -- how often each net/cell is accused across dice; a net
  accused far above the uniform-background expectation indicates a
  *systematic* (design/layout-coupled) defect rather than random
  particles,
- **systematic screening** -- a simple binomial-surprise score per net,
  flagging candidates for layout review.

The aggregation consumes plain :class:`~repro.core.report.DiagnosisReport`
objects, so it works on archived JSON reports as well as live campaigns.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.core.report import DiagnosisReport


@dataclass
class VolumeAggregate:
    """Accumulated evidence over a population of diagnosed dice."""

    n_dice: int = 0
    mechanism_counts: Counter = field(default_factory=Counter)
    net_counts: Counter = field(default_factory=Counter)
    top_net_counts: Counter = field(default_factory=Counter)
    total_candidates: int = 0

    # -- accumulation ------------------------------------------------------

    def add(self, report: DiagnosisReport) -> None:
        """Fold one die's diagnosis into the aggregate."""
        if not report.candidates:
            return
        self.n_dice += 1
        top = report.candidates[0]
        self.mechanism_counts[top.best_kind] += 1
        self.top_net_counts[top.site.net] += 1
        seen_nets = {c.site.net for c in report.candidates}
        for net in seen_nets:
            self.net_counts[net] += 1
        self.total_candidates += len(report.candidates)

    def add_all(self, reports: Iterable[DiagnosisReport]) -> None:
        for report in reports:
            self.add(report)

    # -- queries -------------------------------------------------------------

    def mechanism_pareto(self) -> list[tuple[str, int]]:
        """(fault model, dice) sorted by frequency -- the process Pareto."""
        return self.mechanism_counts.most_common()

    def hot_nets(self, top_k: int = 10) -> list[tuple[str, int]]:
        """Nets most frequently accused across the population."""
        return self.net_counts.most_common(top_k)

    def systematic_scores(self, n_sites: int) -> dict[str, float]:
        """Binomial surprise per net: -log10 P[X >= observed] under the
        null hypothesis that accusations spread uniformly over ``n_sites``
        locations.  Scores above ~2 (p < 0.01) deserve a layout review.
        """
        if self.n_dice == 0 or n_sites <= 0:
            return {}
        mean_accused = self.total_candidates / self.n_dice
        p_null = min(1.0, mean_accused / n_sites)
        scores: dict[str, float] = {}
        for net, observed in self.net_counts.items():
            tail = _binomial_tail(self.n_dice, observed, p_null)
            scores[net] = -math.log10(max(tail, 1e-300))
        return scores

    def systematic_suspects(
        self, n_sites: int, threshold: float | None = None
    ) -> list[tuple[str, float]]:
        """Nets whose accusation rate is statistically anomalous.

        The default threshold applies a Bonferroni-style correction for
        testing every net: ``log10(n_sites) + 1.5``, i.e. an expected
        false-flag count of ~0.03 per lot regardless of design size.
        """
        if threshold is None:
            threshold = math.log10(max(n_sites, 10)) + 1.5
        scores = self.systematic_scores(n_sites)
        flagged = [(net, s) for net, s in scores.items() if s >= threshold]
        flagged.sort(key=lambda kv: (-kv[1], kv[0]))
        return flagged

    def average_resolution(self) -> float:
        return self.total_candidates / self.n_dice if self.n_dice else 0.0


def _binomial_tail(n: int, k: int, p: float) -> float:
    """P[X >= k] for X ~ Binomial(n, p), computed exactly (n is small)."""
    if k <= 0:
        return 1.0
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    total = 0.0
    for i in range(k, n + 1):
        total += math.comb(n, i) * (p**i) * ((1 - p) ** (n - i))
    return min(1.0, total)


def aggregate_reports(
    reports: Sequence[DiagnosisReport],
) -> VolumeAggregate:
    """One-shot aggregation convenience."""
    agg = VolumeAggregate()
    agg.add_all(reports)
    return agg
