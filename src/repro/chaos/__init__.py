"""Deterministic chaos: seeded I/O fault injection at named sites.

The diagnosis pipeline makes no assumptions about failing-pattern
characteristics; this package holds the *service* layers to the same
standard about their own failures.  A seeded :class:`FaultPlan`
(``fsync_eio:0.05+enospc_after:4096+slow_io:20ms``) is armed process-wide
and consulted at thin :func:`checkpoint` call sites threaded through the
durability-critical paths -- journal appends, store compaction, worker
execution -- so "disk dies mid-fsync" and "worker wedges mid-job" become
reproducible test inputs instead of production surprises.

Disarmed (the default), every checkpoint is a single global load; the
hot simulation paths carry no sites at all.
"""

from repro.chaos.hooks import (
    ENV_VAR,
    active_plan,
    arm,
    arm_from_env,
    armed,
    checkpoint,
    disarm,
)
from repro.chaos.plan import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    InjectedHttp,
    WorkerDeath,
    parse_chaos_spec,
)

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "InjectedHttp",
    "WorkerDeath",
    "active_plan",
    "arm",
    "arm_from_env",
    "armed",
    "checkpoint",
    "disarm",
    "parse_chaos_spec",
]
