"""The checkpoint hook: where production code meets the fault plan.

Durability-critical paths call :func:`checkpoint` with a dotted site
name (``journal.fsync``, ``store.compact.rename``, ``executor.job``)
just before the real operation.  Disarmed -- the production default --
the call is one global load and a ``None`` comparison; armed, the active
:class:`~repro.chaos.plan.FaultPlan` decides whether this crossing
sleeps, raises, or passes.

Arming is process-global and explicit: :func:`arm` / :func:`disarm`, the
:func:`armed` context manager (tests), or :func:`arm_from_env` which
reads the ``REPRO_CHAOS`` environment variable (the CI chaos-smoke path;
``repro serve`` calls it on startup and banners the armed spec so a
chaotic run is never mistaken for a healthy one).
"""

from __future__ import annotations

import contextlib
import os
import threading

from repro.chaos.plan import FaultPlan, parse_chaos_spec

#: Environment variable consulted by :func:`arm_from_env`.
ENV_VAR = "REPRO_CHAOS"

_ARM_LOCK = threading.Lock()
_PLAN: FaultPlan | None = None


def checkpoint(site: str, nbytes: int = 0) -> None:
    """Offer the active fault plan one shot at this site; no-op disarmed."""
    plan = _PLAN
    if plan is None:
        return
    plan.apply(site, nbytes)


def active_plan() -> FaultPlan | None:
    return _PLAN


def arm(plan: FaultPlan | str) -> FaultPlan:
    """Install a plan (or parse a spec string) as the process fault plan."""
    global _PLAN
    if isinstance(plan, str):
        plan = parse_chaos_spec(plan)
    with _ARM_LOCK:
        _PLAN = plan
    return plan


def disarm() -> None:
    global _PLAN
    with _ARM_LOCK:
        _PLAN = None


@contextlib.contextmanager
def armed(plan: FaultPlan | str):
    """Context manager: arm for the body, restore the previous plan after."""
    global _PLAN
    with _ARM_LOCK:
        previous = _PLAN
    installed = arm(plan)
    try:
        yield installed
    finally:
        with _ARM_LOCK:
            _PLAN = previous


def arm_from_env(environ=os.environ) -> FaultPlan | None:
    """Arm from ``REPRO_CHAOS`` when set; returns the plan (or None)."""
    spec = environ.get(ENV_VAR, "").strip()
    if not spec:
        return None
    return arm(spec)
