"""Seeded fault plans: *what* to inject, *where*, and *how often*.

A :class:`FaultPlan` is parsed from a compact spec string::

    fsync_eio:0.05+enospc_after:4096+slow_io:20ms
    write_eio@store.compact.*:1+seed:7
    wedge:0.5:2s+die:0.1

Each ``+``-separated entry is ``kind[@site-glob]:arg[:arg2]``.  The site
glob (``fnmatch`` syntax) restricts an entry to matching checkpoint
sites; omitted, each kind carries a sensible default (``fsync_eio``
matches ``*.fsync``, ``die`` matches ``executor.job``, ...).

Decisions are **deterministic**: whether call *n* to site *s* injects is
a pure function of ``(seed, rule, site, n)`` via a sha256 draw, so a
sweep re-run with the same plan injects at exactly the same points
regardless of wall clock -- and, because the counters are per ``(rule,
site)``, regardless of how concurrent threads interleave *other* sites.

Fault kinds:

``fsync_eio:P`` / ``write_eio:P`` / ``rename_eio:P``
    With probability ``P``, raise :class:`InjectedFault` (an ``OSError``
    with ``errno.EIO``) at sites whose operation suffix is ``fsync`` /
    ``write`` / ``rename``.
``enospc_after:N``
    After ``N`` bytes have flowed through byte-carrying checkpoints,
    every ``write``/``fsync`` site raises ``errno.ENOSPC`` -- the
    disk-full cliff.
``slow_io:D``
    Sleep ``D`` (``20ms``, ``0.5s``, or plain seconds) at every matching
    site; models a degraded device or an overloaded box.
``wedge:P:D``
    With probability ``P``, block ``D`` at ``executor.job`` sites -- a
    worker stuck in non-Python code, the watchdog's prey.
``die:P``
    With probability ``P``, raise :class:`WorkerDeath` (a
    ``BaseException``) at ``executor.job`` sites, killing the worker
    thread outright the way a segfault kills a process.
``conn_refused:P``
    With probability ``P``, raise :class:`InjectedFault` with
    ``errno.ECONNREFUSED`` at ``cluster.*.send`` sites -- the request
    never left this machine (a dead peer, a closed port).
``drop_response:P``
    With probability ``P``, raise :class:`InjectedFault` with
    ``errno.ETIMEDOUT`` at ``cluster.*.recv`` sites -- the request
    *reached* the peer but the response was lost in flight, so the
    caller cannot tell whether the operation happened (the classic
    at-least-once ambiguity the cluster's idempotent job ids resolve).
``http_503:P``
    With probability ``P``, raise :class:`InjectedHttp` (status 503) at
    ``cluster.*.recv`` sites; the cluster client converts it into a
    synthetic 503 response -- a live peer shedding load.
``slow_net:D``
    Sleep ``D`` at every matching ``cluster.*`` site; models WAN
    latency or a saturated link on the coordinator/worker path.
``seed:N``
    Pseudo-entry: pins the plan's decision seed (default: a digest of
    the spec text itself).
"""

from __future__ import annotations

import errno
import fnmatch
import hashlib
import threading
import time
from dataclasses import dataclass, field

from repro.errors import ChaosError


class InjectedFault(OSError):
    """A chaos-injected I/O failure.

    Subclasses ``OSError`` (with a real ``errno``) so production code
    paths treat it exactly like the disk error it models; tests can still
    discriminate injected faults from organic ones by type.
    """

    def __init__(self, err: int, site: str, kind: str):
        super().__init__(err, f"chaos[{kind}] injected at {site}")
        self.site = site
        self.kind = kind


class WorkerDeath(BaseException):
    """Kills a worker thread from the inside.

    Deliberately *not* an ``Exception``: the executor's per-job isolation
    (``except Exception``) must not absorb it, because the scenario being
    modeled -- a thread dying without unwinding politely -- is exactly
    what the watchdog exists to detect.
    """

    def __init__(self, site: str):
        super().__init__(f"chaos[die] injected at {site}")
        self.site = site


class InjectedHttp(Exception):
    """A chaos-injected HTTP error *response* (a live peer answering 503).

    Not an ``OSError``: the network worked, the peer answered -- with a
    refusal.  The cluster client catches it at its ``.recv`` checkpoint
    and synthesizes the corresponding response, so the coordinator's
    retry/backoff path sees exactly what a load-shedding worker would
    send.
    """

    def __init__(self, site: str, status: int = 503):
        super().__init__(f"chaos[http_{status}] injected at {site}")
        self.site = site
        self.status = status


#: Duration suffixes accepted by ``slow_io`` / ``wedge`` arguments.
_DURATIONS = (("ms", 1e-3), ("us", 1e-6), ("s", 1.0))

#: kind -> (default site glob, argument parser names)
_KINDS = {
    "fsync_eio": "*.fsync",
    "write_eio": "*.write",
    "rename_eio": "*.rename",
    "enospc_after": None,  # special: write+fsync ops
    "slow_io": "*",
    "wedge": "executor.job",
    "die": "executor.job",
    # Network kinds: fired at the cluster client's checkpoints
    # (``cluster.<op>.send`` before a request leaves, ``cluster.<op>.recv``
    # after it was sent but before the response is read).
    "conn_refused": "cluster.*.send",
    "drop_response": "cluster.*.recv",
    "http_503": "cluster.*.recv",
    "slow_net": "cluster.*",
}


def _parse_duration(text: str, entry: str) -> float:
    for suffix, scale in _DURATIONS:
        if text.endswith(suffix):
            text = text[: -len(suffix)]
            break
    else:
        scale = 1.0
    try:
        value = float(text)
    except ValueError:
        raise ChaosError(f"bad duration in chaos entry {entry!r}") from None
    if value < 0:
        raise ChaosError(f"negative duration in chaos entry {entry!r}")
    return value * scale


def _parse_probability(text: str, entry: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise ChaosError(f"bad probability in chaos entry {entry!r}") from None
    if not 0.0 <= value <= 1.0:
        raise ChaosError(
            f"probability out of [0, 1] in chaos entry {entry!r}"
        )
    return value


@dataclass(frozen=True)
class FaultRule:
    """One parsed spec entry."""

    kind: str
    site: str | None  #: explicit ``@glob``; None means the kind default
    probability: float = 1.0
    duration: float = 0.0
    threshold: int = 0  #: bytes, for ``enospc_after``

    def matches(self, site: str) -> bool:
        if self.site is not None:
            return fnmatch.fnmatchcase(site, self.site)
        default = _KINDS[self.kind]
        if default is None:  # enospc_after: any byte-moving operation
            return site.rsplit(".", 1)[-1] in ("write", "fsync")
        return fnmatch.fnmatchcase(site, default)


def parse_chaos_spec(spec: str) -> "FaultPlan":
    """Parse ``kind[@site]:arg[:arg2]`` entries joined by ``+``."""
    rules: list[FaultRule] = []
    seed: int | None = None
    for entry in spec.split("+"):
        entry = entry.strip()
        if not entry:
            continue
        head, *args = entry.split(":")
        kind, _, site = head.partition("@")
        site = site or None
        if kind == "seed":
            if len(args) != 1:
                raise ChaosError(f"seed takes one integer: {entry!r}")
            try:
                seed = int(args[0])
            except ValueError:
                raise ChaosError(f"bad seed in chaos entry {entry!r}") from None
            continue
        if kind not in _KINDS:
            raise ChaosError(
                f"unknown chaos fault kind {kind!r} (known: "
                f"{', '.join(sorted(_KINDS))})"
            )
        if kind in (
            "fsync_eio",
            "write_eio",
            "rename_eio",
            "die",
            "conn_refused",
            "drop_response",
            "http_503",
        ):
            if len(args) != 1:
                raise ChaosError(f"{kind} takes one probability: {entry!r}")
            rules.append(
                FaultRule(kind, site, probability=_parse_probability(args[0], entry))
            )
        elif kind == "enospc_after":
            if len(args) != 1:
                raise ChaosError(f"enospc_after takes one byte count: {entry!r}")
            try:
                threshold = int(args[0])
            except ValueError:
                raise ChaosError(f"bad byte count in {entry!r}") from None
            if threshold < 0:
                raise ChaosError(f"negative byte count in {entry!r}")
            rules.append(FaultRule(kind, site, threshold=threshold))
        elif kind in ("slow_io", "slow_net"):
            if len(args) != 1:
                raise ChaosError(f"{kind} takes one duration: {entry!r}")
            rules.append(
                FaultRule(kind, site, duration=_parse_duration(args[0], entry))
            )
        elif kind == "wedge":
            if len(args) != 2:
                raise ChaosError(
                    f"wedge takes probability:duration: {entry!r}"
                )
            rules.append(
                FaultRule(
                    kind,
                    site,
                    probability=_parse_probability(args[0], entry),
                    duration=_parse_duration(args[1], entry),
                )
            )
    if not rules:
        raise ChaosError(f"chaos spec {spec!r} has no fault entries")
    if seed is None:
        seed = int.from_bytes(
            hashlib.sha256(spec.encode()).digest()[:4], "big"
        )
    return FaultPlan(spec=spec, rules=tuple(rules), seed=seed)


def _draw(seed: int, rule_index: int, site: str, n: int) -> float:
    """Deterministic uniform in [0, 1) for decision ``n`` of a rule at a site."""
    digest = hashlib.sha256(f"{seed}:{rule_index}:{site}:{n}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass
class FaultPlan:
    """A parsed, seeded, armed-able set of fault rules.

    Thread-safe: decision counters and the ENOSPC byte tally sit behind
    one lock; the sha256 draws themselves are pure.
    """

    spec: str
    rules: tuple[FaultRule, ...]
    seed: int
    #: injectable for tests; production sleeps for real
    sleep: object = time.sleep
    _counters: dict = field(default_factory=dict, repr=False)
    _bytes: int = field(default=0, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    #: (site, kind) tallies of injections actually fired (introspection).
    injected: dict = field(default_factory=dict, repr=False)

    def _decide(self, rule_index: int, rule: FaultRule, site: str) -> bool:
        if rule.probability >= 1.0:
            return True
        with self._lock:
            key = (rule_index, site)
            n = self._counters.get(key, 0)
            self._counters[key] = n + 1
        return _draw(self.seed, rule_index, site, n) < rule.probability

    def _note(self, site: str, kind: str) -> None:
        with self._lock:
            key = (site, kind)
            self.injected[key] = self.injected.get(key, 0) + 1
        from repro.obs.metrics import record_chaos_injection

        record_chaos_injection(site, kind)

    def apply(self, site: str, nbytes: int = 0) -> None:
        """Run every matching rule against one checkpoint crossing.

        Delays fire first (a slow device still eventually fails), then
        raising faults; the first raising fault wins.
        """
        if nbytes:
            with self._lock:
                self._bytes += nbytes
        for index, rule in enumerate(self.rules):
            if not rule.matches(site):
                continue
            if rule.kind in ("slow_io", "slow_net"):
                self._note(site, rule.kind)
                self.sleep(rule.duration)
            elif rule.kind == "wedge":
                if self._decide(index, rule, site):
                    self._note(site, rule.kind)
                    self.sleep(rule.duration)
        for index, rule in enumerate(self.rules):
            if not rule.matches(site):
                continue
            if rule.kind in ("fsync_eio", "write_eio", "rename_eio"):
                if self._decide(index, rule, site):
                    self._note(site, rule.kind)
                    raise InjectedFault(errno.EIO, site, rule.kind)
            elif rule.kind == "enospc_after":
                with self._lock:
                    full = self._bytes > rule.threshold
                if full:
                    self._note(site, rule.kind)
                    raise InjectedFault(errno.ENOSPC, site, rule.kind)
            elif rule.kind == "die":
                if self._decide(index, rule, site):
                    self._note(site, rule.kind)
                    raise WorkerDeath(site)
            elif rule.kind == "conn_refused":
                if self._decide(index, rule, site):
                    self._note(site, rule.kind)
                    raise InjectedFault(errno.ECONNREFUSED, site, rule.kind)
            elif rule.kind == "drop_response":
                if self._decide(index, rule, site):
                    self._note(site, rule.kind)
                    raise InjectedFault(errno.ETIMEDOUT, site, rule.kind)
            elif rule.kind == "http_503":
                if self._decide(index, rule, site):
                    self._note(site, rule.kind)
                    raise InjectedHttp(site)

    def total_injected(self) -> int:
        with self._lock:
            return sum(self.injected.values())
