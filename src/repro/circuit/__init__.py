"""Gate-level netlist substrate.

This subpackage provides everything the diagnosis stack needs to represent
and manipulate combinational, full-scan-modeled circuits:

- :mod:`repro.circuit.gates` -- gate primitives and bit-parallel evaluation,
- :mod:`repro.circuit.netlist` -- the :class:`~repro.circuit.netlist.Netlist`
  graph with levelization, cones and validation,
- :mod:`repro.circuit.bench` -- ISCAS ``.bench`` reader/writer,
- :mod:`repro.circuit.builder` -- a small imperative construction DSL,
- :mod:`repro.circuit.generators` -- parametric open benchmark circuits,
- :mod:`repro.circuit.library` -- the named circuit suite used by the
  experiments.
"""

from repro.circuit.gates import GateKind, Gate
from repro.circuit.netlist import Netlist, Site
from repro.circuit.builder import NetlistBuilder
from repro.circuit.bench import parse_bench, parse_bench_file, write_bench
from repro.circuit.verilog import parse_verilog, parse_verilog_file, write_verilog
from repro.circuit.library import circuit_names, load_circuit

__all__ = [
    "GateKind",
    "Gate",
    "Netlist",
    "Site",
    "NetlistBuilder",
    "parse_bench",
    "parse_bench_file",
    "write_bench",
    "parse_verilog",
    "parse_verilog_file",
    "write_verilog",
    "circuit_names",
    "load_circuit",
]
