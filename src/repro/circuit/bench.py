"""ISCAS ``.bench`` format reader and writer.

The ``.bench`` format is the lingua franca of the open ISCAS-85/89
combinational benchmarks::

    # c17
    INPUT(1)
    INPUT(2)
    ...
    OUTPUT(22)
    10 = NAND(1, 3)
    22 = NAND(10, 16)

Sequential ``DFF`` elements are handled by the full-scan convention: the
flip-flop output becomes a pseudo primary input and its data input a pseudo
primary output, which is exactly how a scan tester sees the combinational
core.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable

from repro.circuit.gates import Gate, GateKind, KIND_ALIASES
from repro.circuit.netlist import Netlist
from repro.errors import CircuitError, ParseError

_ASSIGN_RE = re.compile(
    r"^(?P<out>[^\s=]+)\s*=\s*(?P<kind>[A-Za-z_][A-Za-z0-9_]*)\s*\((?P<ins>[^)]*)\)$"
)
_IO_RE = re.compile(r"^(?P<dir>INPUT|OUTPUT)\s*\((?P<net>[^)]+)\)$", re.IGNORECASE)


def parse_bench(text: str, name: str = "bench") -> Netlist:
    """Parse ``.bench`` source text into a :class:`Netlist`.

    DFFs are scan-replaced: ``Q = DFF(D)`` adds pseudo-input ``Q`` and
    pseudo-output ``D``.
    """
    inputs: list[str] = []
    outputs: list[str] = []
    gates: list[Gate] = []
    pseudo_inputs: list[str] = []
    pseudo_outputs: list[str] = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            net = io_match.group("net").strip()
            if io_match.group("dir").upper() == "INPUT":
                inputs.append(net)
            else:
                outputs.append(net)
            continue
        assign = _ASSIGN_RE.match(line)
        if not assign:
            raise ParseError(f"unrecognized statement {line!r}", line=lineno)
        out = assign.group("out").strip()
        kind_name = assign.group("kind").lower()
        ins = tuple(s.strip() for s in assign.group("ins").split(",") if s.strip())
        if kind_name == "dff":
            if len(ins) != 1:
                raise ParseError(f"DFF {out!r} must have exactly one input", lineno)
            pseudo_inputs.append(out)
            pseudo_outputs.append(ins[0])
            continue
        kind = KIND_ALIASES.get(kind_name)
        if kind is None or kind is GateKind.INPUT:
            raise ParseError(f"unknown gate kind {kind_name!r}", line=lineno)
        try:
            gates.append(Gate(out, kind, ins))
        except Exception as exc:
            raise ParseError(str(exc), line=lineno) from exc

    try:
        return Netlist(
            name,
            inputs + pseudo_inputs,
            outputs + pseudo_outputs,
            gates,
        )
    except CircuitError as exc:
        # A feedback loop in a .bench file usually means a missing DFF (the
        # full-scan cut point); point at the loop rather than at simulation.
        raise CircuitError(f"{name}: {exc}", cycle=exc.cycle) from exc


def parse_bench_file(path: str | Path) -> Netlist:
    path = Path(path)
    return parse_bench(path.read_text(), name=path.stem)


def write_bench(netlist: Netlist) -> str:
    """Serialize a netlist back to ``.bench`` text.

    MUX and CONST gates, which have no native ``.bench`` encoding, are
    lowered to their NAND/NOT equivalents so the output is consumable by
    third-party ISCAS tooling.  Round-tripping through
    :func:`parse_bench` therefore yields a *functionally* identical netlist
    (bit-exact responses), not necessarily a structurally identical one.
    """
    lines = [f"# {netlist.name} (written by repro)"]
    lines += [f"INPUT({net})" for net in netlist.inputs]
    lines += [f"OUTPUT({net})" for net in netlist.outputs]
    fresh = 0

    def lowered(gate: Gate) -> Iterable[str]:
        nonlocal fresh
        if gate.kind is GateKind.MUX:
            a, b, sel = gate.inputs
            fresh += 1
            nsel, ta, tb = (
                f"_{gate.output}_ns{fresh}",
                f"_{gate.output}_ta{fresh}",
                f"_{gate.output}_tb{fresh}",
            )
            yield f"{nsel} = NOT({sel})"
            yield f"{ta} = NAND({a}, {nsel})"
            yield f"{tb} = NAND({b}, {sel})"
            yield f"{gate.output} = NAND({ta}, {tb})"
        elif gate.kind is GateKind.CONST0:
            # No constants in .bench: tie to x AND NOT x over the first input.
            anchor = netlist.inputs[0]
            fresh += 1
            inv = f"_{gate.output}_inv{fresh}"
            yield f"{inv} = NOT({anchor})"
            yield f"{gate.output} = AND({anchor}, {inv})"
        elif gate.kind is GateKind.CONST1:
            anchor = netlist.inputs[0]
            fresh += 1
            inv = f"_{gate.output}_inv{fresh}"
            yield f"{inv} = NOT({anchor})"
            yield f"{gate.output} = OR({anchor}, {inv})"
        else:
            kind = "BUFF" if gate.kind is GateKind.BUF else gate.kind.value.upper()
            yield f"{gate.output} = {kind}({', '.join(gate.inputs)})"

    for net in netlist.topo_order:
        lines.extend(lowered(netlist.gates[net]))
    return "\n".join(lines) + "\n"


#: The ISCAS-85 c17 benchmark, smallest member of the open suite; embedded
#: verbatim so the registry always has at least one literal ISCAS circuit.
C17_BENCH = """\
# c17 - ISCAS-85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""
