"""Imperative construction DSL for netlists.

The generators in :mod:`repro.circuit.generators` and most tests build
circuits through this class rather than assembling :class:`Gate` lists by
hand.  Each gate method returns the freshly created output net name so
expressions compose naturally::

    b = NetlistBuilder("half_adder")
    a, c = b.input("a"), b.input("c")
    b.output(b.xor(a, c, name="sum"))
    b.output(b.and_(a, c, name="carry"))
    netlist = b.build()
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.circuit.gates import Gate, GateKind
from repro.circuit.netlist import Netlist
from repro.errors import NetlistError


class NetlistBuilder:
    """Accumulates gates and produces an immutable :class:`Netlist`."""

    def __init__(self, name: str):
        self.name = name
        self._inputs: list[str] = []
        self._outputs: list[str] = []
        self._gates: list[Gate] = []
        self._defined: set[str] = set()
        self._auto = 0

    # -- net management -----------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        while True:
            self._auto += 1
            candidate = f"{prefix}{self._auto}"
            if candidate not in self._defined:
                return candidate

    def _define(self, net: str | None, prefix: str) -> str:
        if net is None:
            net = self._fresh(prefix)
        if net in self._defined:
            raise NetlistError(f"net {net!r} already defined")
        self._defined.add(net)
        return net

    # -- interface ------------------------------------------------------------

    def input(self, name: str | None = None) -> str:
        net = self._define(name, "pi")
        self._inputs.append(net)
        return net

    def inputs(self, *names: str) -> list[str]:
        return [self.input(n) for n in names]

    def input_bus(self, prefix: str, width: int) -> list[str]:
        """Declare ``width`` inputs named ``prefix0..prefix{width-1}``."""
        return [self.input(f"{prefix}{i}") for i in range(width)]

    def output(self, net: str) -> str:
        """Mark an existing net as a primary output."""
        if net not in self._defined:
            raise NetlistError(f"cannot expose undefined net {net!r} as output")
        self._outputs.append(net)
        return net

    def output_bus(self, nets: Iterable[str]) -> list[str]:
        return [self.output(net) for net in nets]

    # -- gates ------------------------------------------------------------------

    def gate(self, kind: GateKind, ins: Sequence[str], name: str | None = None) -> str:
        for src in ins:
            if src not in self._defined:
                raise NetlistError(f"gate input {src!r} is undefined")
        out = self._define(name, "n")
        self._gates.append(Gate(out, kind, tuple(ins)))
        return out

    def and_(self, *ins: str, name: str | None = None) -> str:
        return self.gate(GateKind.AND, ins, name)

    def nand(self, *ins: str, name: str | None = None) -> str:
        return self.gate(GateKind.NAND, ins, name)

    def or_(self, *ins: str, name: str | None = None) -> str:
        return self.gate(GateKind.OR, ins, name)

    def nor(self, *ins: str, name: str | None = None) -> str:
        return self.gate(GateKind.NOR, ins, name)

    def xor(self, *ins: str, name: str | None = None) -> str:
        return self.gate(GateKind.XOR, ins, name)

    def xnor(self, *ins: str, name: str | None = None) -> str:
        return self.gate(GateKind.XNOR, ins, name)

    def not_(self, a: str, name: str | None = None) -> str:
        return self.gate(GateKind.NOT, (a,), name)

    def buf(self, a: str, name: str | None = None) -> str:
        return self.gate(GateKind.BUF, (a,), name)

    def mux(self, a: str, b: str, sel: str, name: str | None = None) -> str:
        """2:1 multiplexer: output is ``b`` when ``sel`` is 1, else ``a``."""
        return self.gate(GateKind.MUX, (a, b, sel), name)

    def const0(self, name: str | None = None) -> str:
        return self.gate(GateKind.CONST0, (), name)

    def const1(self, name: str | None = None) -> str:
        return self.gate(GateKind.CONST1, (), name)

    # -- composite helpers --------------------------------------------------------

    def reduce_tree(self, kind: GateKind, nets: Sequence[str], name: str | None = None) -> str:
        """Balanced reduction tree (e.g. wide AND built from 2-input gates)."""
        if not nets:
            raise NetlistError("cannot reduce an empty net list")
        if len(nets) == 1:
            # Degenerate reduction: insert a buffer when a name is required.
            return self.buf(nets[0], name) if name is not None else nets[0]
        layer = list(nets)
        while len(layer) > 1:
            nxt: list[str] = []
            for i in range(0, len(layer) - 1, 2):
                last_pair = len(layer) <= 2
                nxt.append(
                    self.gate(kind, (layer[i], layer[i + 1]), name if last_pair else None)
                )
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        return layer[0]

    def full_adder(self, a: str, b: str, cin: str) -> tuple[str, str]:
        """Returns (sum, carry-out) built from basic gates."""
        axb = self.xor(a, b)
        s = self.xor(axb, cin)
        carry = self.or_(self.and_(a, b), self.and_(axb, cin))
        return s, carry

    # -- finalization -----------------------------------------------------------

    def build(self) -> Netlist:
        if not self._outputs:
            raise NetlistError(f"circuit {self.name!r} has no outputs")
        return Netlist(self.name, self._inputs, self._outputs, self._gates)
