"""Gate primitives and their bit-parallel evaluation semantics.

Two evaluation domains are provided:

**Two-valued bit-parallel.**  A net value is an arbitrary-precision Python
integer used as a bit vector: bit *i* holds the net's logic value under
pattern *i*.  Because Python integers are unbounded, a single gate
evaluation simulates *all* patterns of a test set at once.  Inverting gates
need the ``mask`` argument (``(1 << n_patterns) - 1``) to complement only
the live bits.

**Three-valued bit-parallel.**  A net value is a pair of bit vectors
``(ones, zeros)``: bit *i* of ``ones`` means "may be 1 under pattern *i*",
bit *i* of ``zeros`` means "may be 0".  Binary 1 is ``(1, 0)``, binary 0 is
``(0, 1)`` and the unknown ``X`` is ``(1, 1)``.  This encoding makes
three-valued evaluation a handful of bitwise operations per gate and is the
engine behind the X-injection analysis at the heart of the diagnosis
method: forcing ``X`` at a site over-approximates *every* possible defect
behavior there.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from repro.errors import NetlistError

TV = tuple  # three-valued value: (ones, zeros) bit vectors


class GateKind(enum.Enum):
    """The primitive cell types understood by the simulators and ATPG."""

    INPUT = "input"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"  # inputs (a, b, sel): out = b if sel else a
    CONST0 = "const0"
    CONST1 = "const1"

    @property
    def min_inputs(self) -> int:
        return _ARITY[self][0]

    @property
    def max_inputs(self) -> int | None:
        """Maximum fanin, or ``None`` when the gate is n-ary."""
        return _ARITY[self][1]

    @property
    def inverting(self) -> bool:
        """True when the gate complements its natural body function."""
        return self in (GateKind.NOT, GateKind.NAND, GateKind.NOR, GateKind.XNOR)

    @property
    def controlling_value(self) -> int | None:
        """The input value that alone determines the output, if any.

        0 for AND/NAND, 1 for OR/NOR, ``None`` for XOR-like, BUF/NOT and MUX.
        Central to PODEM backtracing and critical path tracing.
        """
        if self in (GateKind.AND, GateKind.NAND):
            return 0
        if self in (GateKind.OR, GateKind.NOR):
            return 1
        return None

    @property
    def controlled_output(self) -> int | None:
        """Output value produced when a controlling input is present."""
        if self.controlling_value is None:
            return None
        # AND with a 0 -> 0, OR with a 1 -> 1; inverted for NAND/NOR.
        body = 0 if self in (GateKind.AND, GateKind.NAND) else 1
        return body ^ 1 if self.inverting else body


_ARITY: dict[GateKind, tuple[int, int | None]] = {
    GateKind.INPUT: (0, 0),
    GateKind.BUF: (1, 1),
    GateKind.NOT: (1, 1),
    GateKind.AND: (2, None),
    GateKind.NAND: (2, None),
    GateKind.OR: (2, None),
    GateKind.NOR: (2, None),
    GateKind.XOR: (2, None),
    GateKind.XNOR: (2, None),
    GateKind.MUX: (3, 3),
    GateKind.CONST0: (0, 0),
    GateKind.CONST1: (0, 0),
}

#: Names accepted by parsers, normalized to :class:`GateKind`.
KIND_ALIASES: dict[str, GateKind] = {
    "input": GateKind.INPUT,
    "buf": GateKind.BUF,
    "buff": GateKind.BUF,
    "not": GateKind.NOT,
    "inv": GateKind.NOT,
    "and": GateKind.AND,
    "nand": GateKind.NAND,
    "or": GateKind.OR,
    "nor": GateKind.NOR,
    "xor": GateKind.XOR,
    "xnor": GateKind.XNOR,
    "mux": GateKind.MUX,
    "const0": GateKind.CONST0,
    "const1": GateKind.CONST1,
    "gnd": GateKind.CONST0,
    "vdd": GateKind.CONST1,
}


@dataclass(frozen=True)
class Gate:
    """One gate instance: its output net name, kind and ordered input nets.

    Following ISCAS convention the gate is *named by its output net*; the
    pair (gate, input pin index) identifies a fanout branch.
    """

    output: str
    kind: GateKind
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        lo, hi = _ARITY[self.kind]
        n = len(self.inputs)
        if n < lo or (hi is not None and n > hi):
            raise NetlistError(
                f"gate {self.output!r}: {self.kind.value} takes "
                f"{lo}{'' if hi == lo else '+' if hi is None else f'..{hi}'} "
                f"inputs, got {n}"
            )

    def pin_of(self, net: str) -> list[int]:
        """Indices of the input pins driven by ``net`` (possibly several)."""
        return [i for i, name in enumerate(self.inputs) if name == net]


# ---------------------------------------------------------------------------
# Two-valued bit-parallel evaluation
# ---------------------------------------------------------------------------


def eval2(kind: GateKind, ins: Sequence[int], mask: int) -> int:
    """Evaluate ``kind`` over two-valued bit vectors.

    ``mask`` bounds the complement for inverting gates; every returned
    vector is confined to ``mask``.  ``ins`` may be any iterable (the
    simulator's no-override hot path passes a lazy ``map`` to avoid
    building a list per gate).
    """
    if kind is GateKind.AND or kind is GateKind.NAND:
        v = mask
        for x in ins:
            v &= x
        return (v ^ mask) if kind is GateKind.NAND else v
    if kind is GateKind.OR or kind is GateKind.NOR:
        v = 0
        for x in ins:
            v |= x
        return (v ^ mask) if kind is GateKind.NOR else v
    if kind is GateKind.XOR or kind is GateKind.XNOR:
        v = 0
        for x in ins:
            v ^= x
        return (v ^ mask) if kind is GateKind.XNOR else v & mask
    if kind is GateKind.BUF:
        (a,) = ins
        return a & mask
    if kind is GateKind.NOT:
        (a,) = ins
        return (a ^ mask) & mask
    if kind is GateKind.MUX:
        a, b, sel = ins
        return ((a & ~sel) | (b & sel)) & mask
    if kind is GateKind.CONST0:
        return 0
    if kind is GateKind.CONST1:
        return mask
    raise NetlistError(f"cannot evaluate gate kind {kind}")


# ---------------------------------------------------------------------------
# Three-valued bit-parallel evaluation
# ---------------------------------------------------------------------------

#: Three-valued constants for a single-bit slot.
TV_ZERO: TV = (0, 1)
TV_ONE: TV = (1, 0)
TV_X: TV = (1, 1)


def tv_const(value: int, mask: int) -> TV:
    """Lift a two-valued bit vector into the three-valued domain."""
    value &= mask
    return (value, value ^ mask)


def tv_all_x(mask: int) -> TV:
    return (mask, mask)


def tv_not(a: TV) -> TV:
    return (a[1], a[0])


def eval3(kind: GateKind, ins: Sequence[TV], mask: int) -> TV:
    """Evaluate ``kind`` over three-valued ``(ones, zeros)`` bit vectors.

    The encoding is *pessimistic-exact* per gate: a bit of the output can be
    1 (resp. 0) iff some assignment of the X inputs makes it so under the
    gate function evaluated gate-locally.
    """
    if kind is GateKind.AND or kind is GateKind.NAND:
        ones, zeros = mask, 0
        for o, z in ins:
            ones &= o
            zeros |= z
        out = (ones, zeros & mask)
        return tv_not(out) if kind is GateKind.NAND else out
    if kind is GateKind.OR or kind is GateKind.NOR:
        ones, zeros = 0, mask
        for o, z in ins:
            ones |= o
            zeros &= z
        out = (ones & mask, zeros)
        return tv_not(out) if kind is GateKind.NOR else out
    if kind is GateKind.XOR or kind is GateKind.XNOR:
        ones, zeros = 0, mask  # fold starting from constant 0
        for o, z in ins:
            n_ones = (ones & z) | (zeros & o)
            n_zeros = (ones & o) | (zeros & z)
            ones, zeros = n_ones & mask, n_zeros & mask
        out = (ones, zeros)
        return tv_not(out) if kind is GateKind.XNOR else out
    if kind is GateKind.BUF:
        return (ins[0][0] & mask, ins[0][1] & mask)
    if kind is GateKind.NOT:
        return (ins[0][1] & mask, ins[0][0] & mask)
    if kind is GateKind.MUX:
        (a1, a0), (b1, b0), (s1, s0) = ins
        ones = ((s0 & a1) | (s1 & b1)) & mask
        zeros = ((s0 & a0) | (s1 & b0)) & mask
        return (ones, zeros)
    if kind is GateKind.CONST0:
        return (0, mask)
    if kind is GateKind.CONST1:
        return (mask, 0)
    raise NetlistError(f"cannot evaluate gate kind {kind}")


def tv_xmask(v: TV) -> int:
    """Bits where the three-valued vector is X."""
    return v[0] & v[1]


def tv_binary(v: TV, mask: int) -> int:
    """Two-valued projection of the non-X bits (X bits read as 0).

    Callers must combine with :func:`tv_xmask` to know which bits are valid.
    """
    return v[0] & ~v[1] & mask
