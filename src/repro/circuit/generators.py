"""Parametric open-benchmark circuit generators.

The DAC 2008 evaluation ran on open ISCAS benchmarks plus industrial
designs, neither of which can be redistributed here beyond c17 (embedded in
:mod:`repro.circuit.bench`).  These generators produce structurally rich
substitutes -- arithmetic (heavy reconvergence), selection/decode trees
(high fanout), parity (XOR-dominated, every path sensitizable) and seeded
random DAGs (irregular reconvergent fanout) -- spanning tens to thousands
of gates.  Diagnosis difficulty is governed by exactly these structural
properties, so sweeping them reproduces the behavioral space of the
original benchmarks.  Real ``.bench`` files remain loadable through
:func:`repro.circuit.bench.parse_bench_file`.
"""

from __future__ import annotations

import random

from repro._rng import make_rng
from repro.circuit.bench import C17_BENCH, parse_bench
from repro.circuit.builder import NetlistBuilder
from repro.circuit.gates import GateKind
from repro.circuit.netlist import Netlist


def c17() -> Netlist:
    """The ISCAS-85 c17 benchmark (6 NAND gates)."""
    return parse_bench(C17_BENCH, name="c17")


def ripple_carry_adder(width: int, name: str | None = None) -> Netlist:
    """``width``-bit ripple-carry adder: a + b + cin -> sum, cout."""
    b = NetlistBuilder(name or f"rca{width}")
    a_bus = b.input_bus("a", width)
    b_bus = b.input_bus("b", width)
    carry = b.input("cin")
    for i in range(width):
        s, carry = b.full_adder(a_bus[i], b_bus[i], carry)
        b.output(b.buf(s, name=f"sum{i}"))
    b.output(b.buf(carry, name="cout"))
    return b.build()


def carry_select_adder(width: int, block: int = 4, name: str | None = None) -> Netlist:
    """Carry-select adder: per-block dual ripple chains muxed by the carry.

    Exercises MUX gates and long reconvergent select nets.
    """
    b = NetlistBuilder(name or f"csa{width}x{block}")
    a_bus = b.input_bus("a", width)
    b_bus = b.input_bus("b", width)
    carry = b.input("cin")
    sums: list[str] = []
    for base in range(0, width, block):
        hi = min(base + block, width)
        c0 = b.const0()
        c1 = b.const1()
        sums0: list[str] = []
        sums1: list[str] = []
        for i in range(base, hi):
            s0, c0 = b.full_adder(a_bus[i], b_bus[i], c0)
            s1, c1 = b.full_adder(a_bus[i], b_bus[i], c1)
            sums0.append(s0)
            sums1.append(s1)
        for offset, (s0, s1) in enumerate(zip(sums0, sums1)):
            sums.append(b.mux(s0, s1, carry, name=f"sum{base + offset}"))
        carry = b.mux(c0, c1, carry)
    b.output_bus(sums)
    b.output(b.buf(carry, name="cout"))
    return b.build()


def array_multiplier(width: int, name: str | None = None) -> Netlist:
    """``width`` x ``width`` unsigned array multiplier (carry-save rows)."""
    b = NetlistBuilder(name or f"mul{width}")
    a_bus = b.input_bus("a", width)
    b_bus = b.input_bus("b", width)
    # Partial products.
    pp = [[b.and_(a_bus[i], b_bus[j]) for i in range(width)] for j in range(width)]
    sums = list(pp[0])
    carries: list[str] = []
    outs = [sums[0]]
    for row in range(1, width):
        new_sums: list[str] = []
        new_carries: list[str] = []
        for col in range(width):
            addend = pp[row][col]
            prev_sum = sums[col + 1] if col + 1 < width else b.const0()
            cin = carries[col] if col < len(carries) else b.const0()
            s, c = b.full_adder(addend, prev_sum, cin)
            new_sums.append(s)
            new_carries.append(c)
        sums = new_sums
        carries = new_carries
        outs.append(sums[0])
    # Final ripple over the remaining carry row.
    carry = b.const0()
    for col in range(1, width):
        s, carry = b.full_adder(sums[col], carries[col - 1], carry)
        outs.append(s)
    outs.append(b.or_(carry, carries[width - 1]))
    for bit, net in enumerate(outs):
        b.output(b.buf(net, name=f"p{bit}"))
    return b.build()


def parity_tree(width: int, name: str | None = None) -> Netlist:
    """Balanced XOR parity tree over ``width`` inputs."""
    b = NetlistBuilder(name or f"parity{width}")
    ins = b.input_bus("d", width)
    b.output(b.reduce_tree(GateKind.XOR, ins, name="parity"))
    return b.build()


def mux_tree(select_bits: int, name: str | None = None) -> Netlist:
    """``2**select_bits``:1 multiplexer tree (high-fanout select nets)."""
    b = NetlistBuilder(name or f"muxtree{select_bits}")
    data = b.input_bus("d", 2**select_bits)
    sels = b.input_bus("s", select_bits)
    layer = data
    for bit in range(select_bits):
        layer = [
            b.mux(layer[2 * i], layer[2 * i + 1], sels[bit])
            for i in range(len(layer) // 2)
        ]
    b.output(b.buf(layer[0], name="y"))
    return b.build()


def decoder(select_bits: int, name: str | None = None) -> Netlist:
    """``select_bits``-to-``2**select_bits`` one-hot decoder with enable."""
    b = NetlistBuilder(name or f"dec{select_bits}")
    sels = b.input_bus("s", select_bits)
    enable = b.input("en")
    inv = [b.not_(s) for s in sels]
    for code in range(2**select_bits):
        terms = [sels[i] if (code >> i) & 1 else inv[i] for i in range(select_bits)]
        b.output(b.reduce_tree(GateKind.AND, terms + [enable], name=f"y{code}"))
    return b.build()


def comparator(width: int, name: str | None = None) -> Netlist:
    """Magnitude comparator: outputs eq, lt, gt for two ``width``-bit values."""
    b = NetlistBuilder(name or f"cmp{width}")
    a_bus = b.input_bus("a", width)
    b_bus = b.input_bus("b", width)
    bit_eq = [b.xnor(a_bus[i], b_bus[i]) for i in range(width)]
    eq = b.reduce_tree(GateKind.AND, bit_eq, name="eq")
    lt_terms: list[str] = []
    for i in reversed(range(width)):
        term = [b.and_(b.not_(a_bus[i]), b_bus[i])]
        term += [bit_eq[j] for j in range(i + 1, width)]
        lt_terms.append(b.reduce_tree(GateKind.AND, term))
    lt = b.reduce_tree(GateKind.OR, lt_terms, name="lt")
    b.output(eq)
    b.output(lt)
    b.output(b.nor(eq, lt, name="gt"))
    return b.build()


def alu(width: int, name: str | None = None) -> Netlist:
    """Small ALU: op selects among AND, OR, XOR and ADD; flags zero/carry.

    Dense reconvergence: every result bit depends on both operand buses and
    both op-select nets, which makes multi-defect interaction common --
    precisely the regime the diagnosis method targets.
    """
    b = NetlistBuilder(name or f"alu{width}")
    a_bus = b.input_bus("a", width)
    b_bus = b.input_bus("b", width)
    op0, op1 = b.input("op0"), b.input("op1")
    carry = b.const0()
    result: list[str] = []
    for i in range(width):
        and_i = b.and_(a_bus[i], b_bus[i])
        or_i = b.or_(a_bus[i], b_bus[i])
        xor_i = b.xor(a_bus[i], b_bus[i])
        add_i, carry = b.full_adder(a_bus[i], b_bus[i], carry)
        lo = b.mux(and_i, or_i, op0)
        hi = b.mux(xor_i, add_i, op0)
        result.append(b.mux(lo, hi, op1, name=f"r{i}"))
    b.output_bus(result)
    b.output(b.buf(carry, name="carry"))
    zero_terms = [b.not_(r) for r in result]
    b.output(b.reduce_tree(GateKind.AND, zero_terms, name="zero"))
    return b.build()


def majority(width: int, name: str | None = None) -> Netlist:
    """Majority voter over ``width`` (odd) inputs, sum-of-products form."""
    if width % 2 == 0:
        raise ValueError("majority voter needs an odd input count")
    b = NetlistBuilder(name or f"maj{width}")
    ins = b.input_bus("v", width)
    from itertools import combinations

    need = width // 2 + 1
    terms = [
        b.reduce_tree(GateKind.AND, list(combo))
        for combo in combinations(ins, need)
    ]
    b.output(b.reduce_tree(GateKind.OR, terms, name="maj"))
    return b.build()


_RANDOM_KINDS = (
    GateKind.AND,
    GateKind.NAND,
    GateKind.OR,
    GateKind.NOR,
    GateKind.XOR,
    GateKind.XNOR,
    GateKind.NOT,
)


def random_dag(
    n_gates: int,
    n_inputs: int = 16,
    n_outputs: int = 8,
    seed: int | random.Random = 0,
    max_fanin: int = 3,
    locality: int = 24,
    name: str | None = None,
) -> Netlist:
    """Seeded random combinational DAG with tunable reconvergent fanout.

    ``locality`` bounds how far back a gate may pick its fanins; smaller
    values create long narrow circuits, larger values create wide shallow
    ones with heavy fanout.  Every dangling internal net is compressed into
    one of the ``n_outputs`` outputs through a balanced XOR tree (like a
    response compactor), so the whole circuit is structurally observable --
    the property ATPG-ready benchmarks have.  The XOR compressors add a few
    gates on top of ``n_gates``.
    """
    rng = make_rng(seed)
    b = NetlistBuilder(name or f"rnd{n_gates}g{n_inputs}i")
    pool = b.input_bus("pi", n_inputs)
    for _ in range(n_gates):
        kind = rng.choice(_RANDOM_KINDS)
        fanin = 1 if kind is GateKind.NOT else rng.randint(2, max_fanin)
        window = pool[-locality:]
        srcs = [rng.choice(window) for _ in range(fanin)]
        if fanin > 1 and len(set(srcs)) == 1:
            srcs[0] = rng.choice(window)
        pool.append(b.gate(kind, srcs))
    internal = pool[n_inputs:]
    used = {src for gate in b._gates for src in gate.inputs}
    dangling = [net for net in internal if net not in used]
    if not dangling:  # pragma: no cover - a DAG always has sinks
        dangling = [internal[-1]]
    if len(dangling) <= n_outputs:
        for net in dangling:
            b.output(net)
    else:
        groups: list[list[str]] = [[] for _ in range(n_outputs)]
        for i, net in enumerate(dangling):
            groups[i % n_outputs].append(net)
        for idx, group in enumerate(groups):
            b.output(b.reduce_tree(GateKind.XOR, group, name=f"po{idx}"))
    return b.build()
