"""Synthetic placement and net adjacency (the layout we don't have).

Bridge defects happen between *physically adjacent* wires, but a purely
logical reproduction has no layout.  This module synthesizes a plausible
one:

- **Placement** (:func:`place`): gates sit on a grid, column = logic
  level (standard-cell rows x levelized columns), row assignment keeps
  connected gates near each other (barycenter-style averaging sweeps --
  the classic heuristic, seeded and deterministic).
- **Net geometry**: each net's bounding box spans its driver and sinks.
- **Adjacency** (:meth:`Placement.adjacent_pairs`): nets whose boxes come
  within a slice of each other are bridge-capable neighbors.

The adjacency feeds :func:`layout_bridge_pairs` -- a drop-in upgrade over
the level-proximity proxy in :mod:`repro.faults.universe` -- and the
campaign sampler, so injected shorts follow geometry rather than pure
logic distance.  It is a *model* of layout, not a router; DESIGN.md lists
it among the simulated substitutes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro._rng import make_rng
from repro.circuit.netlist import Netlist
from repro.faults.models import BridgeDefect, BridgeKind


@dataclass(frozen=True)
class Box:
    """Axis-aligned net bounding box in (column, row) cell units."""

    x0: float
    y0: float
    x1: float
    y1: float

    def distance(self, other: "Box") -> float:
        """Rectilinear gap between boxes (0 when they touch/overlap)."""
        dx = max(other.x0 - self.x1, self.x0 - other.x1, 0.0)
        dy = max(other.y0 - self.y1, self.y0 - other.y1, 0.0)
        return dx + dy


@dataclass
class Placement:
    """A synthesized placement: coordinates per net plus geometry queries."""

    netlist: Netlist
    position: dict[str, tuple[float, float]]  #: net -> (column, row)
    boxes: dict[str, Box]

    def adjacent_pairs(self, max_gap: float = 1.0) -> list[tuple[str, str]]:
        """Unordered net pairs whose routing boxes come within ``max_gap``.

        Plain quadratic scan over net boxes -- fine for the benchmark
        sizes this library targets (thousands of nets).
        """
        nets = sorted(self.boxes)
        pairs: list[tuple[str, str]] = []
        for i, a in enumerate(nets):
            box_a = self.boxes[a]
            for b in nets[i + 1 :]:
                if box_a.distance(self.boxes[b]) <= max_gap:
                    pairs.append((a, b))
        return pairs


def place(
    netlist: Netlist,
    seed: int | random.Random | None = None,
    sweeps: int = 3,
) -> Placement:
    """Synthesize a levelized, connectivity-clustered placement."""
    rng = make_rng(seed)
    columns: dict[str, int] = {net: netlist.level(net) for net in netlist.nets()}
    by_column: dict[int, list[str]] = {}
    for net, col in columns.items():
        by_column.setdefault(col, []).append(net)

    # Initial rows: random order within each column.
    rows: dict[str, float] = {}
    for col, nets in sorted(by_column.items()):
        order = sorted(nets)
        rng.shuffle(order)
        for row, net in enumerate(order):
            rows[net] = float(row)

    # Barycenter sweeps: pull each net toward the average row of its
    # neighbors (driver inputs + fanout readers), then re-rank per column.
    for _ in range(sweeps):
        desired: dict[str, float] = {}
        for net in netlist.nets():
            neighbor_rows = []
            gate = netlist.driver(net)
            if gate is not None:
                neighbor_rows += [rows[src] for src in gate.inputs]
            neighbor_rows += [rows[dest] for dest, _pin in netlist.fanout(net)]
            desired[net] = (
                sum(neighbor_rows) / len(neighbor_rows) if neighbor_rows else rows[net]
            )
        for col, nets in by_column.items():
            ranked = sorted(nets, key=lambda n: (desired[n], n))
            for row, net in enumerate(ranked):
                rows[net] = float(row)

    position = {net: (float(columns[net]), rows[net]) for net in netlist.nets()}

    boxes: dict[str, Box] = {}
    for net in netlist.nets():
        xs = [position[net][0]]
        ys = [position[net][1]]
        for dest, _pin in netlist.fanout(net):
            xs.append(position[dest][0])
            ys.append(position[dest][1])
        boxes[net] = Box(min(xs), min(ys), max(xs), max(ys))

    return Placement(netlist=netlist, position=position, boxes=boxes)


def layout_bridge_pairs(
    netlist: Netlist,
    placement: Placement | None = None,
    max_gap: float = 1.0,
    kind: BridgeKind = BridgeKind.DOMINANT,
    exclude_feedback: bool = True,
    seed: int | random.Random | None = None,
) -> list[BridgeDefect]:
    """Bridge candidates from synthesized geometry instead of level proxy."""
    if placement is None:
        placement = place(netlist, seed=seed)
    pairs: list[BridgeDefect] = []
    for a, b in placement.adjacent_pairs(max_gap):
        for victim, aggressor in ((a, b), (b, a)):
            if exclude_feedback and aggressor in netlist.fanout_cone([victim]):
                continue
            pairs.append(BridgeDefect(victim, aggressor, kind))
            if kind is not BridgeKind.DOMINANT:
                break
    return pairs
