"""Named benchmark circuit registry.

All experiments address circuits by name through :func:`load_circuit`, so a
benchmark table is fully described by (circuit name, seed, parameters).
The suite mixes the embedded ISCAS c17 with parametric generator instances
ordered by size; ``SUITE_SMALL`` .. ``SUITE_LARGE`` are the tiers used by
the reproduction experiments (Table 1 reports their characteristics).
"""

from __future__ import annotations

from typing import Callable

from repro.circuit import generators as gen
from repro.circuit.netlist import Netlist
from repro.errors import NetlistError


def _scan_core(make_sequential) -> Callable[[], Netlist]:
    """Factory adapter: sequential generator -> full-scan combinational core."""

    def build() -> Netlist:
        from repro.seq.transform import scan_insert

        return scan_insert(make_sequential(), n_chains=2).netlist

    return build

_REGISTRY: dict[str, Callable[[], Netlist]] = {
    "c17": gen.c17,
    "rca4": lambda: gen.ripple_carry_adder(4),
    "rca8": lambda: gen.ripple_carry_adder(8),
    "rca16": lambda: gen.ripple_carry_adder(16),
    "rca32": lambda: gen.ripple_carry_adder(32),
    "csa16": lambda: gen.carry_select_adder(16),
    "csa32": lambda: gen.carry_select_adder(32),
    "mul4": lambda: gen.array_multiplier(4),
    "mul6": lambda: gen.array_multiplier(6),
    "mul8": lambda: gen.array_multiplier(8),
    "mul12": lambda: gen.array_multiplier(12),
    "parity8": lambda: gen.parity_tree(8),
    "parity16": lambda: gen.parity_tree(16),
    "parity32": lambda: gen.parity_tree(32),
    "mux8": lambda: gen.mux_tree(3),
    "mux16": lambda: gen.mux_tree(4),
    "mux64": lambda: gen.mux_tree(6),
    "dec4": lambda: gen.decoder(4),
    "dec5": lambda: gen.decoder(5),
    "cmp8": lambda: gen.comparator(8),
    "cmp16": lambda: gen.comparator(16),
    "alu4": lambda: gen.alu(4),
    "alu8": lambda: gen.alu(8),
    "alu16": lambda: gen.alu(16),
    "maj7": lambda: gen.majority(7),
    "rnd100": lambda: gen.random_dag(100, n_inputs=12, n_outputs=8, seed=1),
    "rnd300": lambda: gen.random_dag(300, n_inputs=20, n_outputs=12, seed=2),
    "rnd1000": lambda: gen.random_dag(1000, n_inputs=32, n_outputs=16, seed=3),
    "rnd3000": lambda: gen.random_dag(3000, n_inputs=48, n_outputs=24, seed=4),
}


def _register_scan_cores() -> None:
    """Full-scan cores of the sequential benchmarks (lazy import cycle guard)."""
    from repro.seq import generators as seq_gen

    _REGISTRY.update(
        {
            "scan_cnt8": _scan_core(lambda: seq_gen.counter(8)),
            "scan_cnt16": _scan_core(lambda: seq_gen.counter(16)),
            "scan_lfsr16": _scan_core(lambda: seq_gen.lfsr((0, 2, 3, 5), 16)),
            "scan_sr32": _scan_core(lambda: seq_gen.shift_register(32)),
        }
    )


_register_scan_cores()

#: Full-scan cores of sequential designs (defects in next-state logic).
SUITE_SCAN = ("scan_cnt8", "scan_cnt16", "scan_lfsr16", "scan_sr32")

#: Small circuits: exhaustive analysis is feasible (exact cover, brute force).
SUITE_SMALL = ("c17", "rca4", "parity8", "mux8", "maj7", "mul4", "dec4")

#: Medium tier: the workhorse of the accuracy experiments.  (The larger
#: random DAGs stay out of this tier: random logic is massively redundant,
#: which makes their ATPG dominated by untestability proofs -- they remain
#: registered for structural/scaling use.)
SUITE_MEDIUM = ("rca16", "csa16", "mul6", "alu8", "cmp8", "dec5", "rnd100")

#: Large tier: runtime-scaling experiments.
SUITE_LARGE = ("rca32", "csa32", "mul8", "alu16", "cmp16", "mul12", "rnd1000", "rnd3000")


def circuit_names() -> list[str]:
    """All registered benchmark names, smallest tiers first."""
    return list(_REGISTRY)


def load_circuit(name: str) -> Netlist:
    """Instantiate a registered benchmark circuit by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise NetlistError(
            f"unknown circuit {name!r}; known: {', '.join(sorted(_REGISTRY))}"
        ) from None
    return factory()


def register_circuit(name: str, factory: Callable[[], Netlist]) -> None:
    """Add a user circuit to the registry (e.g. a parsed ISCAS file)."""
    if name in _REGISTRY:
        raise NetlistError(f"circuit {name!r} already registered")
    _REGISTRY[name] = factory
