"""The :class:`Netlist` combinational circuit graph.

A netlist is a DAG of :class:`~repro.circuit.gates.Gate` instances named by
their output nets (ISCAS convention).  Sequential designs are assumed to be
full-scan, so scan flip-flops appear as pseudo primary inputs/outputs and
every simulation and diagnosis question reduces to the combinational core.

Besides the graph itself this module provides the structural queries the
rest of the stack leans on:

- levelization / topological order (simulation schedules),
- fanout tables and fan-in/fan-out cones (structural pruning in diagnosis),
- fanout-free regions (critical path tracing),
- the :class:`Site` abstraction -- a *defect site* is either a stem (a net)
  or a specific fanout branch (a gate input pin), which is the granularity
  at which the diagnosis reports candidates.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.circuit.gates import Gate, GateKind
from repro.errors import CircuitError, NetlistError


@dataclass(frozen=True)
class Site:
    """A potential defect location.

    ``Site("n42")`` is the *stem* of net ``n42`` (the gate output or primary
    input itself).  ``Site("n42", branch=("g7", 1))`` is the fanout branch
    of ``n42`` feeding pin 1 of gate ``g7``; a defect there disturbs only
    that connection while the stem and sibling branches stay healthy.

    Sites are totally ordered (stem before its branches), so mixed
    stem/branch collections sort without surprises.
    """

    net: str
    branch: tuple[str, int] | None = None

    def __hash__(self) -> int:
        # Sites key every simulation memo (flip signatures, override
        # signatures, joint-assignment caches) and get hashed far more
        # often than they are created; cache the field-tuple hash.
        h = self.__dict__.get("_hash")
        if h is None:
            h = hash((self.net, self.branch))
            object.__setattr__(self, "_hash", h)
        return h

    def _sort_key(self) -> tuple:
        return (self.net, self.branch is not None, self.branch or ("", -1))

    def __lt__(self, other: "Site") -> bool:
        if not isinstance(other, Site):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    @property
    def is_stem(self) -> bool:
        return self.branch is None

    def __str__(self) -> str:
        if self.branch is None:
            return self.net
        gate, pin = self.branch
        return f"{self.net}->{gate}.{pin}"

    @classmethod
    def parse(cls, text: str) -> "Site":
        """Inverse of ``str(site)``; accepts ``net`` or ``net->gate.pin``."""
        if "->" not in text:
            return cls(text)
        net, _, rest = text.partition("->")
        gate, _, pin = rest.rpartition(".")
        if not gate or not pin.isdigit():
            raise NetlistError(f"malformed site {text!r}")
        return cls(net, (gate, int(pin)))


class Netlist:
    """An immutable-after-construction combinational netlist.

    Parameters
    ----------
    name:
        Circuit name, used in reports and the benchmark registry.
    inputs:
        Ordered primary input net names (includes scan pseudo-inputs).
    outputs:
        Ordered primary output net names (includes scan pseudo-outputs).
        An output may name a primary input directly (feed-through).
    gates:
        Gate instances; each defines the net named by its ``output``.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        gates: Iterable[Gate],
    ):
        self.name = name
        self.inputs: tuple[str, ...] = tuple(inputs)
        self.outputs: tuple[str, ...] = tuple(outputs)
        self.gates: dict[str, Gate] = {}
        for gate in gates:
            if gate.output in self.gates:
                raise NetlistError(f"net {gate.output!r} defined twice")
            if gate.kind is GateKind.INPUT:
                raise NetlistError(
                    f"gate {gate.output!r}: INPUT pseudo-gates are implied by "
                    "the `inputs` list and must not appear in `gates`"
                )
            self.gates[gate.output] = gate
        self._input_set = frozenset(self.inputs)
        if len(self._input_set) != len(self.inputs):
            raise NetlistError("duplicate primary input name")
        clash = self._input_set & self.gates.keys()
        if clash:
            raise NetlistError(f"nets defined both as input and gate: {sorted(clash)}")
        self._validate_references()
        self._order = self._levelize()
        self._fanouts = self._build_fanouts()
        self._level = {net: lvl for lvl, net in self._iter_levels()}
        self._cone_cache: dict[str, frozenset[str]] = {}
        self._fanin_cache: dict[frozenset[str], frozenset[str]] = {}
        self._fanout_cache: dict[frozenset[str], frozenset[str]] = {}
        self._fingerprint: str | None = None

    # -- construction-time checks ------------------------------------------

    def _validate_references(self) -> None:
        known = self._input_set | self.gates.keys()
        for gate in self.gates.values():
            for net in gate.inputs:
                if net not in known:
                    raise NetlistError(
                        f"gate {gate.output!r} references undefined net {net!r}"
                    )
        for net in self.outputs:
            if net not in known:
                raise NetlistError(f"primary output {net!r} is undefined")

    def _levelize(self) -> tuple[str, ...]:
        """Topological order of gate output nets (inputs excluded).

        Raises :class:`NetlistError` on combinational cycles.
        """
        indeg: dict[str, int] = {}
        dependents: dict[str, list[str]] = {}
        for gate in self.gates.values():
            gate_feeds = 0
            for net in set(gate.inputs):
                if net in self.gates:
                    gate_feeds += 1
                    dependents.setdefault(net, []).append(gate.output)
            indeg[gate.output] = gate_feeds
        ready = [net for net, d in indeg.items() if d == 0]
        ready.sort()  # determinism independent of dict insertion order
        order: list[str] = []
        from heapq import heapify, heappop, heappush

        heapify(ready)
        while ready:
            net = heappop(ready)
            order.append(net)
            for dep in dependents.get(net, ()):
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    heappush(ready, dep)
        if len(order) != len(self.gates):
            unresolved = {net for net, d in indeg.items() if d > 0}
            cycle = self._find_cycle(unresolved)
            raise CircuitError(
                "combinational cycle through nets " + " -> ".join(cycle),
                cycle=tuple(cycle),
            )
        return tuple(order)

    def _find_cycle(self, unresolved: set[str]) -> list[str]:
        """One concrete feedback loop among the nets levelization left over.

        ``unresolved`` contains the cycle's members plus everything
        downstream of them; a depth-first walk restricted to that subgraph
        finds a back edge and returns the loop as net names, closed (the
        first net repeated at the end) so the message reads as a path.
        """
        visiting: dict[str, int] = {}  # net -> position on the current path
        finished: set[str] = set()
        for start in sorted(unresolved):
            if start in finished:
                continue
            path: list[str] = []
            stack: list[tuple[str, Iterator[str]]] = [
                (start, iter(sorted(set(self.gates[start].inputs))))
            ]
            visiting[start] = 0
            path.append(start)
            while stack:
                net, inputs = stack[-1]
                advanced = False
                for src in inputs:
                    if src not in unresolved or src in finished:
                        continue
                    if src in visiting:
                        return path[visiting[src]:] + [src]
                    visiting[src] = len(path)
                    path.append(src)
                    stack.append((src, iter(sorted(set(self.gates[src].inputs)))))
                    advanced = True
                    break
                if not advanced:
                    stack.pop()
                    path.pop()
                    finished.add(net)
                    del visiting[net]
        # Unreachable when levelization genuinely stalled, kept as a guard.
        return sorted(unresolved)[:8]  # pragma: no cover

    def _build_fanouts(self) -> dict[str, tuple[tuple[str, int], ...]]:
        fanouts: dict[str, list[tuple[str, int]]] = {net: [] for net in self.nets()}
        for net in self._order:  # deterministic order
            gate = self.gates[net]
            for pin, src in enumerate(gate.inputs):
                fanouts[src].append((net, pin))
        return {net: tuple(dests) for net, dests in fanouts.items()}

    def _iter_levels(self) -> Iterator[tuple[int, str]]:
        level: dict[str, int] = {net: 0 for net in self.inputs}
        for net in self._order:
            gate = self.gates[net]
            lvl = 1 + max((level.get(src, 0) for src in gate.inputs), default=0)
            level[net] = lvl
            yield lvl, net
        for net in self.inputs:
            yield 0, net

    # -- basic queries -------------------------------------------------------

    def nets(self) -> Iterator[str]:
        """All net names: primary inputs first, then gates in topo order."""
        yield from self.inputs
        yield from self._order

    @property
    def topo_order(self) -> tuple[str, ...]:
        """Gate output nets in topological (evaluation) order."""
        return self._order

    @property
    def n_gates(self) -> int:
        return len(self.gates)

    @property
    def n_nets(self) -> int:
        return len(self.inputs) + len(self.gates)

    @property
    def depth(self) -> int:
        """Longest input-to-net path length in gates."""
        return max(self._level.values(), default=0)

    def level(self, net: str) -> int:
        return self._level[net]

    def is_input(self, net: str) -> bool:
        return net in self._input_set

    def driver(self, net: str) -> Gate | None:
        """The gate driving ``net``, or ``None`` for a primary input."""
        return self.gates.get(net)

    def fanout(self, net: str) -> tuple[tuple[str, int], ...]:
        """(gate, pin) pairs fed by ``net``."""
        return self._fanouts[net]

    def fanout_count(self, net: str) -> int:
        return len(self._fanouts[net])

    # -- cones ----------------------------------------------------------------

    #: Per-netlist bound on the multi-root cone memos.  Cones are memoized
    #: by root *set*, so pathological query mixes could otherwise accumulate
    #: an unbounded number of distinct keys; on overflow the memo is simply
    #: cleared (the per-root ``_cone_cache`` stays, so refills are cheap).
    _CONE_MEMO_LIMIT = 4096

    def fanin_cone(self, roots: Iterable[str]) -> frozenset[str]:
        """All nets with a structural path *to* any root (roots included).

        Cones are memoized per root set: ``candidate_sites`` and the cover
        enumeration ask for the same output groups over and over.
        """
        key = frozenset(roots)
        cached = self._fanin_cache.get(key)
        if cached is not None:
            return cached
        seen: set[str] = set()
        stack = list(key)
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            gate = self.gates.get(net)
            if gate is not None:
                stack.extend(src for src in gate.inputs if src not in seen)
        cone = frozenset(seen)
        if len(self._fanin_cache) >= self._CONE_MEMO_LIMIT:
            self._fanin_cache.clear()
        self._fanin_cache[key] = cone
        return cone

    def fanout_cone(self, roots: Iterable[str]) -> frozenset[str]:
        """All nets reachable *from* any root (roots included).

        Memoized at two levels: per root (the diagnosis engines query cones
        for the same handful of nets thousands of times) and per root *set*
        (so repeated multi-root queries return the same frozenset object,
        which downstream slot caches key on cheaply).
        """
        key = frozenset(roots)
        cached = self._fanout_cache.get(key)
        if cached is not None:
            return cached
        result: set[str] = set()
        for root in key:
            result |= self._single_fanout_cone(root)
        cone = frozenset(result)
        if len(self._fanout_cache) >= self._CONE_MEMO_LIMIT:
            self._fanout_cache.clear()
        self._fanout_cache[key] = cone
        return cone

    def _single_fanout_cone(self, root: str) -> frozenset[str]:
        cached = self._cone_cache.get(root)
        if cached is not None:
            return cached
        seen: set[str] = set()
        stack = [root]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            stack.extend(
                dest for dest, _pin in self._fanouts.get(net, ()) if dest not in seen
            )
        cone = frozenset(seen)
        self._cone_cache[root] = cone
        return cone

    def output_cone_map(self) -> dict[str, frozenset[str]]:
        """For every net, the set of primary outputs it can reach.

        Computed in one reverse-topological sweep; heavily used to prune the
        candidate space per failing pattern.
        """
        reach: dict[str, set[str]] = {net: set() for net in self.nets()}
        for out in self.outputs:
            reach[out].add(out)
        for net in reversed(self._order):
            acc = reach[net]
            for dest, _pin in self._fanouts[net]:
                acc |= reach[dest]
        for net in self.inputs:
            acc = reach[net]
            for dest, _pin in self._fanouts[net]:
                acc |= reach[dest]
        return {net: frozenset(outs) for net, outs in reach.items()}

    # -- fanout-free regions ---------------------------------------------------

    def ffr_root(self, net: str) -> str:
        """Root of the fanout-free region containing ``net``.

        Walking forward from ``net``, the FFR root is the first net that
        either fans out to more than one pin or is a primary output.
        """
        current = net
        while True:
            fan = self._fanouts[current]
            if len(fan) != 1 or current in self.outputs:
                return current
            current = fan[0][0]

    # -- defect sites ------------------------------------------------------------

    def sites(self, include_branches: bool = True) -> list[Site]:
        """Enumerate candidate defect sites.

        Every net contributes a stem site.  When ``include_branches`` is
        true, every fanout branch of a multi-fanout net contributes a branch
        site as well (a single-fanout branch is electrically the stem).
        """
        out: list[Site] = [Site(net) for net in self.nets()]
        if include_branches:
            for net in self.nets():
                fan = self._fanouts[net]
                if len(fan) > 1:
                    out.extend(Site(net, (gate, pin)) for gate, pin in fan)
        return out

    def validate_site(self, site: Site) -> None:
        if site.net not in self._input_set and site.net not in self.gates:
            raise NetlistError(f"site {site}: unknown net {site.net!r}")
        if site.branch is not None:
            gate_name, pin = site.branch
            gate = self.gates.get(gate_name)
            if gate is None:
                raise NetlistError(f"site {site}: unknown gate {gate_name!r}")
            if pin >= len(gate.inputs) or gate.inputs[pin] != site.net:
                raise NetlistError(
                    f"site {site}: pin {pin} of {gate_name!r} is not driven "
                    f"by {site.net!r}"
                )

    # -- derived circuits -----------------------------------------------------

    def extract_cone(self, output: str, name: str | None = None) -> "Netlist":
        """The self-contained subcircuit computing a single output."""
        if output not in self.gates and output not in self._input_set:
            raise NetlistError(f"unknown output net {output!r}")
        cone = self.fanin_cone([output])
        new_inputs = [net for net in self.inputs if net in cone]
        new_gates = [self.gates[net] for net in self._order if net in cone]
        return Netlist(
            name or f"{self.name}_cone_{output}",
            new_inputs,
            [output],
            new_gates,
        )

    # -- misc ----------------------------------------------------------------

    def fingerprint(self) -> str:
        """Short content hash over inputs, outputs and gates.

        Two netlists with identical structure share a fingerprint even when
        built independently (e.g. in different campaign workers), which is
        what keys the compiled-kernel and simulation-context caches.  The
        hash is computed lazily once; the class is immutable after
        construction, so in-place mutation (already unsupported -- it would
        stale ``topo_order`` and the cone caches) is not accounted for.
        """
        fp = self._fingerprint
        if fp is None:
            hasher = hashlib.sha256()
            hasher.update("\x1f".join(self.inputs).encode())
            hasher.update(b"\x1e")
            hasher.update("\x1f".join(self.outputs).encode())
            for net in self._order:
                gate = self.gates[net]
                hasher.update(
                    f"\x1e{net}\x1f{gate.kind.value}\x1f".encode()
                )
                hasher.update("\x1f".join(gate.inputs).encode())
            fp = self._fingerprint = hasher.hexdigest()[:16]
        return fp

    def stats(self) -> dict[str, int]:
        """Summary statistics used by Table 1 of the evaluation."""
        kind_histogram: dict[str, int] = {}
        for gate in self.gates.values():
            kind_histogram[gate.kind.value] = kind_histogram.get(gate.kind.value, 0) + 1
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": self.n_gates,
            "nets": self.n_nets,
            "depth": self.depth,
            "sites": len(self.sites()),
            **{f"kind_{k}": v for k, v in sorted(kind_histogram.items())},
        }

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, gates={self.n_gates})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Netlist):
            return NotImplemented
        return (
            self.inputs == other.inputs
            and self.outputs == other.outputs
            and self.gates == other.gates
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing is enough
        return id(self)
