"""Functionality-preserving netlist transformations.

- :func:`constant_propagate` -- sweep constants through the logic,
  simplifying gates whose inputs are known (the cleanup pass synthesis
  would run after tying off unused inputs),
- :func:`to_nand_inv` -- re-express every gate with 2-input NANDs and
  inverters (a technology-mapping stand-in), used by the structural
  ablation: the same defect diagnosed on differently mapped logic.

Both return new netlists with the original primary interface; every
original net keeps its name (transform outputs may add fresh internal
nets), so defect sites remain addressable after transformation.
Functional equivalence is property-tested.
"""

from __future__ import annotations

from repro.circuit.gates import Gate, GateKind
from repro.circuit.netlist import Netlist
from repro.errors import NetlistError


def constant_propagate(netlist: Netlist, name: str | None = None) -> Netlist:
    """Fold constants: gates with known-constant inputs simplify.

    The interface (inputs/outputs) is preserved; an output that becomes
    constant is driven by a CONST gate.  Simplifications: AND/NAND with a
    0 input, OR/NOR with a 1 input, XOR chains with constant operands,
    NOT/BUF of constants, MUX with constant select.
    """
    const: dict[str, int] = {}
    gates: list[Gate] = []

    def value_of(net: str) -> int | None:
        return const.get(net)

    for net in netlist.topo_order:
        gate = netlist.gates[net]
        kind = gate.kind
        ins = list(gate.inputs)
        vals = [value_of(src) for src in ins]

        if kind is GateKind.CONST0:
            const[net] = 0
            continue
        if kind is GateKind.CONST1:
            const[net] = 1
            continue
        if kind in (GateKind.BUF, GateKind.NOT):
            v = vals[0]
            if v is not None:
                const[net] = v ^ (1 if kind is GateKind.NOT else 0)
                continue
            gates.append(gate)
            continue
        if kind is GateKind.MUX:
            a, b, sel = ins
            sv = vals[2]
            if sv is not None:
                chosen, cv = (b, vals[1]) if sv else (a, vals[0])
                if cv is not None:
                    const[net] = cv
                else:
                    gates.append(Gate(net, GateKind.BUF, (chosen,)))
                continue
            if vals[0] is not None and vals[0] == vals[1]:
                const[net] = vals[0]
                continue
            gates.append(gate)
            continue

        ctrl = kind.controlling_value
        if ctrl is not None:
            if any(v == ctrl for v in vals):
                const[net] = kind.controlled_output  # type: ignore[assignment]
                continue
            live = [src for src, v in zip(ins, vals) if v is None]
            if not live:
                # all inputs at non-controlling constants
                body = 1 if ctrl == 0 else 0
                const[net] = body ^ (1 if kind.inverting else 0)
                continue
            if len(live) == 1:
                lowered = (
                    GateKind.NOT if kind.inverting else GateKind.BUF
                )
                gates.append(Gate(net, lowered, (live[0],)))
                continue
            if len(live) != len(ins):
                gates.append(Gate(net, kind, tuple(live)))
                continue
            gates.append(gate)
            continue
        if kind in (GateKind.XOR, GateKind.XNOR):
            parity = 1 if kind is GateKind.XNOR else 0
            live = []
            for src, v in zip(ins, vals):
                if v is None:
                    live.append(src)
                else:
                    parity ^= v
            if not live:
                const[net] = parity
                continue
            if len(live) == 1:
                gates.append(
                    Gate(net, GateKind.NOT if parity else GateKind.BUF, (live[0],))
                )
                continue
            base_kind = GateKind.XNOR if parity else GateKind.XOR
            gates.append(Gate(net, base_kind, tuple(live)))
            continue
        raise NetlistError(f"constant propagation cannot handle {kind}")

    # Materialize constants still referenced by surviving logic or outputs.
    needed = set(netlist.outputs)
    for gate in gates:
        needed.update(gate.inputs)
    for net, value in const.items():
        if net in needed:
            gates.append(
                Gate(net, GateKind.CONST1 if value else GateKind.CONST0, ())
            )
    return Netlist(
        name or f"{netlist.name}_swept", netlist.inputs, netlist.outputs, gates
    )


def to_nand_inv(netlist: Netlist, name: str | None = None) -> Netlist:
    """Re-map every gate onto 2-input NANDs and inverters.

    Original net names survive as the mapped gates' outputs; helper nets
    get a ``_ni`` prefix.  The mapping is naive (no sharing/optimization)
    -- it exists to study how structural granularity affects diagnosis,
    not to win area.
    """
    gates: list[Gate] = []
    fresh = 0

    def wire(tag: str) -> str:
        nonlocal fresh
        fresh += 1
        return f"_ni{fresh}_{tag}"

    def nand(out: str, a: str, b: str) -> str:
        gates.append(Gate(out, GateKind.NAND, (a, b)))
        return out

    def inv(out: str, a: str) -> str:
        gates.append(Gate(out, GateKind.NAND, (a, a)))
        return out

    def nand_tree(ins: list[str], out: str) -> str:
        """AND of ins, then inverted -- i.e. a wide NAND ending at `out`."""
        acc = ins[0]
        for nxt in ins[1:-1]:
            acc = inv(wire("a"), nand(wire("n"), acc, nxt))
        return nand(out, acc, ins[-1]) if len(ins) > 1 else inv(out, ins[0])

    for net in netlist.topo_order:
        gate = netlist.gates[net]
        kind, ins = gate.kind, list(gate.inputs)
        if kind is GateKind.BUF:
            inv(net, inv(wire("b"), ins[0]))
        elif kind is GateKind.NOT:
            inv(net, ins[0])
        elif kind is GateKind.NAND:
            nand_tree(ins, net)
        elif kind is GateKind.AND:
            inv(net, nand_tree(ins, wire("nd")))
        elif kind in (GateKind.OR, GateKind.NOR):
            inverted = [inv(wire("i"), src) for src in ins]
            if kind is GateKind.OR:
                nand_tree(inverted, net)  # OR = NAND of inverted inputs
            else:
                inv(net, nand_tree(inverted, wire("nd")))
        elif kind in (GateKind.XOR, GateKind.XNOR):
            acc = ins[0]
            for index, nxt in enumerate(ins[1:]):
                last = index == len(ins) - 2
                target = net if (last and kind is GateKind.XOR) else wire("x")
                m = nand(wire("m"), acc, nxt)
                acc = nand(
                    target,
                    nand(wire("l"), acc, m),
                    nand(wire("r"), m, nxt),
                )
            if kind is GateKind.XNOR:
                inv(net, acc)
        elif kind is GateKind.MUX:
            a, b, sel = ins
            nsel = inv(wire("ns"), sel)
            nand(net, nand(wire("ta"), a, nsel), nand(wire("tb"), b, sel))
        elif kind is GateKind.CONST0:
            anchor = netlist.inputs[0]
            inv_a = inv(wire("c"), anchor)
            inv(net, nand(wire("nd"), anchor, inv_a))
        elif kind is GateKind.CONST1:
            anchor = netlist.inputs[0]
            inv_a = inv(wire("c"), anchor)
            nand(net, anchor, inv_a)
        else:  # pragma: no cover
            raise NetlistError(f"cannot map {kind}")

    return Netlist(
        name or f"{netlist.name}_nand", netlist.inputs, netlist.outputs, gates
    )
