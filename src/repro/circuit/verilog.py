"""Structural Verilog (gate-primitive subset) reader and writer.

Handles the flat, primitive-instantiation netlist style that synthesized
benchmark circuits (e.g. the ISCAS-89 Verilog distributions) use::

    module top (a, b, z);
      input a, b;
      output z;
      wire w;
      nand U1 (w, a, b);
      not  U2 (z, w);
    endmodule

Supported: scalar ``input``/``output``/``wire`` declarations (comma
lists), the Verilog gate primitives (``buf not and nand or nor xor
xnor``, first port is the output), line and block comments, and multiple
statements per line.  Unsupported on purpose: vectors, ``assign``
expressions, hierarchy -- a diagnosis netlist is flat by construction.

DFF cells (``dff``-named instances with ports ``(Q, D)`` or any
non-primitive cell whose name contains ``dff``) are scan-replaced exactly
like the ``.bench`` reader: Q becomes a pseudo input, D a pseudo output.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.circuit.gates import Gate, GateKind, KIND_ALIASES
from repro.circuit.netlist import Netlist
from repro.errors import ParseError

_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.DOTALL)
_MODULE_RE = re.compile(
    r"module\s+(?P<name>[A-Za-z_][\w$]*)\s*\((?P<ports>[^)]*)\)\s*;", re.DOTALL
)


def _split_names(blob: str) -> list[str]:
    return [name.strip() for name in blob.split(",") if name.strip()]


def parse_verilog(text: str, name: str | None = None) -> Netlist:
    """Parse a flat gate-level Verilog module into a :class:`Netlist`."""
    clean = _COMMENT_RE.sub(" ", text)
    module = _MODULE_RE.search(clean)
    if module is None:
        raise ParseError("no `module ... ( ... );` header found")
    body_start = module.end()
    body_end = clean.find("endmodule", body_start)
    if body_end < 0:
        raise ParseError("missing `endmodule`")
    body = clean[body_start:body_end]

    inputs: list[str] = []
    outputs: list[str] = []
    wires: set[str] = set()
    gates: list[Gate] = []
    pseudo_inputs: list[str] = []
    pseudo_outputs: list[str] = []

    for raw in body.split(";"):
        statement = " ".join(raw.split())
        if not statement:
            continue
        keyword, _, rest = statement.partition(" ")
        keyword = keyword.lower()
        if keyword in ("input", "output", "wire"):
            names = _split_names(rest)
            if not names:
                raise ParseError(f"empty {keyword} declaration")
            if keyword == "input":
                inputs.extend(names)
            elif keyword == "output":
                outputs.extend(names)
            else:
                wires.update(names)
            continue
        # Gate instantiation:  <cell> [instance_name] ( ports... )
        match = re.match(
            r"(?P<cell>[A-Za-z_][\w$]*)\s*(?P<inst>[A-Za-z_][\w$]*)?\s*"
            r"\((?P<ports>[^)]*)\)$",
            statement,
        )
        if not match:
            raise ParseError(f"unrecognized statement {statement!r}")
        cell = match.group("cell").lower()
        ports = _split_names(match.group("ports"))
        if not ports:
            raise ParseError(f"instance with no ports: {statement!r}")
        out, ins = ports[0], tuple(ports[1:])
        if "dff" in cell:
            if len(ports) < 2:
                raise ParseError(f"DFF {statement!r} needs (Q, D) ports")
            pseudo_inputs.append(out)
            pseudo_outputs.append(ports[1])
            continue
        kind = KIND_ALIASES.get(cell)
        if kind is None or kind is GateKind.INPUT:
            raise ParseError(f"unsupported cell {cell!r}")
        try:
            gates.append(Gate(out, kind, ins))
        except Exception as exc:
            raise ParseError(str(exc)) from exc

    return Netlist(
        name or module.group("name"),
        inputs + pseudo_inputs,
        outputs + pseudo_outputs,
        gates,
    )


def parse_verilog_file(path: str | Path) -> Netlist:
    path = Path(path)
    return parse_verilog(path.read_text(), name=path.stem)


_PRIMITIVE_OF = {
    GateKind.BUF: "buf",
    GateKind.NOT: "not",
    GateKind.AND: "and",
    GateKind.NAND: "nand",
    GateKind.OR: "or",
    GateKind.NOR: "nor",
    GateKind.XOR: "xor",
    GateKind.XNOR: "xnor",
}


def _sanitize(net: str) -> str:
    """Make a net name a legal Verilog simple identifier."""
    if re.fullmatch(r"[A-Za-z_][\w$]*", net):
        return net
    return "n_" + re.sub(r"[^\w$]", "_", net)


def write_verilog(netlist: Netlist) -> str:
    """Serialize a netlist as flat primitive-instantiation Verilog.

    MUX and CONST gates are lowered to primitive equivalents (as in the
    ``.bench`` writer); net names that are not legal Verilog identifiers
    (e.g. the numeric ISCAS names) are prefixed.  Functional round-trip is
    guaranteed; structural identity is not (lowering may add gates).
    """
    rename = {net: _sanitize(net) for net in netlist.nets()}
    if len(set(rename.values())) != len(rename):
        raise ParseError("net name sanitization produced a collision")
    lines = [f"// {netlist.name} (written by repro)"]
    ports = [rename[n] for n in netlist.inputs] + [rename[n] for n in netlist.outputs]
    lines.append(f"module {_sanitize(netlist.name)} ({', '.join(ports)});")
    lines.append(f"  input {', '.join(rename[n] for n in netlist.inputs)};")
    lines.append(f"  output {', '.join(rename[n] for n in netlist.outputs)};")
    internal = [n for n in netlist.topo_order if n not in netlist.outputs]
    aux: list[str] = []
    body: list[str] = []
    fresh = 0

    def new_wire(tag: str) -> str:
        nonlocal fresh
        fresh += 1
        wire = f"_lw_{tag}{fresh}"
        aux.append(wire)
        return wire

    for index, net in enumerate(netlist.topo_order):
        gate = netlist.gates[net]
        out = rename[net]
        ins = [rename[src] for src in gate.inputs]
        if gate.kind in _PRIMITIVE_OF:
            prim = _PRIMITIVE_OF[gate.kind]
            body.append(f"  {prim} U{index} ({out}, {', '.join(ins)});")
        elif gate.kind is GateKind.MUX:
            a, b, sel = ins
            nsel, ta, tb = new_wire("ns"), new_wire("ta"), new_wire("tb")
            body.append(f"  not U{index}n ({nsel}, {sel});")
            body.append(f"  and U{index}a ({ta}, {a}, {nsel});")
            body.append(f"  and U{index}b ({tb}, {b}, {sel});")
            body.append(f"  or U{index} ({out}, {ta}, {tb});")
        elif gate.kind in (GateKind.CONST0, GateKind.CONST1):
            anchor = rename[netlist.inputs[0]]
            inv = new_wire("inv")
            body.append(f"  not U{index}n ({inv}, {anchor});")
            prim = "and" if gate.kind is GateKind.CONST0 else "or"
            body.append(f"  {prim} U{index} ({out}, {anchor}, {inv});")
        else:  # pragma: no cover - all kinds handled above
            raise ParseError(f"cannot emit {gate.kind}")

    wires = [rename[n] for n in internal] + aux
    if wires:
        lines.append(f"  wire {', '.join(wires)};")
    lines.extend(body)
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
