"""Command-line interface: ``python -m repro`` / ``repro-diagnose``.

Subcommands:

- ``circuits``            list registered benchmark circuits,
- ``stats <circuit>``     print a circuit's characteristics,
- ``atpg <circuit>``      generate and report a compacted test set,
- ``inject <circuit>``    sample defects, apply the test, write a datalog,
- ``diagnose <circuit>``  run the diagnosis against a datalog file,
- ``campaign <circuit>``  run a scored injection campaign,
- ``serve``               run the fault-tolerant diagnosis daemon
                          (``--role standalone|worker|coordinator``),
- ``cluster status``      query a node's fabric view (membership, leases).

``repro serve`` exit codes are distinct, documented (``--help``), and
shared by every role so supervisors can react per failure class: 0 clean
drain, 1 drain deadline overran (deferred jobs recover on restart), 2
configuration error (including a coordinator configured with zero
workers), 3 bind failure, 4 job store locked by another daemon.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import __version__
from repro.atpg.random_gen import generate_stuck_at_tests
from repro.campaign.driver import Campaign, CampaignConfig, provision_patterns
from repro.campaign.samplers import DEFAULT_MIX, sample_defect_set
from repro.campaign.tables import format_table
from repro.circuit.bench import parse_bench_file
from repro.circuit.library import circuit_names, load_circuit
from repro.circuit.netlist import Netlist
from repro.core.diagnose import DiagnosisConfig, Diagnoser
from repro.core.single_fault import diagnose_single_fault
from repro.core.slat import diagnose_slat
from repro.errors import DatalogError, ReproError
from repro.tester.datalog import Datalog
from repro.tester.harness import apply_test


def _load(circuit: str) -> Netlist:
    path = Path(circuit)
    if path.exists():
        if path.suffix == ".bench":
            return parse_bench_file(path)
        if path.suffix in (".v", ".vg"):
            from repro.circuit.verilog import parse_verilog_file

            return parse_verilog_file(path)
    return load_circuit(circuit)


def _cmd_circuits(_args: argparse.Namespace) -> int:
    rows = []
    for name in circuit_names():
        netlist = load_circuit(name)
        stats = netlist.stats()
        rows.append(
            (name, stats["inputs"], stats["outputs"], stats["gates"], stats["depth"])
        )
    print(format_table(["circuit", "PIs", "POs", "gates", "depth"], rows))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    netlist = _load(args.circuit)
    for key, value in netlist.stats().items():
        print(f"{key:>14}: {value}")
    return 0


def _cmd_atpg(args: argparse.Namespace) -> int:
    netlist = _load(args.circuit)
    if args.n_detect > 1:
        from repro.atpg.ndetect import generate_ndetect_tests

        ndreport = generate_ndetect_tests(netlist, args.n_detect, seed=args.seed)
        print(
            f"{netlist.name}: {ndreport.patterns.n} patterns, "
            f"{ndreport.fraction_meeting_target:.1%} of testable faults "
            f"detected >= {args.n_detect} times"
        )
        return 0
    report = generate_stuck_at_tests(netlist, seed=args.seed)
    print(
        f"{netlist.name}: {report.patterns.n} patterns, "
        f"coverage {report.coverage:.1%} of {report.n_faults} collapsed faults "
        f"({report.n_untestable} untestable, {report.n_aborted} aborted)"
    )
    return 0


def _cmd_timing(args: argparse.Namespace) -> int:
    from repro.sim.timing import arrival_times, propagation_depths

    netlist = _load(args.circuit)
    arrival = arrival_times(netlist)
    depth = propagation_depths(netlist)
    critical = max(arrival.values())
    print(f"{netlist.name}: critical path {critical:.0f} gate delays")
    slack_histogram: dict[int, int] = {}
    for net in netlist.nets():
        slack = int(critical - (arrival[net] + depth[net]))
        slack_histogram[slack] = slack_histogram.get(slack, 0) + 1
    print("slack histogram (nets per slack bucket):")
    for slack in sorted(slack_histogram):
        print(f"  slack {slack:>3d}: {'#' * min(slack_histogram[slack], 60)}")
    return 0


def _cmd_inject(args: argparse.Namespace) -> int:
    netlist = _load(args.circuit)
    patterns = provision_patterns(netlist, args.pattern_seed)
    defects = sample_defect_set(netlist, args.defects, seed=args.seed, mix=DEFAULT_MIX)
    noise = None
    if args.noise:
        from repro.tester.noise import parse_noise_spec

        noise = parse_noise_spec(args.noise)
    result = apply_test(netlist, patterns, defects, noise=noise, noise_seed=args.seed)
    print(f"injected: {', '.join(map(str, defects))}", file=sys.stderr)
    print(
        f"device {'FAILS' if result.device_fails else 'passes'} "
        f"({len(result.datalog.failing_indices)}/{patterns.n} failing patterns)",
        file=sys.stderr,
    )
    if result.raw is not None:
        # Emit the corrupted log as the tester would have: contradictions,
        # duplicates and all (diagnose --noise-report re-ingests it).
        print(result.ingest.describe(), file=sys.stderr)
        text = result.raw.to_text()
    else:
        text = result.datalog.to_text()
    if args.output:
        Path(args.output).write_text(text)
    else:
        sys.stdout.write(text)
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    netlist = _load(args.circuit)
    patterns = provision_patterns(netlist, args.pattern_seed)
    path = Path(args.datalog)
    try:
        text = path.read_text()
    except OSError as exc:
        raise DatalogError(f"{path}: cannot read datalog: {exc}") from exc
    raw = None
    try:
        if args.noise_report:
            # Tolerant path: anomalies are quarantined and reported
            # instead of rejecting the log outright.
            from repro.tester.noise import ingest_text

            sanitized = ingest_text(text)
            datalog = sanitized.datalog
            raw = sanitized.raw
            print(sanitized.report.describe(), file=sys.stderr)
            for warning in sanitized.report.warnings:
                print(f"  {warning}", file=sys.stderr)
        else:
            datalog = Datalog.from_text(text)
        datalog.validate_for(netlist, n_patterns=patterns.n)
    except DatalogError as exc:
        raise DatalogError(f"{path}: {exc}") from exc
    oracle_raw = (raw if raw is not None else datalog) if args.validate else None
    tracer = None
    if args.trace:
        from repro.obs.trace import Tracer, install_tracer

        tracer = Tracer()
        # Installed for the whole command so baseline methods and the
        # oracle pass emit into the same tree as the xcover pipeline.
        install_tracer(tracer)
    try:
        if args.method == "xcover":
            config = _budget_config(args)
            report = Diagnoser(netlist, config).diagnose(
                patterns, datalog, raw=oracle_raw, tracer=tracer
            )
        elif args.method == "slat":
            from repro.obs.trace import trace_span

            with trace_span(f"method:{args.method}", method=args.method):
                report = diagnose_slat(netlist, patterns, datalog)
        else:
            from repro.obs.trace import trace_span

            with trace_span(f"method:{args.method}", method=args.method):
                report = diagnose_single_fault(netlist, patterns, datalog)
        if oracle_raw is not None and report.consistency is None:
            from repro.core.oracle import validate_report

            report = validate_report(netlist, patterns, report, oracle_raw)
    finally:
        if tracer is not None:
            from repro.obs.trace import uninstall_tracer

            uninstall_tracer(tracer)
    print(report.summary())
    if not report.is_exact:
        print(
            f"diagnosis is {report.completeness}: partial but usable; "
            "raise --deadline/--max-expansions for a sharper result",
            file=sys.stderr,
        )
    if args.json:
        Path(args.json).write_text(report.to_json())
        print(f"(full report written to {args.json})", file=sys.stderr)
    if tracer is not None:
        from repro.obs.trace import to_chrome_trace

        Path(args.trace_out).write_text(
            json.dumps(to_chrome_trace([(0, tracer.to_dicts())]))
        )
        print(f"(chrome trace written to {args.trace_out})", file=sys.stderr)
    if args.metrics_out:
        _write_metrics(args.metrics_out)
    return 0


def _write_metrics(path: str) -> None:
    """Export the process metrics registry: Prometheus text, or JSON when
    the path ends in ``.json``."""
    from repro.obs.metrics import REGISTRY

    text = (
        REGISTRY.to_json()
        if str(path).endswith(".json")
        else REGISTRY.to_prometheus_text()
    )
    Path(path).write_text(text)
    print(f"(metrics written to {path})", file=sys.stderr)


def _budget_config(args: argparse.Namespace) -> DiagnosisConfig | None:
    """A DiagnosisConfig carrying the CLI search flags, or None if unset.

    ``None`` (every flag at its default) keeps the historical pipeline
    byte-identical -- campaigns then journal the same config fingerprint
    as before these flags existed.
    """
    cover_engine = getattr(args, "cover_engine", "greedy")
    if (
        args.deadline is None
        and args.max_multiplets is None
        and args.max_expansions is None
        and cover_engine == "greedy"
    ):
        return None
    return DiagnosisConfig(
        cover_engine=cover_engine,
        deadline_seconds=args.deadline,
        max_multiplets=args.max_multiplets,
        max_expansions=args.max_expansions,
    )


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.campaign.runner import RunnerConfig

    if args.noise:
        # Fail fast on a bad spec instead of burning a trial per worker.
        from repro.tester.noise import parse_noise_spec

        parse_noise_spec(args.noise)
    campaign = Campaign(args.circuit)
    config = CampaignConfig(
        circuit=args.circuit,
        n_trials=args.trials,
        k=args.defects,
        methods=tuple(args.methods.split(",")),
        seed=args.seed,
        interacting=args.interacting,
        diagnosis_config=_budget_config(args),
        noise=args.noise,
        trace=args.trace,
    )
    runner = RunnerConfig(
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        journal=args.journal,
        resume=args.resume,
    )
    if args.resume and not args.journal:
        print("campaign: --resume requires --journal", file=sys.stderr)
        return 2
    result = campaign.run(config, runner)
    if args.csv:
        from repro.campaign.export import outcomes_to_csv

        Path(args.csv).write_text(outcomes_to_csv(result))
    if args.json:
        from repro.campaign.export import result_to_json

        Path(args.json).write_text(result_to_json(result))
    if args.trace:
        from repro.obs.trace import to_chrome_trace

        payload = to_chrome_trace(
            (entry["trial"], entry["spans"]) for entry in result.traces
        )
        Path(args.trace_out).write_text(json.dumps(payload))
        print(
            f"(chrome trace of {len(result.traces)} trial(s) written to "
            f"{args.trace_out})",
            file=sys.stderr,
        )
    if args.metrics_out:
        _write_metrics(args.metrics_out)
    headers = [
        "method", "trials", "recall", "precision", "resolution", "success", "time",
    ]
    rows = [
        [
            agg.group,
            agg.n_trials,
            f"{agg.recall_near:.2f}",
            f"{agg.precision:.2f}",
            f"{agg.resolution:.1f}",
            f"{agg.success_rate:.2f}",
            f"{agg.seconds * 1000:.0f}ms",
        ]
        for agg in result.by_method().values()
    ]
    if args.noise:
        # The oracle runs on every noisy trial; surface its agreement.
        headers.append("confirmed")
        for row, agg in zip(rows, result.by_method().values()):
            row.append(f"{agg.confirmed_rate:.2f}")
    print(
        format_table(
            headers,
            [tuple(row) for row in rows],
            title=f"campaign {args.circuit} k={args.defects}"
            + (f" noise={args.noise}" if args.noise else ""),
        )
    )
    truncated = sum(1 for o in result.outcomes if o.completeness != "exact")
    if truncated:
        print(
            f"{truncated} diagnosis run(s) hit the resource budget and "
            "reported a truncated (anytime) result",
            file=sys.stderr,
        )
    if result.resumed_trials:
        print(
            f"resumed {result.resumed_trials} journaled trial(s) without "
            "re-execution",
            file=sys.stderr,
        )
    if result.skip_reasons:
        reasons = ", ".join(
            f"{name}={count}" for name, count in sorted(result.skip_reasons.items())
        )
        print(
            f"skipped {result.skipped_trials} trial(s); resamples: {reasons}",
            file=sys.stderr,
        )
    for error in result.trial_errors:
        print(
            f"trial {error.trial} failed [{error.cause}] after "
            f"{error.attempts} attempt(s): {error}",
            file=sys.stderr,
        )
    return 1 if result.trial_errors else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.errors import BindError, JournalError, ServeError
    from repro.serve.app import (
        EXIT_BIND,
        EXIT_CONFIG,
        EXIT_LOCKED,
        ServeConfig,
        serve,
    )

    try:
        if args.role == "coordinator":
            return _serve_coordinator(args)
        if args.worker:
            raise ServeError(
                "--worker only applies to --role coordinator "
                f"(got --role {args.role})"
            )
        config = ServeConfig(
            store=args.store,
            host=args.host,
            port=args.port,
            workers=args.jobs,
            queue_depth=args.queue_depth,
            high_water=args.high_water,
            drain_seconds=args.drain_seconds,
            retries=args.retries,
            fsync=not args.no_fsync,
            compact_bytes=args.compact_bytes if args.compact_bytes > 0 else None,
            compact_age_seconds=args.compact_age if args.compact_age > 0 else None,
            stuck_seconds=args.stuck_seconds if args.stuck_seconds > 0 else None,
            retry_wall_seconds=args.retry_wall if args.retry_wall > 0 else None,
            chaos=args.chaos,
            role=args.role,
        )
        if config.workers < 1:
            raise ServeError("--jobs must be >= 1")
        if config.queue_depth < 1:
            raise ServeError("--queue-depth must be >= 1")
        if not 0.0 < config.high_water <= 1.0:
            raise ServeError("--high-water must be in (0, 1]")
        if config.drain_seconds < 0 or config.retries < 0:
            raise ServeError("--drain-seconds and --retries must be >= 0")
        return serve(config)
    except BindError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_BIND
    except JournalError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_LOCKED
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONFIG


def _serve_coordinator(args: argparse.Namespace) -> int:
    """Build and run the cluster coordinator (raises for the exit-code
    mapping in :func:`_cmd_serve`)."""
    from repro.errors import ServeError
    from repro.serve.cluster import CoordinatorConfig, serve_coordinator

    if args.queue_depth < 1:
        raise ServeError("--queue-depth must be >= 1")
    if args.heartbeat_interval < 0 or args.lease_seconds <= 0:
        raise ServeError(
            "--heartbeat-interval must be >= 0 and --lease-seconds > 0"
        )
    if args.max_failures < 1 or args.min_live < 1:
        raise ServeError("--max-failures and --min-live must be >= 1")
    config = CoordinatorConfig(
        store=args.store,
        host=args.host,
        port=args.port,
        workers=tuple(args.worker),  # empty -> ServeError from the parser
        heartbeat_interval=args.heartbeat_interval,
        max_failures=args.max_failures,
        lease_seconds=args.lease_seconds,
        min_live=args.min_live,
        queue_depth=args.queue_depth,
        drain_seconds=args.drain_seconds,
        retry_wall_seconds=args.retry_wall if args.retry_wall > 0 else None,
        fsync=not args.no_fsync,
        compact_bytes=args.compact_bytes if args.compact_bytes > 0 else None,
        chaos=args.chaos,
    )
    return serve_coordinator(config)


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    from repro.serve.cluster.client import NodeUnreachable, WorkerClient

    client = WorkerClient(timeout=args.timeout)
    try:
        status, payload = client.request(
            args.url, "health", "GET", "/cluster/status"
        )
    except NodeUnreachable as exc:
        raise ReproError(str(exc)) from exc
    if status != 200:
        raise ReproError(
            f"{args.url}/cluster/status answered {status}: "
            f"{payload.get('error', payload)}"
        )
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"role: {payload.get('role', 'unknown')}")
    counts = payload.get("counts", {})
    if counts:
        summary = ", ".join(
            f"{state}={counts[state]}" for state in sorted(counts)
        )
        print(f"jobs: {summary}")
    for node in payload.get("nodes", []):
        print(
            f"node {node['name']:>8} {node['state']:>8} "
            f"failures={node['failures']} {node.get('url', '')}"
        )
    leases = payload.get("leases", [])
    for lease in leases:
        print(
            f"lease {lease['id']} -> {lease['node']} "
            f"attempt={lease['attempt']} "
            f"expires_in={lease['expires_in_seconds']}s"
            + (" (adopted)" if lease.get("adopted") else "")
        )
    pending = payload.get("pending", [])
    if pending:
        print(f"pending dispatch: {', '.join(pending)}")
    if "queued" in payload:
        print(
            f"queued={payload['queued']} running={payload['running']} "
            f"draining={payload.get('draining', False)}"
        )
    return 0


def _cmd_store_compact(args: argparse.Namespace) -> int:
    from repro.serve.store import JobStore

    if not Path(args.store).exists():
        # Opening would create an empty store -- a typo'd path must not
        # silently succeed as a 0-record "compaction".
        raise ReproError(f"job store not found: {args.store}")
    store = JobStore(args.store)
    store.open(recover=False)  # JournalError when a daemon holds the lock
    try:
        stats = store.compact()
    finally:
        store.close()
    print(
        f"compacted {args.store}: {stats['before_bytes']} -> "
        f"{stats['after_bytes']} bytes "
        f"({stats['records']} records kept, "
        f"{stats['dropped_records']} superseded records dropped)"
    )
    return 0


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    """Observability flags shared by ``diagnose`` and ``campaign``."""
    p.add_argument(
        "--trace",
        action="store_true",
        help="record per-stage spans and write a Chrome-trace JSON "
        "(open in chrome://tracing or Perfetto as a flamegraph); never "
        "changes the diagnosis itself",
    )
    p.add_argument(
        "--trace-out",
        default="trace.json",
        help="Chrome-trace output path for --trace (default: trace.json)",
    )
    p.add_argument(
        "--metrics-out",
        help="export the process metrics registry on exit: Prometheus "
        "text format, or JSON when the path ends in .json",
    )


def _add_budget_args(p: argparse.ArgumentParser) -> None:
    """Search-governance flags shared by ``diagnose`` and ``campaign``."""
    p.add_argument(
        "--cover-engine",
        choices=("greedy", "exact", "clustered"),
        default="greedy",
        help="multiplet search engine: greedy (historical default), exact "
        "(implicit hitting sets, provably minimum covers with an "
        "optimality status) or clustered (per-defect-group covers via "
        "failure clustering, then joint verification)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="in-engine wall-clock budget in seconds; on expiry the "
        "diagnosis returns what it has (completeness != exact) instead "
        "of running on",
    )
    p.add_argument(
        "--max-multiplets",
        type=int,
        default=None,
        help="stop enumerating multiplet covers beyond this many",
    )
    p.add_argument(
        "--max-expansions",
        type=int,
        default=None,
        help="ceiling on expansion nodes (joint simulations / cover checks)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Assumption-free multiple defect diagnosis (DAC 2008 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("circuits", help="list benchmark circuits").set_defaults(
        func=_cmd_circuits
    )

    p = sub.add_parser("stats", help="circuit characteristics")
    p.add_argument("circuit")
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("atpg", help="generate a compacted stuck-at test set")
    p.add_argument("circuit")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--n-detect", type=int, default=1)
    p.set_defaults(func=_cmd_atpg)

    p = sub.add_parser("timing", help="static timing profile of a circuit")
    p.add_argument("circuit")
    p.set_defaults(func=_cmd_timing)

    p = sub.add_parser("inject", help="sample defects and emit a datalog")
    p.add_argument("circuit")
    p.add_argument("-k", "--defects", type=int, default=2)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--pattern-seed", type=int, default=7)
    p.add_argument(
        "--noise",
        help="corrupt the emitted datalog with a seeded noise spec, e.g. "
        "flip:0.02 or flip:0.02+dup:0.1 (models: flip, drop, trunc, "
        "xmask, dup)",
    )
    p.add_argument("-o", "--output")
    p.set_defaults(func=_cmd_inject)

    p = sub.add_parser("diagnose", help="diagnose a datalog")
    p.add_argument("circuit")
    p.add_argument("datalog")
    p.add_argument(
        "--method", choices=("xcover", "slat", "single"), default="xcover"
    )
    p.add_argument("--pattern-seed", type=int, default=7)
    p.add_argument("--json", help="also write the full report as JSON")
    p.add_argument(
        "--noise-report",
        action="store_true",
        help="ingest tolerantly: quarantine contradictory/malformed "
        "records into the X tier and print the anomaly report instead "
        "of rejecting the datalog",
    )
    p.add_argument(
        "--validate",
        action="store_true",
        help="run the post-diagnosis oracle: resimulate reported "
        "candidates against the raw evidence and attach verdicts",
    )
    _add_budget_args(p)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_diagnose)

    p = sub.add_parser("campaign", help="run a scored injection campaign")
    p.add_argument("circuit")
    p.add_argument("-k", "--defects", type=int, default=2)
    p.add_argument("-n", "--trials", type=int, default=10)
    p.add_argument("--methods", default="xcover,slat,single")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--interacting", action="store_true")
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=1,
        help="worker processes; >1 runs trials concurrently in isolation",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-trial wall-clock budget in seconds (kills stuck trials)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries for transient trial failures (crash/timeout)",
    )
    p.add_argument(
        "--journal",
        help="append-only JSONL trial journal (checkpoint for --resume)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="replay journaled trials instead of re-executing them",
    )
    p.add_argument("--csv", help="write per-trial outcomes as CSV")
    p.add_argument("--json", help="write the full campaign record as JSON")
    p.add_argument(
        "--noise",
        help="datalog noise spec applied to every trial (e.g. flip:0.02); "
        "diagnosis runs on the quarantined sanitizer output and the "
        "oracle judges every report against the raw log",
    )
    _add_budget_args(p)
    _add_obs_args(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="run the fault-tolerant diagnosis daemon (durable job store, "
        "crash recovery, backpressure, graceful drain) or the cluster "
        "coordinator (--role coordinator)",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "exit codes (all roles):\n"
            "  0  clean drain (SIGTERM honored within the deadline)\n"
            "  1  drain deadline overran; deferred jobs recover on restart\n"
            "  2  configuration error (bad flag, zero workers for a "
            "coordinator)\n"
            "  3  listen address could not be bound\n"
            "  4  job store locked by another daemon\n"
        ),
    )
    p.add_argument(
        "--role",
        choices=("standalone", "worker", "coordinator"),
        default="standalone",
        help="standalone serves end clients directly; worker is the same "
        "daemon fronted by a coordinator; coordinator admits jobs and "
        "dispatches them to --worker nodes under durable leases",
    )
    p.add_argument(
        "--worker",
        action="append",
        default=[],
        metavar="[NAME=]URL",
        help="(coordinator) one worker node base URL, repeatable; bare "
        "URLs are auto-named w0, w1, ...; a coordinator with zero "
        "workers refuses to start",
    )
    p.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        help="(coordinator) seconds between worker /healthz polls",
    )
    p.add_argument(
        "--max-failures",
        type=int,
        default=3,
        help="(coordinator) consecutive heartbeat failures before a "
        "worker is declared dead and its leases are taken over",
    )
    p.add_argument(
        "--lease-seconds",
        type=float,
        default=15.0,
        help="(coordinator) unrenewed-lease expiry; the takeover backstop "
        "for partitions that drop responses without refusing connections",
    )
    p.add_argument(
        "--min-live",
        type=int,
        default=1,
        help="(coordinator) admission floor: below this many routable "
        "workers new submissions get 503 + Retry-After",
    )
    p.add_argument(
        "--store",
        default="jobs.jsonl",
        help="durable job journal path; restart with the same path to "
        "recover in-flight jobs (default: jobs.jsonl)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8765,
        help="listen port; 0 picks a free port (printed on startup)",
    )
    p.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=2,
        help="worker threads (shard-affine by circuit fingerprint)",
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="admission bound: queued jobs past this are rejected with 429",
    )
    p.add_argument(
        "--high-water",
        type=float,
        default=0.75,
        help="queue fraction past which readiness drops and new jobs run "
        "under degraded QoS budgets",
    )
    p.add_argument(
        "--drain-seconds",
        type=float,
        default=10.0,
        help="SIGTERM drain deadline for in-flight jobs",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries for transient job failures",
    )
    p.add_argument(
        "--no-fsync",
        action="store_true",
        help="skip per-record fsync on the job store (faster, loses the "
        "acknowledged-implies-durable guarantee)",
    )
    p.add_argument(
        "--compact-bytes",
        type=int,
        default=4 << 20,
        help="compact the job store when its journal exceeds this many "
        "bytes (0 disables; default: 4 MiB)",
    )
    p.add_argument(
        "--compact-age",
        type=float,
        default=0.0,
        help="also compact every this many seconds (0 disables)",
    )
    p.add_argument(
        "--stuck-seconds",
        type=float,
        default=300.0,
        help="watchdog: abandon and requeue a job wedged on one worker "
        "longer than this (0 disables wedge detection)",
    )
    p.add_argument(
        "--retry-wall",
        type=float,
        default=600.0,
        help="total wall-clock a job may spend in retries/requeues before "
        "it fails terminally (0: unbounded)",
    )
    p.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="arm the deterministic fault-injection plan, e.g. "
        "'fsync_eio:0.05+slow_io:20ms' (testing only; falls back to the "
        "REPRO_CHAOS environment variable)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "store",
        help="offline job-store maintenance",
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)
    p = store_sub.add_parser(
        "compact",
        help="rewrite the job journal as a minimal snapshot (crash-safe: "
        "new journal is fsync'd then atomically renamed over the old)",
    )
    p.add_argument(
        "--store",
        default="jobs.jsonl",
        help="job journal path (default: jobs.jsonl); refuses to run "
        "while a daemon holds the store lock",
    )
    p.set_defaults(func=_cmd_store_compact)

    p = sub.add_parser(
        "cluster",
        help="cluster fabric introspection",
    )
    cluster_sub = p.add_subparsers(dest="cluster_command", required=True)
    p = cluster_sub.add_parser(
        "status",
        help="query a node's /cluster/status (coordinator: membership, "
        "leases, pending dispatches; worker/standalone: role and load)",
    )
    p.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="node base URL (default: http://127.0.0.1:8765)",
    )
    p.add_argument("--timeout", type=float, default=5.0)
    p.add_argument(
        "--json", action="store_true", help="print the raw JSON payload"
    )
    p.set_defaults(func=_cmd_cluster_status)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        # Library errors are user-facing diagnoses (bad file, bad circuit,
        # mismatched journal...), not tracebacks.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
