"""The paper's contribution: assumption-free multiple defect diagnosis.

Modules:

- :mod:`repro.core.backtrace` -- structural candidate extraction and exact
  (flip-based) critical path tracing,
- :mod:`repro.core.xcover` -- the X-injection coverage analysis that
  over-approximates every possible defect behavior at a site,
- :mod:`repro.core.cover` -- multiplet covering (greedy with masking-pair
  rescue, pruning, and exact enumeration for small instances),
- :mod:`repro.core.hitting` -- implicit-hitting-set exact cover engine
  (provably minimum-cardinality multiplets with an optimality status),
- :mod:`repro.core.clusterdiag` -- hypergraph test-distance failure
  clustering for per-defect-group sub-diagnoses,
- :mod:`repro.core.refine` -- fault-model allocation per candidate site,
- :mod:`repro.core.scoring` -- response-match metrics and vindication,
- :mod:`repro.core.diagnose` -- the :class:`Diagnoser` pipeline,
- :mod:`repro.core.single_fault` -- classic single-fault effect-cause
  baseline,
- :mod:`repro.core.slat` -- SLAT/per-test multiple-fault baseline,
- :mod:`repro.core.report` -- result data structures,
- :mod:`repro.core.budget` -- anytime resource governance (deadlines,
  expansion/multiplet ceilings, cooperative cancellation),
- :mod:`repro.core.oracle` -- post-diagnosis validation against the raw
  (pre-sanitized) tester evidence.
"""

from repro.core.budget import Budget, CancellationToken, Truncation
from repro.core.oracle import validate_report
from repro.core.report import (
    Candidate,
    DiagnosisReport,
    Hypothesis,
    Multiplet,
    Validation,
)
from repro.core.diagnose import Diagnoser, DiagnosisConfig
from repro.core.single_fault import diagnose_single_fault
from repro.core.slat import diagnose_slat

__all__ = [
    "Budget",
    "CancellationToken",
    "Truncation",
    "Candidate",
    "DiagnosisReport",
    "Hypothesis",
    "Multiplet",
    "Validation",
    "Diagnoser",
    "DiagnosisConfig",
    "diagnose_single_fault",
    "diagnose_slat",
    "validate_report",
]
