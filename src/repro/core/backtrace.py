"""Structural candidate extraction and critical path tracing.

Two complementary tools:

- :func:`candidate_sites` builds the *complete* structural candidate
  envelope for a datalog: every site with a path into some failing output
  of some failing pattern.  Under the no-assumptions premise this is the
  only sound hard pruning -- any tighter filter needs behavioral analysis
  (the X-cover stage).

- :func:`flip_criticality` is an exact, stem-aware critical path tracing
  primitive computed by single-site flip resimulation, bit-parallel over
  all patterns at once.  :func:`cpt_trace` is the classic recursive
  gate-level CPT (with explicit stem checks) kept both as an independent
  oracle for testing and as the cheaper ranking signal used in ablation
  studies.
"""

from __future__ import annotations

from typing import Mapping

from repro.circuit.gates import eval2
from repro.circuit.netlist import Netlist, Site
from repro.core.budget import Budget
from repro.sim.cache import active_context
from repro.sim.event import changed_outputs, resimulate_with_overrides
from repro.sim.patterns import PatternSet
from repro.tester.datalog import Datalog


def candidate_sites(
    netlist: Netlist,
    datalog: Datalog,
    include_branches: bool = True,
    budget: Budget | None = None,
) -> list[Site]:
    """Sites structurally able to affect some observed failing output.

    The union, over failing patterns, of the fan-in cones of that
    pattern's failing outputs; branch sites are included when the reading
    gate lies inside the envelope.  Deterministically ordered by
    topological position.

    Under a ``budget`` the cone union is checked per failing record (after
    the first, so the envelope is never empty for a failing device); on
    exhaustion the envelope built so far is returned with a ``backtrace``
    truncation recorded -- a sound but incomplete candidate space.
    """
    nets: set[str] = set()
    for done, record in enumerate(datalog.records):
        if (
            budget is not None
            and done
            and budget.stop("backtrace", done, len(datalog.records))
        ):
            break
        nets |= netlist.fanin_cone(record.failing_outputs)
    ordered = [net for net in netlist.nets() if net in nets]
    sites = [Site(net) for net in ordered]
    if include_branches:
        for net in ordered:
            fan = netlist.fanout(net)
            if len(fan) > 1:
                sites.extend(
                    Site(net, (gate, pin)) for gate, pin in fan if gate in nets
                )
    return sites


def flip_criticality(
    netlist: Netlist,
    patterns: PatternSet,
    site: Site,
    base_values: Mapping[str, int],
) -> dict[str, int]:
    """Exact criticality of ``site``: per-output vectors of flip-sensitivity.

    Bit *i* of ``result[out]`` is set iff inverting the site's value under
    pattern *i* inverts output ``out``.  This is critical path tracing with
    exact stem handling, evaluated for every pattern in one cone-restricted
    resimulation -- or answered from the shared context's flip-signature
    memo when ``base_values`` is that context's own base vector.
    """
    ctx = active_context(netlist, patterns, base_values)
    if ctx is not None:
        return dict(ctx.flip_signature(site))
    mask = patterns.mask
    flipped = (base_values[site.net] ^ mask) & mask
    changed = resimulate_with_overrides(netlist, base_values, {site: flipped}, mask)
    return changed_outputs(netlist, changed, base_values, mask)


def _scalar_values(values: Mapping[str, int], pattern_index: int) -> dict[str, int]:
    bit = pattern_index
    return {net: (vec >> bit) & 1 for net, vec in values.items()}


def cpt_trace(
    netlist: Netlist,
    patterns: PatternSet,
    base_values: Mapping[str, int],
    pattern_index: int,
    output: str,
) -> set[str]:
    """Classic gate-level critical path tracing from one output.

    Returns nets critical for ``output`` under the given pattern.  Tracing
    proceeds backward through gate criticality rules inside fanout-free
    regions; each fanout stem encountered is resolved by an exact flip
    check (the textbook stem-analysis step).

    Soundness: every net returned truly flips the output when flipped
    (inside an FFR the path to the stem is unique, and stems are verified
    by simulation).  Completeness is the classic CPT limitation: a net
    sensitized only through *multiple simultaneously flipping branches* of
    a non-critical stem is missed.  :func:`flip_criticality` is the exact
    (and still cheap, bit-parallel) alternative and is what the diagnosis
    pipeline uses; ``cpt_trace`` is retained as the classical reference
    algorithm for the ablation study.
    """
    scalar = _scalar_values(base_values, pattern_index)
    critical: set[str] = set()
    stack = [output]
    checked_stems: dict[str, bool] = {}

    while stack:
        net = stack.pop()
        if net in critical:
            continue
        critical.add(net)
        gate = netlist.gates.get(net)
        if gate is None:
            continue
        for src in _critical_inputs(gate, scalar):
            if netlist.fanout_count(src) > 1:
                # Stem: exact single-pattern flip check (memoized per stem).
                if src not in checked_stems:
                    changed = resimulate_with_overrides(
                        netlist, scalar, {Site(src): scalar[src] ^ 1}, 1
                    )
                    checked_stems[src] = output in changed
                if checked_stems[src]:
                    stack.append(src)
            else:
                stack.append(src)
    return critical


def _critical_inputs(gate, scalar: Mapping[str, int]) -> list[str]:
    """Gate-local criticality: input *nets* whose single flip inverts the output.

    Exact by construction (re-evaluates the gate with the net inverted on
    every pin it drives, so duplicated inputs are handled correctly).
    """
    base_ins = [scalar[src] for src in gate.inputs]
    base_out = eval2(gate.kind, base_ins, 1)
    crit: list[str] = []
    for src in dict.fromkeys(gate.inputs):
        flipped = [
            value ^ 1 if name == src else value
            for name, value in zip(gate.inputs, base_ins)
        ]
        if eval2(gate.kind, flipped, 1) != base_out:
            crit.append(src)
    return crit
