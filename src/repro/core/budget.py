"""In-engine resource governance for anytime diagnosis.

The assumption-free methodology deliberately refuses to bound defect
multiplicity, so the candidate/cover search space can explode
combinatorially on unlucky injections.  Rather than dying at an external
wall-clock cliff (and throwing away all work done inside the trial), every
stage of the :class:`~repro.core.diagnose.Diagnoser` pipeline accepts a
:class:`Budget` and checks it at loop granularity: on exhaustion a stage
*returns what it has* and records a :class:`Truncation` (stage name, cause,
work done vs. ceiling) on the budget's trail instead of raising.  The
report then carries a ``completeness`` verdict (``exact`` / ``truncated``
/ ``deadline``) so downstream metrics can segment accuracy by how much of
the search actually ran.

A budget combines four independent resources:

- a **wall-clock deadline** (seconds from :meth:`Budget.start`),
- an **expansion-node ceiling** (joint simulations / cover checks spent,
  charged by the stages via :meth:`Budget.charge`),
- a **multiplet count ceiling** (bounds exhaustive cover enumeration),
- a cooperative :class:`CancellationToken` (external callers -- a serving
  layer, an interactive UI -- can stop a diagnosis mid-flight from another
  thread).

Every stage guarantees *progress*: at least one unit of work is processed
before the first budget check, so even a pathologically tight deadline
yields a non-empty (if coarse) diagnosis whenever one exists.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

#: Exhaustion causes, in the order they are checked.
CAUSE_CANCELLED = "cancelled"
CAUSE_DEADLINE = "deadline"
CAUSE_EXPANSIONS = "expansions"
CAUSE_MULTIPLETS = "multiplets"
#: A stage-internal check ceiling (``max_checks`` / ``max_combos``) ended an
#: enumeration before the budget proper did.
CAUSE_CHECKS = "checks"

#: Completeness verdicts carried by :class:`~repro.core.report.DiagnosisReport`.
COMPLETENESS_EXACT = "exact"
COMPLETENESS_TRUNCATED = "truncated"
COMPLETENESS_DEADLINE = "deadline"

#: Optimality statuses reported by the exact cover engines
#: (:mod:`repro.core.hitting` / :mod:`repro.core.clusterdiag`), orthogonal
#: to the completeness verdict: ``optimal`` means the returned cover
#: cardinality is provably minimum over the candidate space; ``bounded``
#: means a structural bound (pool cap, size cap, check ceiling, or
#: multi-cluster decomposition) limited the search without a minimality
#: proof; ``budget`` means the :class:`Budget` cut the search first.
OPTIMALITY_OPTIMAL = "optimal"
OPTIMALITY_BOUNDED = "bounded"
OPTIMALITY_BUDGET = "budget"


@dataclass(frozen=True)
class Truncation:
    """One stage's record of stopping early.

    ``stage`` names the pipeline stage (``backtrace``, ``pertest``,
    ``xcover``, ``cover``, ``refine``, ``scoring``); ``cause`` is the
    binding resource (``deadline``, ``expansions``, ``multiplets``,
    ``cancelled``); ``done`` / ``total`` quantify how far the stage got
    (``total`` is 0 when the stage's full extent is unknown, e.g. an
    open-ended enumeration).
    """

    stage: str
    cause: str
    done: int = 0
    total: int = 0

    def describe(self) -> str:
        extent = f"{self.done}/{self.total}" if self.total else str(self.done)
        return f"{self.stage} stopped by {self.cause} after {extent} units"

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "cause": self.cause,
            "done": self.done,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Truncation":
        return cls(
            stage=str(payload.get("stage", "")),
            cause=str(payload.get("cause", "")),
            done=int(payload.get("done", 0)),
            total=int(payload.get("total", 0)),
        )


class CancellationToken:
    """Thread-safe cooperative cancellation flag.

    Hand the same token to a running :class:`~repro.core.diagnose.Diagnoser`
    (via its :class:`Budget`) and to whoever may need to stop it; calling
    :meth:`cancel` makes the next budget check truncate every remaining
    stage, and the diagnosis returns its partial report.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()


class Budget:
    """Mutable resource budget threaded through the diagnosis pipeline.

    Stages call :meth:`stop` at the top of their work loops (after the
    first unit, preserving the progress guarantee): it returns ``None``
    while resources remain, or the binding cause string after recording a
    :class:`Truncation` on :attr:`truncations`.  Expansion-type work
    (joint simulations, cover combination checks) is metered with
    :meth:`charge`.

    ``clock`` is injectable for deterministic tests; production uses
    :func:`time.monotonic`.
    """

    def __init__(
        self,
        deadline_seconds: float | None = None,
        max_multiplets: int | None = None,
        max_expansions: int | None = None,
        token: CancellationToken | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.deadline_seconds = deadline_seconds
        self.max_multiplets = max_multiplets
        self.max_expansions = max_expansions
        self.token = token
        self._clock = clock
        self._deadline_at: float | None = None
        self.expansions = 0
        self.truncations: list[Truncation] = []
        if deadline_seconds is not None:
            self.start()

    def start(self) -> None:
        """(Re-)arm the wall-clock deadline relative to now."""
        if self.deadline_seconds is not None:
            self._deadline_at = self._clock() + self.deadline_seconds

    # -- resource accounting ---------------------------------------------------

    def charge(self, n: int = 1) -> None:
        """Meter ``n`` expansion nodes (joint simulations, cover checks)."""
        self.expansions += n

    @property
    def remaining_seconds(self) -> float | None:
        if self._deadline_at is None:
            return None
        return self._deadline_at - self._clock()

    def exceeded(self) -> str | None:
        """The binding exhaustion cause, or ``None`` while within budget."""
        if self.token is not None and self.token.cancelled:
            return CAUSE_CANCELLED
        if self._deadline_at is not None and self._clock() >= self._deadline_at:
            return CAUSE_DEADLINE
        if self.max_expansions is not None and self.expansions >= self.max_expansions:
            return CAUSE_EXPANSIONS
        return None

    def multiplets_exhausted(self, count: int) -> bool:
        """Has the enumeration already collected its multiplet ceiling?"""
        return self.max_multiplets is not None and count >= self.max_multiplets

    # -- truncation trail ------------------------------------------------------

    def stop(self, stage: str, done: int = 0, total: int = 0) -> str | None:
        """Check the budget; on exhaustion record a truncation for ``stage``.

        Returns the cause when the stage must stop, ``None`` otherwise.
        """
        cause = self.exceeded()
        if cause is not None:
            self.record(stage, cause, done, total)
        return cause

    def record(self, stage: str, cause: str, done: int = 0, total: int = 0) -> None:
        self.truncations.append(Truncation(stage, cause, done, total))

    @property
    def completeness(self) -> str:
        """The report-level verdict this budget's trail implies.

        ``deadline`` (wall-clock or cancellation cut the run short)
        dominates ``truncated`` (a count ceiling bounded the search);
        an empty trail means the full search ran: ``exact``.
        """
        if not self.truncations:
            return COMPLETENESS_EXACT
        if any(
            t.cause in (CAUSE_DEADLINE, CAUSE_CANCELLED) for t in self.truncations
        ):
            return COMPLETENESS_DEADLINE
        return COMPLETENESS_TRUNCATED

    def __repr__(self) -> str:
        return (
            f"Budget(deadline_seconds={self.deadline_seconds}, "
            f"max_multiplets={self.max_multiplets}, "
            f"max_expansions={self.max_expansions}, "
            f"expansions={self.expansions}, "
            f"truncations={len(self.truncations)})"
        )


# ---------------------------------------------------------------------------
# QoS classes (the serving layer's admission vocabulary)
# ---------------------------------------------------------------------------

#: Expansion ceiling a degraded request falls back to when its class sets
#: no ceiling of its own -- even "unbounded" batch work must terminate
#: while the daemon is shedding load.
DEGRADED_FALLBACK_EXPANSIONS = 250_000


@dataclass(frozen=True)
class QosClass:
    """One request class's resource envelope, in budget terms.

    The diagnosis daemon maps every submitted job onto a class; the class
    decides the :class:`Budget` the job runs under.  Under overload
    (``degraded=True``) every count ceiling is scaled by
    ``degraded_scale`` and ``degraded_deadline`` replaces the deadline, so
    a saturated daemon degrades to truncated-but-useful verdicts instead
    of queueing unbounded work.

    Count ceilings (expansions, multiplets) truncate deterministically --
    the same job re-executed after a crash reproduces the same report
    byte-for-byte -- while wall-clock deadlines do not; classes meant for
    durable, replayable work should govern by counts only.
    """

    name: str
    deadline_seconds: float | None = None
    max_expansions: int | None = None
    max_multiplets: int | None = None
    degraded_scale: float = 0.25
    degraded_deadline: float | None = None

    def budget(
        self,
        *,
        degraded: bool = False,
        token: CancellationToken | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> Budget | None:
        """A fresh budget for one request, or ``None`` when ungoverned.

        A ``token`` forces a budget even for an otherwise-ungoverned class
        so the request stays cancellable.
        """
        deadline = self.deadline_seconds
        expansions = self.max_expansions
        multiplets = self.max_multiplets
        if degraded:
            deadline = (
                self.degraded_deadline
                if self.degraded_deadline is not None
                else deadline
            )
            expansions = (
                max(1, int(expansions * self.degraded_scale))
                if expansions is not None
                else DEGRADED_FALLBACK_EXPANSIONS
            )
            if multiplets is not None:
                multiplets = max(1, int(multiplets * self.degraded_scale))
        if (
            deadline is None
            and expansions is None
            and multiplets is None
            and token is None
        ):
            return None
        return Budget(
            deadline_seconds=deadline,
            max_multiplets=multiplets,
            max_expansions=expansions,
            token=token,
            clock=clock,
        )


#: The daemon's built-in request classes.  ``interactive`` trades
#: byte-stability for latency (wall-clock deadline); ``standard`` governs
#: by deterministic count ceilings only, so its reports replay
#: byte-identically after crash recovery; ``batch`` runs ungoverned until
#: the daemon degrades it.
QOS_CLASSES: dict[str, QosClass] = {
    "interactive": QosClass(
        "interactive",
        deadline_seconds=5.0,
        max_expansions=200_000,
        max_multiplets=64,
        degraded_deadline=1.0,
    ),
    "standard": QosClass(
        "standard", max_expansions=2_000_000, max_multiplets=512
    ),
    "batch": QosClass("batch"),
}


def qos_class(name: str) -> QosClass:
    """Look up a QoS class by name; unknown names are a caller error."""
    try:
        return QOS_CLASSES[name]
    except KeyError:
        from repro.errors import ServeError

        raise ServeError(
            f"unknown QoS class {name!r}; known: {', '.join(sorted(QOS_CLASSES))}"
        ) from None
