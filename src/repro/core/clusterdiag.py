"""Hypergraph test-distance failure clustering for per-defect sub-diagnoses.

An et al.'s hypergraph clustering idea (arXiv:2104.10360): failing tests
caused by the *same* defect share candidate structure, so a distance
defined over shared hyperedge membership separates the failing-pattern set
into per-defect groups before any covering runs.  Here the hyperedges are
candidate sites: each failing pattern's **feature set** is the sites that
could explain it -- its exact singleton explainers when it has any, else
every candidate site inside the fan-in cone of its failing outputs (the
same sound conflict set the hitting-set engine prunes with).  The
test distance is the Jaccard distance between feature sets, and
single-linkage union-find merges patterns closer than ``link_threshold``
(the default merges on *any* shared feature site, which keeps a defect's
directly-explained and interaction-masked patterns in one group).

Each cluster then gets its own small implicit-hitting-set cover
(:func:`repro.core.hitting.hitting_set_cover` restricted to the cluster's
patterns), turning one large multiplet search into several small ones.
The per-cluster covers are joined, redundancy-minimized, and **jointly
verified** against the full failing set with the exact per-test criterion
-- clustering is a heuristic decomposition, so a join that fails joint
verification (cross-cluster interaction the decomposition missed) falls
back to one global hitting-set search seeded with the per-cluster sites.

Optimality of a clustered result is ``optimal`` only in the single-cluster
case (where the global engine ran unpartitioned); a multi-cluster join is
reported ``bounded`` -- per-cluster minimality does not compose into a
global minimality proof, because one site can serve two clusters or a
cross-cluster assignment can beat the join -- and ``budget`` when the
:class:`Budget` stopped any stage first.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.circuit.netlist import Site
from repro.core.budget import (
    OPTIMALITY_BOUNDED,
    OPTIMALITY_BUDGET,
    OPTIMALITY_OPTIMAL,
    Budget,
)
from repro.core.hitting import HittingSetResult, hitting_set_cover
from repro.core.pertest import PerTestAnalysis


@dataclass(frozen=True)
class ClusterDiagResult:
    """Outcome of clustered covering.

    ``clusters`` are the failing-pattern groups (original indices, sorted);
    ``covers`` the verified joined multiplets (best first); ``per_cluster``
    the underlying hitting-set results in cluster order.  ``fallback``
    flags that joint verification failed and a global search re-ran.
    """

    clusters: tuple[tuple[int, ...], ...]
    covers: tuple[tuple[Site, ...], ...]
    per_cluster: tuple[HittingSetResult, ...]
    optimality: str
    unexplained: frozenset[int]
    fallback: bool = False

    @property
    def complete(self) -> bool:
        return bool(self.covers) and not self.unexplained


def pattern_features(analysis: PerTestAnalysis, pattern_index: int) -> frozenset[Site]:
    """The hyperedges (candidate sites) a failing pattern belongs to."""
    singles = analysis.exact_singletons.get(pattern_index, ())
    if singles:
        return frozenset(singles)
    cone = analysis.netlist.fanin_cone(
        analysis.datalog.failing_outputs_of(pattern_index)
    )
    return frozenset(s for s in analysis.sites if s.net in cone)


def test_distance(a: frozenset[Site], b: frozenset[Site]) -> float:
    """Jaccard distance between two patterns' feature sets (0 = identical
    candidate structure, 1 = no shared candidate site)."""
    union = a | b
    if not union:
        return 0.0
    return 1.0 - len(a & b) / len(union)


def cluster_failing_patterns(
    analysis: PerTestAnalysis,
    failing: Iterable[int] | None = None,
    link_threshold: float = 1.0,
) -> list[tuple[int, ...]]:
    """Single-linkage clusters of the failing patterns under test distance.

    Patterns with distance strictly below ``link_threshold`` are merged;
    clusters are returned sorted by their smallest pattern index, members
    ascending -- fully deterministic for a given analysis.
    """
    idxs = sorted(
        set(analysis.datalog.failing_indices) if failing is None else set(failing)
    )
    feats = {idx: pattern_features(analysis, idx) for idx in idxs}
    parent = {idx: idx for idx in idxs}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, a in enumerate(idxs):
        for b in idxs[i + 1 :]:
            if find(a) != find(b) and test_distance(feats[a], feats[b]) < link_threshold:
                parent[find(b)] = find(a)

    groups: dict[int, list[int]] = {}
    for idx in idxs:
        groups.setdefault(find(idx), []).append(idx)
    return [tuple(sorted(g)) for g in sorted(groups.values(), key=lambda g: min(g))]


def _minimize_joined(
    analysis: PerTestAnalysis,
    sites: tuple[Site, ...],
    failing: set[int],
    budget: Budget | None,
) -> tuple[Site, ...]:
    """Drop join redundancy (a site serving two clusters) while the joined
    multiplet still explains every failing pattern."""
    result = list(sites)
    for site in list(sites):
        if len(result) <= 1:
            break
        trial = [s for s in result if s != site]
        if budget is not None:
            budget.charge()
        if failing <= analysis.explained_patterns(trial):
            result = trial
    return tuple(result)


def cluster_cover(
    analysis: PerTestAnalysis,
    seed_sites: tuple[Site, ...] = (),
    max_size: int = 6,
    link_threshold: float = 1.0,
    max_covers: int = 10,
    budget: Budget | None = None,
) -> ClusterDiagResult:
    """Clustered covering: per-group hitting sets + joint verification.

    ``max_size`` caps every multiplet (per-cluster and joined alike);
    ``max_covers`` caps how many verified joined alternatives are
    reported.  A :class:`Budget` flows into every per-cluster search and
    is charged for each joint verification.
    """
    failing = set(analysis.datalog.failing_indices)
    if not failing:
        return ClusterDiagResult((), (), (), OPTIMALITY_OPTIMAL, frozenset())

    clusters = cluster_failing_patterns(analysis, link_threshold=link_threshold)
    per: list[HittingSetResult] = []
    for cluster in clusters:
        per.append(
            hitting_set_cover(
                analysis,
                failing=cluster,
                seed_sites=seed_sites,
                max_size=max_size,
                budget=budget,
            )
        )

    if len(clusters) == 1:
        only = per[0]
        unexplained = frozenset()
        if only.covers:
            unexplained = frozenset(
                failing - analysis.explained_patterns(only.covers[0])
            )
        return ClusterDiagResult(
            clusters=tuple(clusters),
            covers=only.covers,
            per_cluster=tuple(per),
            optimality=only.optimality,
            unexplained=unexplained if only.covers else frozenset(failing),
        )

    def join(choice: tuple[int, ...]) -> tuple[Site, ...] | None:
        """Union of the chosen per-cluster covers, size-capped and
        join-minimized; ``None`` when oversize or joint verification
        fails."""
        sites: list[Site] = []
        for ci, alt in enumerate(choice):
            for site in per[ci].covers[alt]:
                if site not in sites:
                    sites.append(site)
        if len(sites) > max_size:
            return None
        if budget is not None:
            budget.charge()
        if not failing <= analysis.explained_patterns(sites):
            return None
        return _minimize_joined(analysis, tuple(sites), failing, budget)

    covers: list[tuple[Site, ...]] = []
    budget_cut = any(r.optimality == OPTIMALITY_BUDGET for r in per)
    if all(r.covers for r in per):
        primary = join(tuple(0 for _ in per))
        if primary is not None:
            covers.append(primary)
            # Alternatives: vary one cluster's cover at a time (the
            # resolution statistic without a cross-product explosion).
            for ci in range(len(per)):
                for alt in range(1, len(per[ci].covers)):
                    if len(covers) >= max_covers:
                        break
                    if budget is not None and budget.exceeded():
                        break
                    choice = tuple(alt if i == ci else 0 for i in range(len(per)))
                    joined = join(choice)
                    if joined is not None and joined not in covers:
                        covers.append(joined)

    if not covers:
        # Decomposition failed (an unsolved cluster, oversize join, or a
        # cross-cluster interaction the clustering missed): one global
        # search seeded with everything the clusters learned.
        seeds = tuple(
            dict.fromkeys(
                list(seed_sites)
                + [s for r in per for cover in r.covers for s in cover]
            )
        )
        fallback = hitting_set_cover(
            analysis, seed_sites=seeds, max_size=max_size, budget=budget
        )
        unexplained = frozenset(failing)
        if fallback.covers:
            unexplained = frozenset(
                failing - analysis.explained_patterns(fallback.covers[0])
            )
        return ClusterDiagResult(
            clusters=tuple(clusters),
            covers=fallback.covers,
            per_cluster=tuple(per),
            optimality=fallback.optimality,
            unexplained=unexplained,
            fallback=True,
        )

    return ClusterDiagResult(
        clusters=tuple(clusters),
        covers=tuple(covers),
        per_cluster=tuple(per),
        optimality=OPTIMALITY_BUDGET if budget_cut else OPTIMALITY_BOUNDED,
        unexplained=frozenset(),
    )
