"""Multiplet covering: choosing site sets that explain every failure.

Finding a minimum set of sites whose joint X reach covers all observed
fail atoms is a set-cover instance, NP-hard in general.  The production
path is a context-aware greedy: the marginal gain of a site is evaluated
*jointly with the already chosen sites*, which is essential because X
reach is super-additive under masking (two interacting defects can each
have zero individual reach on an atom that their combination covers).
When the greedy stalls with uncovered atoms, a bounded *pair rescue*
searches two-site combinations -- the smallest units able to break a
masking deadlock.  The final solution is pruned to (inclusion-)minimality,
which the monotonicity of joint X reach makes sound.

For small instances :func:`enumerate_min_covers` exhaustively finds all
minimum-cardinality covers; it is the optimality reference of ablation B
and the resolution statistic of the small-circuit experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.circuit.netlist import Site
from repro.core.budget import CAUSE_CHECKS, Budget
from repro.core.pertest import PerTestAnalysis, pair_search
from repro.core.xcover import Atom, XCoverAnalysis


@dataclass(frozen=True)
class CoverSolution:
    """Outcome of the covering stage."""

    sites: tuple[Site, ...]
    covered: frozenset[Atom]
    uncovered: frozenset[Atom]
    joint_evaluations: int = 0  #: number of joint X simulations spent

    @property
    def complete(self) -> bool:
        return not self.uncovered


def greedy_cover(
    xc: XCoverAnalysis,
    max_size: int = 6,
    top_k: int = 24,
    rescue_pairs: bool = True,
    rescue_pair_cap: int = 400,
    budget: Budget | None = None,
) -> CoverSolution:
    """Context-aware greedy joint cover of all observed fail atoms.

    Under a ``budget`` every joint X simulation charges one expansion and
    the growth loop is checked per pick (after the first, so a failing
    device always gets at least one explaining site when one exists); on
    exhaustion the sites chosen so far are minimized and returned with a
    ``cover`` truncation recorded.
    """
    atoms = xc.atoms
    chosen: list[Site] = []
    covered: frozenset[Atom] = frozenset()
    evaluations = 0

    while covered != atoms and len(chosen) < max_size:
        if (
            budget is not None
            and chosen
            and budget.stop("cover", len(chosen), max_size)
        ):
            break
        uncovered = atoms - covered
        # Cheap ranking by context-free individual reach on uncovered atoms.
        ranked = sorted(
            (s for s in xc.sites if s not in chosen),
            key=lambda s: len(xc.atoms_of(s) & uncovered),
            reverse=True,
        )
        best_site: Site | None = None
        best_cov: frozenset[Atom] = covered
        if not chosen:
            # First pick: individual reach is exact; no joint sims needed.
            if ranked and xc.atoms_of(ranked[0]) & uncovered:
                best_site = ranked[0]
                best_cov = covered | xc.atoms_of(ranked[0])
        else:
            for site in ranked[:top_k]:
                joint = xc.joint_covered_atoms([*chosen, site])
                evaluations += 1
                if budget is not None:
                    budget.charge()
                if len(joint) > len(best_cov):
                    best_site, best_cov = site, joint
                if best_cov == atoms:
                    break
                if budget is not None and budget.exceeded():
                    break
        if best_site is not None and len(best_cov) > len(covered):
            chosen.append(best_site)
            covered = best_cov
            continue

        # Greedy stalled: masking deadlock or genuinely unexplainable residue.
        if rescue_pairs and len(chosen) + 2 <= max_size:
            pair, pair_cov, spent = _pair_rescue(
                xc, chosen, covered, uncovered, rescue_pair_cap, budget
            )
            evaluations += spent
            if pair is not None:
                chosen.extend(pair)
                covered = pair_cov
                continue
        break

    chosen = _minimize(xc, chosen, covered)
    if chosen:
        covered = xc.joint_covered_atoms(chosen)
        evaluations += 1
        if budget is not None:
            budget.charge()
    else:
        covered = frozenset()
    return CoverSolution(
        sites=tuple(chosen),
        covered=covered,
        uncovered=atoms - covered,
        joint_evaluations=evaluations,
    )


def _pair_rescue(
    xc: XCoverAnalysis,
    chosen: list[Site],
    covered: frozenset[Atom],
    uncovered: frozenset[Atom],
    cap: int,
    budget: Budget | None = None,
) -> tuple[tuple[Site, Site] | None, frozenset[Atom], int]:
    """Search site pairs that jointly unlock masked uncovered atoms."""
    # Restrict to sites structurally upstream of some uncovered output.
    outputs = {out for _idx, out in uncovered}
    cone = xc.netlist.fanin_cone(outputs)
    pool = [s for s in xc.sites if s not in chosen and s.net in cone]
    # Prefer sites structurally close to the uncovered outputs.
    pool.sort(key=lambda s: -xc.netlist.level(s.net))
    spent = 0
    best: tuple[Site, Site] | None = None
    best_cov = covered
    for a, b in combinations(pool, 2):
        if spent >= cap:
            break
        if budget is not None:
            if spent and budget.exceeded():
                break
            budget.charge()
        joint = xc.joint_covered_atoms([*chosen, a, b])
        spent += 1
        if len(joint) > len(best_cov):
            best, best_cov = (a, b), joint
            if best_cov == xc.atoms:
                break
    return best, best_cov, spent


def _minimize(
    xc: XCoverAnalysis, sites: list[Site], covered: frozenset[Atom]
) -> list[Site]:
    """Drop redundant sites while preserving joint coverage (sound by
    monotonicity of joint X reach)."""
    result = list(sites)
    for site in list(sites):
        if len(result) <= 1:
            break
        trial = [s for s in result if s != site]
        if xc.joint_covered_atoms(trial) >= covered:
            result = trial
    return result


def enumerate_min_covers(
    xc: XCoverAnalysis,
    max_candidates: int = 18,
    max_size: int = 4,
    max_checks: int = 20000,
    budget: Budget | None = None,
) -> list[tuple[Site, ...]]:
    """All minimum-cardinality covers over the most promising candidates.

    Candidates are the ``max_candidates`` sites with the largest individual
    reach (plus every site needed by some atom only they can touch).  Sizes
    are explored in increasing order; the first size with a complete cover
    wins and *all* covers of that size are returned (the diagnosis
    resolution statistic).  Returns an empty list when the check budget is
    exhausted without a complete cover.

    A :class:`Budget` bounds the enumeration on top of ``max_checks``:
    every combination charges one expansion, deadline/expansion exhaustion
    ends the sweep with the covers found so far, and the multiplet ceiling
    caps how many tying covers are collected (both recorded as ``cover``
    truncations).
    """
    atoms = xc.atoms
    if not atoms:
        return []
    pool = sorted(
        (s for s in xc.sites if xc.atoms_of(s)),
        key=lambda s: len(xc.atoms_of(s)),
        reverse=True,
    )[:max_candidates]
    checks = 0
    for size in range(1, max_size + 1):
        solutions: list[tuple[Site, ...]] = []
        for combo in combinations(pool, size):
            checks += 1
            if checks > max_checks:
                if budget is not None:
                    budget.record("cover", CAUSE_CHECKS, max_checks, max_checks)
                return solutions
            if budget is not None:
                if checks > 1 and budget.stop("cover", checks - 1, max_checks):
                    return solutions
                if budget.multiplets_exhausted(len(solutions)):
                    budget.record(
                        "cover",
                        "multiplets",
                        len(solutions),
                        budget.max_multiplets or 0,
                    )
                    return solutions
                budget.charge()
            union = frozenset().union(*(xc.atoms_of(s) for s in combo))
            if union != atoms and size == 1:
                continue
            if union == atoms or xc.joint_covered_atoms(combo) == atoms:
                solutions.append(tuple(combo))
        if solutions:
            return solutions
    return []


# ---------------------------------------------------------------------------
# Exact per-test covering (the production engine)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PerTestCoverSolution:
    """Outcome of the per-test covering stage: patterns are the atoms."""

    sites: tuple[Site, ...]
    explained: frozenset[int]
    unexplained: frozenset[int]
    #: sites appearing in *any* exact pair explanation found during the
    #: masking-rescue phase -- alternative locations that the enumeration
    #: stage must consider to report a faithful resolution.
    pair_candidates: tuple[Site, ...] = ()

    @property
    def complete(self) -> bool:
        return not self.unexplained


def greedy_pertest_cover(
    analysis: PerTestAnalysis,
    max_size: int = 6,
    pair_cap: int = 300,
    budget: Budget | None = None,
) -> PerTestCoverSolution:
    """Greedy multiplet construction under the exact per-test criterion.

    Phase 1 covers failing patterns with exact singleton explanations
    (classic weighted set cover).  Phase 2 handles the interacting-defect
    residue: patterns no single site can explain get a bounded joint-flip
    pair search, preferring pairs that reuse already chosen sites.  The
    result is pruned to inclusion-minimality, which is sound because
    subset-explainability is monotone in the multiplet.

    Under a ``budget`` both phases are checked per pick/pattern (after the
    first singleton pick, preserving the progress guarantee); exhaustion
    returns the minimized partial multiplet with a ``cover`` truncation
    recorded, leaving the unexplained residue honestly reported.
    """
    failing = set(analysis.datalog.failing_indices)
    chosen: list[Site] = []
    explained: set[int] = set()
    exhausted = False

    # Phase 1: singleton exact matches.
    while explained != failing and len(chosen) < max_size:
        if (
            budget is not None
            and chosen
            and budget.stop("cover", len(chosen), max_size)
        ):
            exhausted = True
            break
        gains: dict[Site, int] = {}
        for idx in failing - explained:
            for site in analysis.exact_singletons.get(idx, ()):
                if site not in chosen:
                    gains[site] = gains.get(site, 0) + 1
        if not gains:
            break
        best = min(gains, key=lambda s: (-gains[s], str(s)))
        chosen.append(best)
        if budget is not None:
            budget.charge()
        explained = analysis.explained_patterns(chosen)

    # Phase 2: masking / joint-sensitization pairs for the residue.
    pair_candidates: list[Site] = []
    for nth, idx in enumerate(sorted(failing - explained)):
        if exhausted or len(chosen) >= max_size:
            break
        if (
            budget is not None
            and (chosen or nth)
            and budget.stop("cover", len(chosen), max_size)
        ):
            break
        if idx in explained:
            continue
        pairs = pair_search(analysis, idx, cap=pair_cap, budget=budget)
        if not pairs:
            continue
        for pair in pairs:
            for site in pair:
                if site not in pair_candidates:
                    pair_candidates.append(site)
        # Prefer pairs reusing already chosen sites (smaller multiplet).
        pairs.sort(
            key=lambda p: (sum(1 for s in p if s not in chosen), str(p[0]), str(p[1]))
        )
        # Only take a pair that fits under the size cap: with one slot left
        # a pair of two new sites would overshoot max_size, so fall back to
        # a pair reusing a chosen site (one new site) or skip the pattern.
        room = max_size - len(chosen)
        fitting = next(
            (p for p in pairs if sum(1 for s in p if s not in chosen) <= room),
            None,
        )
        if fitting is None:
            continue
        for site in fitting:
            if site not in chosen:
                chosen.append(site)
        explained = analysis.explained_patterns(chosen)

    # Minimization.
    for site in list(chosen):
        if len(chosen) <= 1:
            break
        trial = [s for s in chosen if s != site]
        if analysis.explained_patterns(trial) >= explained:
            chosen = trial
    explained = analysis.explained_patterns(chosen) if chosen else set()

    return PerTestCoverSolution(
        sites=tuple(chosen),
        explained=frozenset(explained),
        unexplained=frozenset(failing - explained),
        pair_candidates=tuple(pair_candidates),
    )


def enumerate_pertest_min_covers(
    analysis: PerTestAnalysis,
    seed_sites: tuple[Site, ...] = (),
    max_candidates: int = 18,
    max_size: int = 3,
    max_checks: int = 4000,
    budget: Budget | None = None,
) -> list[tuple[Site, ...]]:
    """All minimum-cardinality per-test covers over a bounded pool.

    The pool unions the greedy solution (``seed_sites``), every exact
    singleton explainer, and the sites with the largest partial evidence;
    combinations are verified with the exact subset-flip criterion (joint
    diffs are cached inside the analysis, so repeated subsets are free).
    Only complete covers are returned; the first cardinality with any
    complete cover defines the minimum.

    A :class:`Budget` bounds the enumeration on top of ``max_checks``:
    every combination charges one expansion, deadline/expansion exhaustion
    ends the sweep with the covers found so far, and the multiplet ceiling
    caps how many tying covers are collected (recorded as ``cover``
    truncations).
    """
    failing = set(analysis.datalog.failing_indices)
    if not failing:
        return []
    # Pool priority: greedy solution, then singleton explainers by frequency,
    # then the remaining seeds (pair-rescue participants), then best partials.
    pool: list[Site] = list(seed_sites[: max(1, max_candidates // 3)])
    singleton_sites: dict[Site, int] = {}
    for sites in analysis.exact_singletons.values():
        for site in sites:
            singleton_sites[site] = singleton_sites.get(site, 0) + 1
    for site in sorted(singleton_sites, key=lambda s: (-singleton_sites[s], str(s))):
        if site not in pool:
            pool.append(site)
    for site in seed_sites:
        if site not in pool:
            pool.append(site)
    if len(pool) < max_candidates:
        by_partial = sorted(
            (s for s in analysis.sites if s not in pool),
            key=lambda s: (-len(analysis.atoms_of(s)), str(s)),
        )
        pool.extend(by_partial[: max_candidates - len(pool)])
    pool = pool[:max_candidates]

    checks = 0
    for size in range(1, max_size + 1):
        solutions: list[tuple[Site, ...]] = []
        for combo in combinations(pool, size):
            checks += 1
            if checks > max_checks:
                if budget is not None:
                    budget.record("cover", CAUSE_CHECKS, max_checks, max_checks)
                return solutions
            if budget is not None:
                if checks > 1 and budget.stop("cover", checks - 1, max_checks):
                    return solutions
                if budget.multiplets_exhausted(len(solutions)):
                    budget.record(
                        "cover",
                        "multiplets",
                        len(solutions),
                        budget.max_multiplets or 0,
                    )
                    return solutions
                budget.charge()
            if analysis.explained_patterns(combo) == failing:
                solutions.append(tuple(combo))
        if solutions:
            return solutions
    return []
