"""Timing-aware localization of small-delay defects.

A small-delay defect corrupts *captures*: the stale values appear at the
outputs whose sensitized path through the slow net, plus the extra delay,
exceeds the clock period.  Gate-level (untimed) diagnosis therefore
explains the datalog at the capture side; this module is the post-pass
that projects the blame back onto candidate slow nets, in the spirit of
classic delay-fault diagnosis:

1. **Structural + functional screen** -- per failing pattern, the slow
   net must reach every failing output of that pattern, must itself
   *switch* between launch and capture (no transition, no delay effect),
   and -- the sharp test -- the stale value it would hold at capture must
   actually flip every failing output: the net must be *critical* for
   them under that pattern (checked by exact flip resimulation, which is
   the same primitive the main diagnosis uses).
2. **Delta interval analysis** -- with unit-delay path bounds, a failing
   capture (t, o) implies ``delta > period - L(s -> o)`` where ``L`` is
   the longest structural path from the net through ``o``.  Intersecting
   over all failing atoms yields each candidate's minimal consistent
   extra delay; candidates whose bound is absurd (the defect would have
   had to violate passing long captures everywhere) rank low.
3. **Ranking** -- candidates are scored by how many failing patterns they
   can explain, then by the tightness of the delta estimate.

Static path lengths over-approximate the sensitized path, so the interval
is a bound, not an exact measurement; the test suite checks that the true
site ranks at the top and its delta estimate brackets the injected value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.netlist import Netlist, Site
from repro.core.backtrace import flip_criticality
from repro.errors import DiagnosisError
from repro.sim.logicsim import simulate
from repro.sim.patterns import PatternSet
from repro.sim.timing import arrival_times
from repro.tester.datalog import Datalog


@dataclass(frozen=True)
class DelayCandidate:
    """One suspected slow net."""

    net: str
    explained_patterns: int
    delta_min: float  #: smallest extra delay consistent with the failures
    slack_margin: float  #: how far below the period its healthy path sits

    @property
    def rank_key(self) -> tuple:
        return (-self.explained_patterns, self.delta_min, self.net)


def _longest_paths_to(netlist: Netlist, output: str, gate_delay: float) -> dict[str, float]:
    """Longest structural path length from every net to one output."""
    dist: dict[str, float] = {net: float("-inf") for net in netlist.nets()}
    dist[output] = 0.0
    for net in reversed(netlist.topo_order):
        if dist[net] == float("-inf"):
            continue
        gate = netlist.gates[net]
        for src in gate.inputs:
            dist[src] = max(dist[src], dist[net] + gate_delay)
    return dist


def diagnose_small_delay(
    netlist: Netlist,
    patterns: PatternSet,
    datalog: Datalog,
    period: float,
    gate_delay: float = 1.0,
    top_k: int = 10,
) -> list[DelayCandidate]:
    """Rank candidate slow nets for a timing-failure datalog.

    Assumes a single small-delay defect (the standard first hypothesis
    for a timing-only failure signature).
    """
    if datalog.n_patterns != patterns.n:
        raise DiagnosisError("datalog/test set pattern count mismatch")
    failing = [idx for idx in datalog.failing_indices if idx > 0]
    if not failing:
        return []
    base = simulate(netlist, patterns)
    arrival = arrival_times(netlist, gate_delay)

    # Longest-path tables for every output that ever fails.
    failing_outputs = sorted(
        {out for idx in failing for out in datalog.failing_outputs_of(idx)}
    )
    paths = {
        out: _longest_paths_to(netlist, out, gate_delay) for out in failing_outputs
    }

    # Structural + functional screen: nets reaching all failing outputs of a
    # pattern, switching there, and critical for every failing output (the
    # stale value must actually flip the captures that failed).
    criticality_cache: dict[str, dict[str, int]] = {}

    def critical_for(net: str, idx: int, outs) -> bool:
        crit = criticality_cache.get(net)
        if crit is None:
            crit = flip_criticality(netlist, patterns, Site(net), base)
            criticality_cache[net] = crit
        return all((crit.get(out, 0) >> idx) & 1 for out in outs)

    stats: dict[str, list[float]] = {}
    explained: dict[str, int] = {}
    for idx in failing:
        outs = datalog.failing_outputs_of(idx)
        for net in netlist.nets():
            if any(paths[out][net] == float("-inf") for out in outs):
                continue
            prev = (base[net] >> (idx - 1)) & 1
            now = (base[net] >> idx) & 1
            if prev == now:
                continue
            if not critical_for(net, idx, outs):
                continue
            explained[net] = explained.get(net, 0) + 1
            # delta must push the slowest failing capture past the period.
            bound = min(
                period - (arrival[net] + paths[out][net]) for out in outs
            )
            stats.setdefault(net, []).append(bound)

    candidates = []
    for net, bounds in stats.items():
        if explained[net] != len(failing):
            continue  # single-defect: must participate in every failure
        delta_min = max(bounds)
        candidates.append(
            DelayCandidate(
                net=net,
                explained_patterns=explained[net],
                delta_min=max(delta_min, 0.0),
                slack_margin=min(bounds),
            )
        )
    if not candidates:
        # Relax the all-patterns requirement (imperfect evidence).
        for net, bounds in stats.items():
            candidates.append(
                DelayCandidate(
                    net=net,
                    explained_patterns=explained[net],
                    delta_min=max(max(bounds), 0.0),
                    slack_margin=min(bounds),
                )
            )
    candidates.sort(key=lambda c: c.rank_key)
    return candidates[:top_k]
