"""The assumption-free multiple defect diagnosis pipeline.

:class:`Diagnoser` wires the stages together:

1. structural candidate envelope (:mod:`repro.core.backtrace`),
2. exact per-test single-flip analysis (:mod:`repro.core.pertest`) --
   under *any* defect mechanism a site per pattern is either correct or
   flipped, so subset-flip matching is an exact, fault-model-free
   explanation criterion,
3. multiplet covering over failing patterns, with a bounded joint-flip
   pair search for the interacting-defect residue
   (:mod:`repro.core.cover`),
4. enumeration of all minimum covers (the resolution of the diagnosis),
5. fault-model allocation and vindication (:mod:`repro.core.refine`),
6. ranking and report assembly (:mod:`repro.core.report`).

No stage assumes anything about failing patterns: a pattern may be failed
by one defect, by several interacting defects, or by behavior matching no
classical fault model.  The X-injection envelope
(:mod:`repro.core.xcover`) -- the sound over-approximation of the same
criterion -- is available as an alternative engine
(``DiagnosisConfig(engine="xcover")``) and is what ablation A compares
against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.netlist import Netlist, Site
from repro.core.backtrace import candidate_sites
from repro.core.budget import Budget
from repro.core.clusterdiag import cluster_cover
from repro.core.cover import (
    enumerate_min_covers,
    enumerate_pertest_min_covers,
    greedy_cover,
    greedy_pertest_cover,
)
from repro.core.hitting import hitting_set_cover
from repro.core.oracle import concrete_defects, validate_report
from repro.core.pertest import PerTestAnalysis, build_pertest
from repro.core.refine import RefineConfig, allocate_hypotheses, arbitrary_hypothesis
from repro.core.report import Candidate, DiagnosisReport, Hypothesis, Multiplet
from repro.core.scoring import multiplet_iou
from repro.core.xcover import build_xcover
from repro.errors import DiagnosisError
from repro.obs.metrics import record_diagnosis, record_sim_delta, record_truncations
from repro.obs.trace import NULL_TRACER, Tracer, install_tracer, uninstall_tracer
from repro.sim.cache import sim_context
from repro.sim.compile import COUNTERS
from repro.sim.patterns import PatternSet
from repro.tester.datalog import Datalog

METHOD_NAME = "xcover"  #: campaign/report tag of the proposed method


@dataclass(frozen=True)
class DiagnosisConfig:
    """Tuning knobs of the proposed diagnosis (defaults fit the paper scope)."""

    engine: str = "pertest"  #: "pertest" (exact) or "xcover" (envelope-only)
    #: Multiplet search engine of the pertest pipeline:
    #:
    #: - ``"greedy"`` (default) -- greedy cover + bounded reference
    #:   enumeration, the historical behavior (reports byte-identical),
    #: - ``"exact"`` -- implicit-hitting-set search
    #:   (:mod:`repro.core.hitting`): provably minimum-cardinality covers
    #:   with an ``optimality`` status on the report,
    #: - ``"clustered"`` -- hypergraph test-distance failure clustering
    #:   (:mod:`repro.core.clusterdiag`): per-defect-group hitting-set
    #:   covers joined under a joint verification pass.
    #:
    #: The greedy solution always runs first as the anytime incumbent and
    #: fallback; ``"exact"``/``"clustered"`` refine it.
    cover_engine: str = "greedy"
    include_branches: bool = True
    max_multiplet_size: int = 6
    pair_cap: int = 300
    enumerate_exact: bool = True
    exact_max_candidates: int = 18
    exact_max_size: int = 3
    max_reported_multiplets: int = 10
    #: Per failing pattern, how many exact singleton explainers join the
    #: candidate list even when outside every minimum cover (0 disables).
    #: This is the per-test reporting of the method: each failing pattern
    #: names its own suspects, and the union is the resolution.
    per_pattern_candidates: int = 6
    #: Drop per-pattern extras for which no concrete fault model survives
    #: vindication (arbitrary-only coincidental equivalents).  Multiplet
    #: members are never dropped, so model-free (byzantine) defects located
    #: by the covering stage stay reported.
    drop_unmodeled_extras: bool = True
    greedy_top_k: int = 24  #: xcover engine only
    rescue_pair_cap: int = 400  #: xcover engine only
    refine: RefineConfig = field(default_factory=RefineConfig)
    #: Anytime resource governance (see :mod:`repro.core.budget`): a
    #: wall-clock deadline in seconds, a ceiling on enumerated multiplet
    #: covers, and a ceiling on expansion nodes (joint simulations / cover
    #: checks).  ``None`` everywhere (the default) runs ungoverned and
    #: byte-identical to the historical pipeline; any limit set makes the
    #: report carry a ``completeness`` verdict and a truncation trail.
    deadline_seconds: float | None = None
    max_multiplets: int | None = None
    max_expansions: int | None = None
    #: Run the post-diagnosis validation oracle (:mod:`repro.core.oracle`)
    #: even when no raw log is supplied -- the sanitized datalog then
    #: stands in as the evidence.  Off by default: an unvalidated report
    #: serializes byte-identically to the historical format.
    validate: bool = False

    def make_budget(self) -> Budget | None:
        """A fresh :class:`Budget` for one run, or None when ungoverned."""
        if (
            self.deadline_seconds is None
            and self.max_multiplets is None
            and self.max_expansions is None
        ):
            return None
        return Budget(
            deadline_seconds=self.deadline_seconds,
            max_multiplets=self.max_multiplets,
            max_expansions=self.max_expansions,
        )


class Diagnoser:
    """Reusable diagnosis engine bound to one netlist."""

    def __init__(self, netlist: Netlist, config: DiagnosisConfig | None = None):
        self.netlist = netlist
        self.config = config or DiagnosisConfig()
        if self.config.engine not in ("pertest", "xcover"):
            raise DiagnosisError(f"unknown engine {self.config.engine!r}")
        if self.config.cover_engine not in ("greedy", "exact", "clustered"):
            raise DiagnosisError(
                f"unknown cover engine {self.config.cover_engine!r}"
            )
        if self.config.engine == "xcover" and self.config.cover_engine != "greedy":
            raise DiagnosisError(
                "cover_engine applies to the pertest engine only; "
                "the xcover envelope has no exact per-test verifier"
            )

    def diagnose(
        self,
        patterns: PatternSet,
        datalog: Datalog,
        budget: Budget | None = None,
        raw=None,
        tracer: Tracer | None = None,
    ) -> DiagnosisReport:
        """Run the full pipeline against one device's datalog.

        ``budget`` overrides the budget the config would build (pass one
        holding a :class:`~repro.core.budget.CancellationToken` to make the
        run externally cancellable); with neither, the pipeline runs
        ungoverned and the report is identical to the historical output.
        On exhaustion the report carries whatever every stage produced so
        far, ``completeness != "exact"``, and the truncation trail.

        ``raw`` (a :class:`~repro.tester.noise.RawLog`) switches on the
        post-diagnosis validation oracle against that pre-sanitized
        evidence; ``DiagnosisConfig(validate=True)`` switches it on
        against ``datalog`` itself.  With neither, the report is the
        historical, oracle-free output.

        ``tracer`` (a :class:`~repro.obs.trace.Tracer`) switches on stage
        tracing: the run's span tree lands in ``report.stats["trace"]``
        and the tracer is installed as the process's active tracer for the
        duration, so deep events (kernel compiles, context cache activity)
        nest under the pipeline stages.  Tracing never changes the
        diagnosis: outside ``stats``, a traced report is byte-identical to
        an untraced one.
        """
        cfg = self.config
        if datalog.n_patterns != patterns.n:
            raise DiagnosisError(
                f"datalog covers {datalog.n_patterns} patterns, "
                f"test set has {patterns.n}"
            )
        if budget is None:
            budget = cfg.make_budget()
        tracing = tracer is not None
        # Stage timing always runs through a tracer clock (injectable for
        # tests); an untraced run uses a private throwaway tracer that is
        # never installed and never serialized.
        t = tracer if tracer is not None else Tracer()
        if tracing:
            install_tracer(t)
        try:
            report = self._diagnose(patterns, datalog, budget, raw, t)
        finally:
            if tracing:
                uninstall_tracer(t)
        if tracing:
            # Excluded from determinism exactly like ``seconds*``/``sim_*``:
            # the tree is timing data, present only when tracing was asked.
            report.stats["trace"] = t.to_dicts()
        return report

    def _diagnose(
        self,
        patterns: PatternSet,
        datalog: Datalog,
        budget: Budget | None,
        raw,
        t: Tracer,
    ) -> DiagnosisReport:
        cfg = self.config
        if datalog.is_passing_device:
            report = DiagnosisReport(
                method=METHOD_NAME,
                circuit=self.netlist.name,
                stats={"seconds": 0.0, "n_failing_patterns": 0},
            )
            if raw is not None or cfg.validate:
                report = validate_report(
                    self.netlist,
                    patterns,
                    report,
                    raw if raw is not None else datalog,
                )
            record_diagnosis(METHOD_NAME, 0.0, report.completeness)
            return report

        counters_before = COUNTERS.snapshot()
        with t.span("diagnose", circuit=self.netlist.name, engine=cfg.engine) as root:
            # The shared simulation context: the fault-free base plus the
            # flip/resim/X-reach memos every downstream stage draws from,
            # reused across runs (campaign trials) on the same circuit and
            # test set.
            with t.span("context"):
                base_values = sim_context(self.netlist, patterns).base
            with t.span("backtrace") as sp_backtrace:
                if cfg.engine == "pertest":
                    sites = candidate_sites(
                        self.netlist, datalog, cfg.include_branches, budget=budget
                    )
                else:
                    sites = candidate_sites(
                        self.netlist, datalog, cfg.include_branches
                    )
            started = root.start
            t_sim = sp_backtrace.end

            if cfg.engine == "pertest":
                (
                    evidence,
                    multiplet_sets,
                    uncovered,
                    extras,
                    stage_stats,
                    optimality,
                ) = self._run_pertest(
                    patterns, datalog, sites, base_values, budget, t
                )
            else:
                evidence, multiplet_sets, uncovered, stage_stats = self._run_xcover(
                    patterns, datalog, base_values, budget, t
                )
                extras = ()
                optimality = None
            t_cover = t.now()

            # Candidates = union over every surviving minimum cover (that
            # union is the diagnosis resolution) plus the per-pattern exact
            # explainers; the reported multiplet list is capped.
            with t.span("refine"):
                all_sites: list[Site] = []
                for group in list(multiplet_sets) + [extras]:
                    for site in group:
                        if site not in all_sites:
                            all_sites.append(site)
                reported_sets = multiplet_sets[: cfg.max_reported_multiplets]

                core_sites = {site for group in multiplet_sets for site in group}
                candidates = []
                refined_out = False
                for done, site in enumerate(all_sites):
                    if (
                        not refined_out
                        and budget is not None
                        and done
                        and budget.stop("refine", done, len(all_sites))
                    ):
                        refined_out = True
                    if refined_out:
                        # Out of budget: keep the site located but model-free.
                        # The arbitrary hypothesis is honest here -- no model
                        # was tried, so none can be claimed and none can be
                        # used to drop it.
                        candidates.append(
                            Candidate(
                                site=site,
                                hypotheses=(arbitrary_hypothesis(site, evidence),),
                                explained_atoms=len(evidence.atoms_of(site)),
                            )
                        )
                        continue
                    hypotheses = allocate_hypotheses(
                        self.netlist,
                        patterns,
                        datalog,
                        site,
                        base_values,
                        evidence,
                        cfg.refine,
                        budget=budget,
                    )
                    if (
                        cfg.drop_unmodeled_extras
                        and site not in core_sites
                        and all(h.kind == "arbitrary" for h in hypotheses)
                        and not (budget is not None and budget.exceeded())
                    ):
                        # A per-pattern extra that no concrete model survives
                        # for is a coincidental equivalent; passing-pattern
                        # evidence has already vindicated every mechanism it
                        # could have had.  (A site whose refinement was cut
                        # short by the budget is kept: absence of a surviving
                        # model means nothing if the models were never fully
                        # tried.)
                        continue
                    candidates.append(
                        Candidate(
                            site=site,
                            hypotheses=hypotheses,
                            explained_atoms=len(evidence.atoms_of(site)),
                        )
                    )
                # Rank: sites a concrete fault model survives for come first
                # (a site only explainable as "arbitrary" is usually a
                # coincidental equivalent), then by explained evidence and
                # match quality.
                candidates.sort(
                    key=lambda c: (
                        c.best_kind == "arbitrary",
                        -c.explained_atoms,
                        tuple(
                            -x for x in (c.best.score if c.best else (0.0, 0.0, 0))
                        ),
                        str(c.site),
                    )
                )
                hypothesis_by_site = {c.site: c.hypotheses for c in candidates}
            t_refine = t.now()

            with t.span("scoring"):
                multiplets = []
                scored_out = False
                for done, group in enumerate(reported_sets):
                    if (
                        not scored_out
                        and budget is not None
                        and done
                        and budget.stop("scoring", done, len(reported_sets))
                    ):
                        scored_out = True
                    multiplets.append(
                        self._assemble_multiplet(
                            evidence,
                            group,
                            hypothesis_by_site,
                            patterns,
                            base_values,
                            skip_iou=scored_out,
                        )
                    )
                multiplets.sort(key=lambda m: m.rank_key)
            finished = t.now()

            stats = {
                "seconds": finished - started,
                "seconds_analysis": t_sim - started,
                "seconds_cover": t_cover - t_sim,
                "seconds_refine": t_refine - t_cover,
                "n_failing_patterns": float(len(datalog.failing_indices)),
                "n_fail_atoms": float(datalog.n_fail_atoms),
                "n_candidate_space": float(len(sites)),
                "n_min_covers": float(len(multiplet_sets)),
                **stage_stats,
            }
            # Simulation effort for this run.  Counters increment at the
            # dispatcher level, before the backend split, so these are
            # byte-identical between REPRO_SIM=interp and the compiled
            # default; cache hit counts do depend on registry warmth (a
            # second run on the same circuit and test set starts with the
            # memos filled).
            counters = COUNTERS.delta(counters_before)
            stats["sim_gate_evals"] = float(counters["gate_evals"])
            stats["sim_full_passes"] = float(
                counters["full_passes"] + counters["full3_passes"]
            )
            stats["sim_cone_passes"] = float(
                counters["cone_passes"] + counters["cone3_passes"]
            )
            stats["sim_cache_hits"] = float(
                counters["flip_hits"]
                + counters["resim_hits"]
                + counters["xreach_hits"]
                + counters["context_hits"]
            )
            stats["sim_cache_misses"] = float(
                counters["flip_misses"]
                + counters["resim_misses"]
                + counters["xreach_misses"]
                + counters["context_misses"]
            )
            if budget is not None and budget.truncations:
                # Only when governance actually bit: a governed run that
                # completed exactly stays indistinguishable from an
                # ungoverned one, so generous budgets never perturb campaign
                # equivalence.
                stats["n_expansions"] = float(budget.expansions)
                stats["n_truncations"] = float(len(budget.truncations))
            report = DiagnosisReport(
                method=METHOD_NAME,
                circuit=self.netlist.name,
                candidates=tuple(candidates),
                multiplets=tuple(multiplets),
                uncovered_atoms=frozenset(uncovered),
                stats=stats,
                completeness=budget.completeness if budget is not None else "exact",
                truncations=tuple(budget.truncations) if budget is not None else (),
                optimality=optimality,
            )
            if raw is not None or cfg.validate:
                # The oracle emits its own "oracle" span through the active
                # tracer, nesting under this root on traced runs.
                report = validate_report(
                    self.netlist,
                    patterns,
                    report,
                    raw if raw is not None else datalog,
                    base_values,
                )
        record_sim_delta(counters)
        if budget is not None:
            record_truncations(budget.truncations)
        record_diagnosis(METHOD_NAME, stats["seconds"], report.completeness)
        return report

    # -- engines -----------------------------------------------------------------

    def _run_pertest(
        self, patterns, datalog, sites, base_values, budget=None, tracer=NULL_TRACER
    ):
        cfg = self.config
        with tracer.span("pertest"):
            analysis = build_pertest(
                self.netlist, patterns, datalog, sites, base_values, budget=budget
            )
        with tracer.span("cover"):
            solution = greedy_pertest_cover(
                analysis,
                max_size=cfg.max_multiplet_size,
                pair_cap=cfg.pair_cap,
                budget=budget,
            )
            multiplet_sets: list[tuple[Site, ...]] = []
            optimality: str | None = None
            unexplained = solution.unexplained
            engine_stats: dict[str, float] = {}
            if cfg.cover_engine == "exact":
                # Implicit-hitting-set refinement: the greedy solution is
                # the incumbent (depth bound + anytime fallback).
                depth = min(
                    max(cfg.exact_max_size, len(solution.sites)),
                    cfg.max_multiplet_size,
                )
                result = hitting_set_cover(
                    analysis,
                    seed_sites=solution.sites + solution.pair_candidates,
                    incumbent=solution.sites if solution.complete else None,
                    max_size=depth,
                    budget=budget,
                )
                multiplet_sets = list(result.covers)
                optimality = result.optimality
                engine_stats["n_hitting_conflicts"] = float(result.conflicts)
                engine_stats["n_hitting_verifications"] = float(
                    result.verifications
                )
                if result.covers:
                    # A verified cover explains every failing pattern.
                    unexplained = frozenset()
            elif cfg.cover_engine == "clustered":
                cres = cluster_cover(
                    analysis,
                    seed_sites=solution.sites + solution.pair_candidates,
                    max_size=cfg.max_multiplet_size,
                    max_covers=cfg.max_reported_multiplets,
                    budget=budget,
                )
                multiplet_sets = list(cres.covers)
                optimality = cres.optimality
                engine_stats["n_failure_clusters"] = float(len(cres.clusters))
                engine_stats["n_cluster_fallback"] = float(cres.fallback)
                if cres.covers:
                    unexplained = cres.unexplained
            elif cfg.enumerate_exact:
                # Enumerate at least up to the size the greedy needed, so
                # that every tying alternative of a pair-rescued explanation
                # is reported (bounded overall by max_checks inside).
                depth = min(
                    max(cfg.exact_max_size, len(solution.sites)),
                    cfg.max_multiplet_size,
                )
                multiplet_sets = enumerate_pertest_min_covers(
                    analysis,
                    seed_sites=solution.sites + solution.pair_candidates,
                    max_candidates=cfg.exact_max_candidates,
                    max_size=depth,
                    budget=budget,
                )
            known = {tuple(sorted(map(str, m))) for m in multiplet_sets}
            if (
                solution.sites
                and not (optimality is not None and multiplet_sets)
                and tuple(sorted(map(str, solution.sites))) not in known
            ):
                # Greedy incumbent: reported whenever the enumeration missed
                # it, or as the anytime fallback when an exact engine came
                # back empty-handed (bounded out / budget cut).
                multiplet_sets.append(solution.sites)
            uncovered = {
                (idx, out)
                for idx in unexplained
                for out in datalog.failing_outputs_of(idx)
            }
            # Per-pattern reporting: every failing pattern contributes its
            # best exact singleton explainers to the candidate list, so a
            # defect whose patterns happen to be aliased out of the minimum
            # covers is still located (at some resolution cost).
            extras: list[Site] = []
            if cfg.per_pattern_candidates > 0:
                for idx in datalog.failing_indices:
                    explainers = sorted(
                        analysis.exact_singletons.get(idx, ()),
                        key=lambda s: (-len(analysis.atoms_of(s)), str(s)),
                    )
                    extras.extend(explainers[: cfg.per_pattern_candidates])
                extras.extend(solution.pair_candidates)
        stats = {
            "n_unexplained_patterns": float(len(unexplained)),
            "n_exactly_explained_patterns": float(
                len(set(datalog.failing_indices) - set(unexplained))
            ),
            **engine_stats,
        }
        return analysis, multiplet_sets, uncovered, tuple(extras), stats, optimality

    def _run_xcover(
        self, patterns, datalog, base_values, budget=None, tracer=NULL_TRACER
    ):
        cfg = self.config
        with tracer.span("xcover"):
            xc = build_xcover(
                self.netlist,
                patterns,
                datalog,
                include_branches=cfg.include_branches,
                base_values=base_values,
                budget=budget,
            )
        with tracer.span("cover"):
            solution = greedy_cover(
                xc,
                max_size=cfg.max_multiplet_size,
                top_k=cfg.greedy_top_k,
                rescue_pair_cap=cfg.rescue_pair_cap,
                budget=budget,
            )
            multiplet_sets: list[tuple[Site, ...]] = []
            if cfg.enumerate_exact:
                multiplet_sets = enumerate_min_covers(
                    xc,
                    max_candidates=cfg.exact_max_candidates,
                    max_size=cfg.exact_max_size,
                    budget=budget,
                )
            known = {tuple(sorted(map(str, m))) for m in multiplet_sets}
            if (
                solution.sites
                and tuple(sorted(map(str, solution.sites))) not in known
            ):
                multiplet_sets.append(solution.sites)
        stats = {"n_joint_evaluations": float(solution.joint_evaluations)}
        return xc, multiplet_sets, set(solution.uncovered), stats

    # -- helpers -----------------------------------------------------------------

    def _assemble_multiplet(
        self,
        evidence,
        sites: tuple[Site, ...],
        hypothesis_by_site: dict[Site, tuple[Hypothesis, ...]],
        patterns: PatternSet,
        base_values: dict[str, int],
        skip_iou: bool = False,
    ) -> Multiplet:
        if isinstance(evidence, PerTestAnalysis):
            explained = evidence.explained_patterns(sites)
            covered = sum(
                len(evidence.datalog.failing_outputs_of(idx)) for idx in explained
            )
        else:
            covered = len(evidence.joint_covered_atoms(sites))
        iou = 0.0
        defects = (
            None
            if skip_iou
            else concrete_defects(
                [hypothesis_by_site.get(site, ()) for site in sites]
            )
        )
        if defects is not None:
            joint = multiplet_iou(
                self.netlist, patterns, defects, evidence.atoms, base_values
            )
            if joint is not None:
                iou = joint
        return Multiplet(
            sites=tuple(sites),
            covered_atoms=covered,
            total_atoms=len(evidence.atoms),
            iou=iou,
        )


def diagnose(
    netlist: Netlist,
    patterns: PatternSet,
    datalog: Datalog,
    config: DiagnosisConfig | None = None,
) -> DiagnosisReport:
    """One-shot convenience wrapper around :class:`Diagnoser`."""
    return Diagnoser(netlist, config).diagnose(patterns, datalog)
