"""Fault-dictionary (cause-effect) diagnosis baseline.

The classical pre-computed alternative the effect-cause paradigm competes
with: simulate the *entire* fault universe once, store every fault's full
response signature, and diagnose by looking observed responses up in the
dictionary.  Lookup is fast, but the dictionary build is
O(|universe| x simulation) per test set and must be redone whenever the
patterns change -- the cost structure the reproduced paper's approach
avoids (it only ever simulates inside the failing die's candidate
envelope).  Ablation D quantifies this trade.

The dictionary here covers the collapsed single stuck-at universe; like
every single-fault technique it degrades on multi-defect composite
responses, which the ranked partial-match lookup makes measurable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.circuit.netlist import Netlist
from repro.core.report import Candidate, DiagnosisReport, Hypothesis, Multiplet
from repro.core.scoring import atoms_iou, diff_to_atoms, match_counts
from repro.core.xcover import Atom
from repro.errors import DiagnosisError
from repro.faults.collapse import collapse_stuck_at
from repro.faults.models import StuckAtDefect
from repro.sim.faultsim import defect_output_diff
from repro.sim.logicsim import simulate
from repro.sim.patterns import PatternSet
from repro.tester.datalog import Datalog

METHOD_NAME = "dictionary"


@dataclass
class FaultDictionary:
    """Precomputed full-response signatures of the stuck-at universe."""

    netlist: Netlist
    patterns: PatternSet
    signatures: dict[StuckAtDefect, frozenset[Atom]]
    build_seconds: float

    @property
    def n_entries(self) -> int:
        return len(self.signatures)

    def lookup(
        self, datalog: Datalog, top_k: int = 10
    ) -> list[tuple[float, StuckAtDefect, frozenset[Atom]]]:
        """Entries ranked by IoU against the observed fail atoms."""
        observed = frozenset(datalog.fail_atoms())
        scored = [
            (atoms_iou(signature, observed), fault, signature)
            for fault, signature in self.signatures.items()
            if signature & observed
        ]
        scored.sort(key=lambda item: (-item[0], str(item[1])))
        return scored[:top_k]


def build_dictionary(
    netlist: Netlist,
    patterns: PatternSet,
    include_branches: bool = True,
) -> FaultDictionary:
    """Simulate the whole collapsed stuck-at universe (the expensive step)."""
    started = time.perf_counter()
    base_values = simulate(netlist, patterns)
    signatures: dict[StuckAtDefect, frozenset[Atom]] = {}
    for fault in collapse_stuck_at(netlist, include_branches).representatives:
        diff = defect_output_diff(netlist, patterns, fault, base_values)
        signatures[fault] = diff_to_atoms(diff)
    return FaultDictionary(
        netlist=netlist,
        patterns=patterns,
        signatures=signatures,
        build_seconds=time.perf_counter() - started,
    )


def diagnose_dictionary(
    dictionary: FaultDictionary,
    datalog: Datalog,
    top_k: int = 10,
) -> DiagnosisReport:
    """Dictionary lookup diagnosis (requires a prebuilt dictionary)."""
    if datalog.n_patterns != dictionary.patterns.n:
        raise DiagnosisError("datalog/dictionary pattern count mismatch")
    started = time.perf_counter()
    netlist = dictionary.netlist
    if datalog.is_passing_device:
        return DiagnosisReport(method=METHOD_NAME, circuit=netlist.name)

    observed = frozenset(datalog.fail_atoms())
    ranked = dictionary.lookup(datalog, top_k=top_k)
    exact = [(iou, f, sig) for iou, f, sig in ranked if iou == 1.0]
    kept = exact if exact else ranked

    failing = datalog.failing_indices
    candidates = []
    multiplets = []
    for iou, fault, signature in kept:
        hits, misses, fa = match_counts(
            signature, observed, failing, datalog.n_observed, datalog.x_atoms
        )
        hypothesis = Hypothesis(
            kind=f"sa{fault.value}",
            site=fault.site,
            hits=hits,
            misses=misses,
            false_alarms=fa,
        )
        candidates.append(
            Candidate(site=fault.site, hypotheses=(hypothesis,), explained_atoms=hits)
        )
        multiplets.append(
            Multiplet(
                sites=(fault.site,),
                covered_atoms=hits,
                total_atoms=len(observed),
                iou=iou,
            )
        )
    stats = {
        "seconds": time.perf_counter() - started,
        "build_seconds": dictionary.build_seconds,
        "n_dictionary_entries": float(dictionary.n_entries),
        "n_exact_matches": float(len(exact)),
        "best_iou": ranked[0][0] if ranked else 0.0,
    }
    best_sig = kept[0][2] if kept else frozenset()
    return DiagnosisReport(
        method=METHOD_NAME,
        circuit=netlist.name,
        candidates=tuple(candidates),
        multiplets=tuple(multiplets),
        uncovered_atoms=frozenset(observed - best_sig),
        stats=stats,
    )
