"""Adaptive diagnosis: distinguishing-pattern generation.

The paper's natural extension (and the standard industrial follow-up):
when diagnosis leaves several equivalent candidates, generate *extra*
patterns that tell them apart, re-test the device, and re-diagnose with
the enriched datalog.  A pattern distinguishes sites ``a`` and ``b`` when
their single-flip output signatures differ under it -- then the device's
actual response is consistent with at most one of them.

Pattern search is simulation-driven: batches of random patterns are
flip-simulated for both candidates bit-parallel, and the first
distinguishing position is kept.  (A PODEM-style targeted search is
possible but rarely needed -- distinguishability is common under random
stimuli, and the search reports the sites as *indistinguishable* only
after a configurable effort.)

The :func:`adaptive_diagnose` loop drives a full closed-loop session
against any device oracle (e.g. a :class:`~repro.faults.injection.FaultyCircuit`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro._rng import make_rng
from repro.circuit.netlist import Netlist, Site
from repro.core.diagnose import DiagnosisConfig, Diagnoser
from repro.core.report import DiagnosisReport
from repro.sim.cache import active_context, sim_context
from repro.sim.event import changed_outputs, resimulate_with_overrides
from repro.sim.patterns import PatternSet
from repro.tester.datalog import Datalog

#: Device oracle: given patterns, return per-output response vectors.
DeviceOracle = Callable[[PatternSet], Mapping[str, int]]


def _flip_signature(
    netlist: Netlist,
    patterns: PatternSet,
    site: Site,
    base_values: Mapping[str, int],
) -> dict[str, int]:
    ctx = active_context(netlist, patterns, base_values)
    if ctx is not None:
        return dict(ctx.flip_signature(site))
    mask = patterns.mask
    flipped = (base_values[site.net] ^ mask) & mask
    changed = resimulate_with_overrides(netlist, base_values, {site: flipped}, mask)
    return changed_outputs(netlist, changed, base_values, mask)


def distinguishing_pattern(
    netlist: Netlist,
    site_a: Site,
    site_b: Site,
    seed: int = 0,
    batch: int = 64,
    max_batches: int = 32,
) -> dict[str, int] | None:
    """A pattern under which the two sites' flip signatures differ.

    Returns a full input assignment, or None when ``max_batches * batch``
    random patterns found no difference (the sites are then treated as
    equivalent at this test-generation effort).
    """
    rng = make_rng(seed)
    for _ in range(max_batches):
        patterns = PatternSet.random(netlist, batch, rng)
        base = sim_context(netlist, patterns).base
        sig_a = _flip_signature(netlist, patterns, site_a, base)
        sig_b = _flip_signature(netlist, patterns, site_b, base)
        difference = 0
        for out in set(sig_a) | set(sig_b):
            difference |= sig_a.get(out, 0) ^ sig_b.get(out, 0)
        if difference:
            index = (difference & -difference).bit_length() - 1
            return patterns.pattern(index)
    return None


@dataclass
class AdaptiveResult:
    """Outcome of a closed-loop adaptive diagnosis session."""

    report: DiagnosisReport
    rounds: int
    patterns_added: int
    initial_resolution: int

    @property
    def final_resolution(self) -> int:
        return self.report.resolution


def adaptive_diagnose(
    netlist: Netlist,
    patterns: PatternSet,
    device: DeviceOracle,
    target_resolution: int = 4,
    max_rounds: int = 4,
    patterns_per_round: int = 8,
    seed: int = 0,
    config: DiagnosisConfig | None = None,
) -> AdaptiveResult:
    """Closed-loop diagnosis: diagnose, distinguish, re-test, repeat.

    ``device`` is the only window onto the defective part (it is called
    again for every round's extra patterns, like re-inserting the die on
    the tester).  The loop stops when the candidate list is at most
    ``target_resolution`` sites, when no distinguishing pattern can be
    found, or after ``max_rounds``.
    """
    rng = make_rng(seed)
    diagnoser = Diagnoser(netlist, config)
    golden = sim_context(netlist, patterns).base
    observed = device(patterns)
    diff = {
        out: (golden[out] ^ observed[out]) & patterns.mask
        for out in netlist.outputs
        if (golden[out] ^ observed[out]) & patterns.mask
    }
    datalog = Datalog.from_output_diff(netlist.name, patterns.n, diff)
    report = diagnoser.diagnose(patterns, datalog)
    initial_resolution = report.resolution
    best_report = report
    added = 0

    round_index = -1
    for round_index in range(max_rounds):
        if report.resolution <= target_resolution or not report.candidates:
            break
        # Pick pattern targets: split the top candidates pairwise.
        suspects = [c.site for c in report.candidates]
        new_vectors: list[dict[str, int]] = []
        for a, b in zip(suspects, suspects[1:]):
            if len(new_vectors) >= patterns_per_round:
                break
            vector = distinguishing_pattern(
                netlist, a, b, seed=rng.getrandbits(32), max_batches=8
            )
            if vector is not None:
                new_vectors.append(vector)
        if not new_vectors:
            break
        extra = PatternSet.from_vectors(netlist.inputs, new_vectors)
        patterns = patterns.concat(extra)
        added += extra.n

        golden = sim_context(netlist, patterns).base
        observed = device(patterns)
        diff = {
            out: (golden[out] ^ observed[out]) & patterns.mask
            for out in netlist.outputs
            if (golden[out] ^ observed[out]) & patterns.mask
        }
        datalog = Datalog.from_output_diff(netlist.name, patterns.n, diff)
        report = diagnoser.diagnose(patterns, datalog)
        # New failing patterns can surface fresh equivalents; the session's
        # answer is the sharpest complete report seen, not merely the last.
        if report.resolution <= best_report.resolution:
            best_report = report

    rounds_used = round_index + 1 if added else 0
    return AdaptiveResult(
        report=best_report,
        rounds=rounds_used,
        patterns_added=added,
        initial_resolution=initial_resolution,
    )
