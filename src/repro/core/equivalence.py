"""Candidate indistinguishability classes.

Two candidate sites are *indistinguishable under a test set* when every
pattern's single-flip output signature is identical -- no response the
device could produce would ever separate them (an inverter's input and
output, a fanout-free chain, collapse-equivalent positions...).  Grouping
a diagnosis report by these classes gives the metric PFA actually cares
about: the number of *physically distinct places to look*, rather than
the raw candidate count.  It also feeds the adaptive flow: only
representatives of different classes are worth generating distinguishing
patterns for.

The signature equality is exact *with respect to the applied patterns*;
sites distinguishable only by patterns outside the set are (correctly)
grouped until such patterns are applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.circuit.netlist import Netlist, Site
from repro.core.report import Candidate, DiagnosisReport
from repro.sim.cache import active_context, sim_context
from repro.sim.event import changed_outputs, resimulate_with_overrides
from repro.sim.patterns import PatternSet


def flip_signature(
    netlist: Netlist,
    patterns: PatternSet,
    site: Site,
    base_values: Mapping[str, int],
) -> tuple[tuple[str, int], ...]:
    """Canonical hashable single-flip signature of a site."""
    ctx = active_context(netlist, patterns, base_values)
    if ctx is not None:
        return tuple(sorted(ctx.flip_signature(site).items()))
    mask = patterns.mask
    flipped = (base_values[site.net] ^ mask) & mask
    changed = resimulate_with_overrides(netlist, base_values, {site: flipped}, mask)
    diff = changed_outputs(netlist, changed, base_values, mask)
    return tuple(sorted(diff.items()))


def signature_classes(
    netlist: Netlist,
    patterns: PatternSet,
    sites: Sequence[Site],
    base_values: Mapping[str, int] | None = None,
) -> list[tuple[Site, ...]]:
    """Partition ``sites`` into indistinguishability classes.

    Classes are ordered by first appearance; members keep input order.
    """
    if base_values is None:
        base_values = sim_context(netlist, patterns).base
    groups: dict[tuple, list[Site]] = {}
    order: list[tuple] = []
    for site in sites:
        key = flip_signature(netlist, patterns, site, base_values)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(site)
    return [tuple(groups[key]) for key in order]


@dataclass(frozen=True)
class CandidateClass:
    """One indistinguishability class of a diagnosis report."""

    members: tuple[Candidate, ...]

    @property
    def representative(self) -> Candidate:
        return self.members[0]

    @property
    def sites(self) -> tuple[Site, ...]:
        return tuple(c.site for c in self.members)

    def describe(self) -> str:
        rep = self.representative
        extra = "" if len(self.members) == 1 else f" (+{len(self.members) - 1} equivalent)"
        return f"{rep.describe()}{extra}"


def group_candidates(
    netlist: Netlist,
    patterns: PatternSet,
    report: DiagnosisReport,
    base_values: Mapping[str, int] | None = None,
) -> list[CandidateClass]:
    """Group a report's candidates into indistinguishability classes.

    Class order follows the report's candidate ranking (a class ranks at
    its best member's position).
    """
    if base_values is None:
        base_values = sim_context(netlist, patterns).base
    by_signature: dict[tuple, list[Candidate]] = {}
    order: list[tuple] = []
    for candidate in report.candidates:
        key = flip_signature(netlist, patterns, candidate.site, base_values)
        if key not in by_signature:
            by_signature[key] = []
            order.append(key)
        by_signature[key].append(candidate)
    return [CandidateClass(tuple(by_signature[key])) for key in order]


def classed_resolution(
    netlist: Netlist,
    patterns: PatternSet,
    report: DiagnosisReport,
) -> int:
    """Number of physically distinct candidate classes (PFA work items)."""
    return len(group_candidates(netlist, patterns, report))
