"""Implicit-hitting-set exact cover engine over the per-test criterion.

The greedy/bounded search in :mod:`repro.core.cover` can silently miss the
true minimum cover.  This module upgrades the multiplet search to the
implicit-hitting-set (IHS) scheme of Ignatiev et al., *Model Based
Diagnosis of Multiple Observations with Implicit Hitting Sets*
(arXiv:1707.01972), specialized to the assumption-free per-test criterion:

- **Conflicts** are refuting site-sets.  For a failing pattern ``t`` the
  set ``K_t`` of candidate sites inside the fan-in cone of ``t``'s failing
  outputs is a *sound* conflict: any flip/pin assignment that reproduces
  ``t``'s failures exactly must flip at least one site whose corruption
  reaches those outputs, so every cover hits ``K_t``.  Soundness needs no
  monotonicity assumption -- it follows from ``_match_vector`` requiring a
  non-empty predicted flip on the observed failing outputs.
- **Candidates** are hitting sets of the conflicts collected so far,
  enumerated in increasing cardinality (bitmask subset tests over a ranked
  site pool); a candidate that misses a conflict is pruned without paying a
  verification.
- **Verification** is exact: :meth:`PerTestAnalysis.explained_patterns`
  tries every flip/pin assignment of the candidate.  A refuted candidate
  contributes the conflicts of its unexplained patterns, tightening the
  next round -- the "grow, verify, refute, repeat" loop of the IHS scheme.

Because conflicts only ever exclude non-covers, the first cardinality with
a verified cover is the provable minimum over the pool, and *all* tying
covers of that cardinality are collected (the resolution statistic).  The
engine is anytime: a :class:`Budget` charges one expansion per
verification, and exhaustion returns the covers found so far.

The :class:`HittingSetResult` carries an ``optimality`` status describing
the *cardinality claim* (orthogonal to the completeness verdict):

- ``optimal`` -- covers were found and every smaller cardinality was fully
  refuted over an untruncated pool: the cardinality is provably minimum.
  Tie collection may still have been cut short (a ``cover`` truncation on
  the budget records that), but the cardinality stands.
- ``bounded`` -- a structural bound limited the search without a proof:
  the pool was capped, the combination/verification ceiling interrupted a
  sweep before any cover was found, or no cover exists within
  ``max_size`` sites of the pool.
- ``budget`` -- the :class:`Budget` (deadline, expansions, cancellation)
  stopped the search before any cover was verified at the current
  cardinality; the caller should fall back to its greedy incumbent.

Pool caveat (documented in ``docs/limitations.md``): the pool is the union
of the caller's seed sites and every candidate site inside some failing
pattern's fan-in cone.  Flipped sites of any explanation necessarily live
there, but a *pin-only* site (blocking a spurious flip on a never-failing
output) can lie outside it; ``optimal`` is therefore minimality over this
structural pool, the same candidate space the greedy engine and the
reference enumeration search.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from repro.circuit.netlist import Site
from repro.core.budget import (
    CAUSE_CHECKS,
    CAUSE_MULTIPLETS,
    OPTIMALITY_BOUNDED,
    OPTIMALITY_BUDGET,
    OPTIMALITY_OPTIMAL,
    Budget,
)
from repro.core.pertest import PerTestAnalysis


@dataclass(frozen=True)
class HittingSetResult:
    """Outcome of one implicit-hitting-set search.

    ``covers`` holds every verified cover of the winning cardinality (all
    of them when the search completed, a prefix when truncated);
    ``conflicts`` / ``verifications`` count the refuting site-sets grown
    and the exact checks spent, ``pool_size`` the candidate sites
    enumerated over.
    """

    covers: tuple[tuple[Site, ...], ...]
    optimality: str
    cardinality: int
    conflicts: int = 0
    verifications: int = 0
    pool_size: int = 0

    @property
    def complete(self) -> bool:
        return bool(self.covers)


def conflict_pool(
    analysis: PerTestAnalysis,
    failing: Iterable[int],
    seed_sites: Sequence[Site] = (),
) -> list[Site]:
    """The structural candidate pool for ``failing``: seeds first, then
    every analysis site inside some pattern's failing-output fan-in cone,
    ranked by exact-evidence weight (atoms on the failing subset) with a
    deterministic string tie-break."""
    failing_set = set(failing)
    cones = [
        analysis.netlist.fanin_cone(analysis.datalog.failing_outputs_of(idx))
        for idx in sorted(failing_set)
    ]

    def weight(site: Site) -> int:
        return sum(1 for idx, _out in analysis.atoms_of(site) if idx in failing_set)

    ranked = sorted(
        (s for s in analysis.sites if any(s.net in cone for cone in cones)),
        key=lambda s: (-weight(s), str(s)),
    )
    pool = [s for s in dict.fromkeys(seed_sites) if s in set(analysis.sites)]
    seen = set(pool)
    pool.extend(s for s in ranked if s not in seen)
    return pool


def hitting_set_cover(
    analysis: PerTestAnalysis,
    failing: Iterable[int] | None = None,
    seed_sites: Sequence[Site] = (),
    incumbent: Sequence[Site] | None = None,
    max_size: int = 6,
    pool_cap: int = 384,
    max_verifications: int = 20_000,
    max_combos: int = 500_000,
    budget: Budget | None = None,
) -> HittingSetResult:
    """All minimum-cardinality covers of ``failing`` by implicit hitting sets.

    ``incumbent`` (typically the greedy solution, when complete) upper
    bounds the cardinality sweep: the search never explores sizes beyond
    it, and at its size the incumbent itself is re-verified among the
    candidates.  ``max_combos`` bounds candidate *generation* (cheap
    bitmask tests) and ``max_verifications`` bounds exact checks, mirroring
    the ``max_checks`` discipline of the reference enumeration; a
    :class:`Budget` additionally meters one expansion per verification.
    """
    failing_set = (
        set(analysis.datalog.failing_indices) if failing is None else set(failing)
    )
    if not failing_set:
        return HittingSetResult((), OPTIMALITY_OPTIMAL, 0)

    pool = conflict_pool(analysis, failing_set, seed_sites)
    bounded_pool = len(pool) > pool_cap
    pool = pool[:pool_cap]
    site_bit = {site: 1 << i for i, site in enumerate(pool)}

    # Per-pattern conflict masks: the pool sites inside the pattern's
    # failing-output fan-in cone.  Cheap to precompute; *activated* lazily
    # by refutations so pruning reflects only conflicts the search earned.
    pattern_mask: dict[int, int] = {}
    for idx in sorted(failing_set):
        cone = analysis.netlist.fanin_cone(analysis.datalog.failing_outputs_of(idx))
        pattern_mask[idx] = sum(bit for s, bit in site_bit.items() if s.net in cone)
    if any(mask == 0 for mask in pattern_mask.values()):
        # Some pattern has no candidate in the pool: no cover can exist
        # over this candidate space.
        return HittingSetResult((), OPTIMALITY_BOUNDED, 0, 0, 0, len(pool))

    upper = max_size
    if incumbent:
        upper = min(upper, len(tuple(dict.fromkeys(incumbent))))

    conflict_masks: list[int] = []
    active_masks: set[int] = set()
    verifications = 0
    combos_seen = 0

    def result(covers: list[tuple[Site, ...]], size: int, stopped: str | None):
        if covers:
            status = OPTIMALITY_BOUNDED if bounded_pool else OPTIMALITY_OPTIMAL
        elif stopped == "budget":
            status = OPTIMALITY_BUDGET
        else:
            status = OPTIMALITY_BOUNDED
        return HittingSetResult(
            covers=tuple(covers),
            optimality=status,
            cardinality=size if covers else 0,
            conflicts=len(conflict_masks),
            verifications=verifications,
            pool_size=len(pool),
        )

    for size in range(1, upper + 1):
        covers: list[tuple[Site, ...]] = []
        for combo in combinations(range(len(pool)), size):
            combos_seen += 1
            if combos_seen > max_combos:
                if budget is not None:
                    budget.record("cover", CAUSE_CHECKS, max_combos, max_combos)
                return result(covers, size, "checks")
            mask = 0
            for i in combo:
                mask |= 1 << i
            if any(not mask & c for c in conflict_masks):
                continue  # misses a known conflict: cannot be a cover
            if budget is not None:
                if verifications and budget.stop("cover", verifications, 0):
                    return result(covers, size, "budget")
                if budget.multiplets_exhausted(len(covers)):
                    budget.record(
                        "cover",
                        CAUSE_MULTIPLETS,
                        len(covers),
                        budget.max_multiplets or 0,
                    )
                    return result(covers, size, "multiplets")
                budget.charge()
            if verifications >= max_verifications:
                if budget is not None:
                    budget.record(
                        "cover", CAUSE_CHECKS, verifications, max_verifications
                    )
                return result(covers, size, "checks")
            candidate = tuple(pool[i] for i in combo)
            explained = analysis.explained_patterns(candidate)
            verifications += 1
            missing = failing_set - explained
            if not missing:
                covers.append(candidate)
                continue
            # Refutation: activate the conflicts of every unexplained
            # pattern (dedup by mask -- cone-equivalent patterns share one).
            for idx in sorted(missing):
                cmask = pattern_mask[idx]
                if cmask not in active_masks:
                    active_masks.add(cmask)
                    conflict_masks.append(cmask)
        if covers:
            return result(covers, size, None)
    return result([], 0, None)
