"""Post-diagnosis validation oracle: resimulate what was reported.

Diagnosis under noisy tester data works on the *sanitized* datalog -- the
quarantining ingestion (:mod:`repro.tester.noise`) has already demoted
contradictory strobes to the X tier.  The oracle is the independent
backstop: after diagnosis it takes the reported candidates and
multiplets, resimulates their concrete fault models, and compares the
predictions against the **raw, pre-sanitized** evidence.  A candidate
whose best model reproduces none of the raw failures was hallucinated
from corrupted evidence and is demoted; a report whose best multiplet
reproduces everything is independently confirmed.

The comparison is deliberately lenient about false alarms: intermittent
fail->pass noise makes even the true defect predict failures on strobes
the raw log recorded as passing, so a prediction on an observed pass
yields ``"plausible"``, never ``"refuted"``.  Refutation requires the
model to reproduce *zero* observed failures.

The oracle never mutates diagnosis state -- it returns a new report with
per-candidate :class:`~repro.core.report.Validation` records, an
``oracle_*`` stats block, and a report-level ``consistency`` verdict.
Reports without the oracle stage serialize byte-identically to the
historical format.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Mapping

from repro.circuit.netlist import Netlist
from repro.core.report import (
    Candidate,
    DiagnosisReport,
    Hypothesis,
    Validation,
)
from repro.core.scoring import diff_to_atoms, match_counts, predicted_atoms
from repro.core.xcover import Atom
from repro.errors import DiagnosisError, OscillationError
from repro.faults.injection import FaultyCircuit
from repro.faults.models import (
    BridgeDefect,
    Defect,
    OpenDefect,
    StuckAtDefect,
    TransitionDefect,
    TransitionKind,
)
from repro.obs.trace import trace_span
from repro.sim.cache import sim_context
from repro.sim.patterns import PatternSet
from repro.tester.datalog import Datalog

#: Report-level consistency verdicts (see :func:`validate_report`).
CONSISTENCY_CONFIRMED = "confirmed"
CONSISTENCY_PARTIAL = "partial"
CONSISTENCY_REFUTED = "refuted"
CONSISTENCY_UNVALIDATED = "unvalidated"


def hypothesis_to_defect(h: Hypothesis) -> Defect:
    """Materialize a concrete hypothesis as an injectable defect."""
    if h.kind in ("sa0", "sa1"):
        return StuckAtDefect(h.site, int(h.kind[-1]))
    if h.kind in ("open0", "open1"):
        return OpenDefect(h.site, int(h.kind[-1]))
    if h.kind == "bridge":
        assert h.aggressor is not None
        return BridgeDefect(h.site.net, h.aggressor)
    if h.kind == "str":
        return TransitionDefect(h.site, TransitionKind.SLOW_TO_RISE)
    if h.kind == "stf":
        return TransitionDefect(h.site, TransitionKind.SLOW_TO_FALL)
    raise DiagnosisError(f"cannot materialize hypothesis kind {h.kind!r}")


def concrete_defects(
    hypothesis_lists: list[tuple[Hypothesis, ...]],
) -> list[Defect] | None:
    """Best concrete defect per site, or None if some site is model-free."""
    defects: list[Defect] = []
    for hypotheses in hypothesis_lists:
        concrete = next((h for h in hypotheses if h.kind != "arbitrary"), None)
        if concrete is None:
            return None
        defects.append(hypothesis_to_defect(concrete))
    return defects


def _raw_evidence(
    raw,
) -> tuple[frozenset[Atom], tuple[int, ...], int | None, frozenset[Atom]]:
    """Normalize a RawLog or Datalog into (fail_atoms, failing, window, x).

    For a raw log the fail tier is the union of every fail-record claim
    inside the observed window -- contradictions included, because the
    oracle's whole point is to judge the report against the evidence *as
    the tester emitted it*, before the sanitizer took a side.
    """
    if isinstance(raw, Datalog):
        return (
            frozenset(raw.fail_atoms()),
            raw.failing_indices,
            raw.n_observed,
            raw.x_atoms,
        )
    # Duck-typed RawLog (avoids a tester -> core import cycle concern).
    window = raw.observed_window
    fails: set[Atom] = set()
    x_atoms: set[Atom] = set()
    for record in raw.records:
        if record.pattern_index >= window:
            continue
        atoms = {(record.pattern_index, out) for out in record.outputs}
        if record.kind == "fail":
            fails.update(atoms)
        elif record.kind == "xmask":
            x_atoms.update(atoms)
    x_atoms -= fails  # a strobe claimed failing is fail evidence, not X
    failing = tuple(sorted({idx for idx, _out in fails}))
    n_observed = None if window >= raw.n_patterns else window
    return frozenset(fails), failing, n_observed, frozenset(x_atoms)


def _verdict(hits: int, misses: int, false_alarms: int, observed: bool) -> str:
    if not observed:
        return "confirmed"
    if hits == 0:
        return "refuted"
    if false_alarms == 0:
        return "confirmed"
    return "plausible"


def validate_report(
    netlist: Netlist,
    patterns: PatternSet,
    report: DiagnosisReport,
    raw,
    base_values: Mapping[str, int] | None = None,
) -> DiagnosisReport:
    """Self-validate ``report`` against the raw (pre-sanitized) evidence.

    ``raw`` is the :class:`~repro.tester.noise.RawLog` the tester emitted
    (preferred -- it still carries the quarantined contradictions) or a
    plain :class:`~repro.tester.datalog.Datalog` when no noise stage ran.

    Returns a new report where

    - every candidate carries a :class:`~repro.core.report.Validation`
      record (its best concrete model resimulated against the raw
      evidence; model-free candidates are ``"plausible"`` -- there is
      nothing to resimulate and the no-assumptions envelope keeps them),
    - candidates refuted by the raw evidence are stably demoted below
      every non-refuted candidate,
    - ``stats`` gains ``oracle_explained`` / ``oracle_misexplained`` /
      ``oracle_unexplained`` counts from jointly resimulating the best
      multiplet, and
    - ``consistency`` holds the report-level verdict: ``"confirmed"``
      (joint resimulation reproduces every raw fail atom and predicts
      nothing on observed-passing strobes), ``"partial"`` (some but not
      all evidence reproduced, or reproduced with false alarms),
      ``"refuted"`` (nothing reproduced), ``"unvalidated"`` (no concrete
      multiplet to resimulate).
    """
    with trace_span("oracle"):
        return _validate_report(netlist, patterns, report, raw, base_values)


def _validate_report(
    netlist: Netlist,
    patterns: PatternSet,
    report: DiagnosisReport,
    raw,
    base_values: Mapping[str, int] | None = None,
) -> DiagnosisReport:
    observed, failing, n_observed, x_atoms = _raw_evidence(raw)
    if base_values is None:
        base_values = sim_context(netlist, patterns).base

    validated: list[Candidate] = []
    for candidate in report.candidates:
        best = next(
            (h for h in candidate.hypotheses if h.kind != "arbitrary"), None
        )
        if best is None:
            validation = Validation(verdict="plausible")
        else:
            try:
                predicted = predicted_atoms(
                    netlist, patterns, hypothesis_to_defect(best), base_values
                )
            except OscillationError:
                validation = Validation(verdict="plausible", kind=best.kind)
            else:
                hits, misses, fa = match_counts(
                    predicted, observed, failing, n_observed, x_atoms
                )
                validation = Validation(
                    verdict=_verdict(hits, misses, fa, bool(observed)),
                    kind=best.kind,
                    hits=hits,
                    misses=misses,
                    false_alarms=fa,
                )
        validated.append(replace(candidate, validation=validation))
    # Stable demotion: refuted candidates sink below everything else but
    # keep their relative order (and so does everyone above them).
    validated.sort(key=lambda c: c.validation.verdict == "refuted")

    stats = dict(report.stats)
    consistency = CONSISTENCY_UNVALIDATED
    if not observed:
        consistency = CONSISTENCY_CONFIRMED
        stats["oracle_explained"] = 0.0
        stats["oracle_misexplained"] = 0.0
        stats["oracle_unexplained"] = 0.0
    else:
        hypothesis_by_site = {c.site: c.hypotheses for c in validated}
        best_multiplet = report.best_multiplet
        defects = (
            concrete_defects(
                [
                    hypothesis_by_site.get(site, ())
                    for site in best_multiplet.sites
                ]
            )
            if best_multiplet is not None
            else None
        )
        if defects:
            try:
                faulty = FaultyCircuit(netlist, defects).simulate_outputs(
                    patterns
                )
            except OscillationError:
                faulty = None
            if faulty is not None:
                mask = patterns.mask
                diff = {
                    out: (faulty[out] ^ base_values[out]) & mask
                    for out in netlist.outputs
                    if (faulty[out] ^ base_values[out]) & mask
                }
                predicted = diff_to_atoms(diff)
                hits, misses, fa = match_counts(
                    predicted, observed, failing, n_observed, x_atoms
                )
                stats["oracle_explained"] = float(hits)
                stats["oracle_misexplained"] = float(fa)
                stats["oracle_unexplained"] = float(misses)
                if hits == 0:
                    consistency = CONSISTENCY_REFUTED
                elif misses == 0 and fa == 0:
                    consistency = CONSISTENCY_CONFIRMED
                else:
                    consistency = CONSISTENCY_PARTIAL

    return replace(
        report,
        candidates=tuple(validated),
        stats=stats,
        consistency=consistency,
    )
