"""Exact per-test (per-failing-pattern) explanation analysis.

The observation that makes assumption-free diagnosis *exact* at gate
level: under any defect mechanism whatsoever, a candidate site carries,
for each pattern, either its fault-free value or the complement.  The
whole faulty circuit at pattern ``t`` is therefore the fault-free circuit
with every defect site *overridden*: each site in the multiplet either
flipped or **pinned at its fault-free value**.  Pinning matters -- a
defect site whose faulty value happens to equal the fault-free one still
blocks error propagation from an upstream defect through it (e.g. a
stuck-at-0 net that the other defect would have driven to 1).

Hence a multiplet ``M`` explains failing pattern ``t`` **iff some
assignment (flip / pin per site of M) reproduces exactly the observed
failing outputs of t** -- no fault model enters the criterion.  This
subsumes and sharpens SLAT: SLAT additionally demands a singleton whose
flips come from one stuck-at value across patterns.

Everything here is bit-parallel *over the failing patterns only*: passing
patterns carry no per-test information (every multiplet trivially
"explains" them with the all-pins assignment), so the analysis simulates
on the failing-pattern subset, which keeps assignment enumeration cheap
even for multiplet sizes of 5-6.

Relationship to the X-cover stage: X injection is the sound
over-approximation (necessary condition) used to prune the candidate
space and bound masking-pair searches; the assignment check is the exact
verifier used for covering, enumeration and ranking.  Ablation A measures
the gap between diagnosing with the envelope alone versus with exact
verification.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Mapping, Sequence

from repro.circuit.netlist import Netlist, Site
from repro.core.budget import Budget
from repro.core.xcover import Atom
from repro.sim.cache import SimContext, sim_context
from repro.sim.event import changed_outputs, resimulate_with_overrides
from repro.sim.patterns import PatternSet
from repro.tester.datalog import Datalog


def _match_vector(
    diff: Mapping[str, int],
    obs_vec: Mapping[str, int],
    x_vec: Mapping[str, int],
    work_mask: int,
) -> int:
    """Work positions where ``diff`` reproduces the observed failure exactly.

    Bit ``pos`` is set iff the assignment's predicted flips (X-tier strobes
    excluded) equal the observed failing outputs of position ``pos`` and
    are non-empty.  One pass of integer ops over the output alphabet
    replaces a per-position set comparison -- the inner loop of cover
    verification.
    """
    match = work_mask
    pred_any = 0
    for out, obs in obs_vec.items():
        pred = diff.get(out, 0) & ~x_vec.get(out, 0)
        match &= ~(pred ^ obs)
        pred_any |= pred
    for out, vec in diff.items():
        if out not in obs_vec:
            # Predicted flip on a never-failing output: disqualifies the
            # position unless the strobe is X-tier (evidence-free).
            pred = vec & ~x_vec.get(out, 0)
            match &= ~pred
            pred_any |= pred
    return match & pred_any


@dataclass
class PerTestAnalysis:
    """Single-flip effects of every candidate site plus joint-flip services.

    Internally all diff vectors live in *work space*: bit ``j`` refers to
    the ``j``-th failing pattern.  Public accessors take and return
    original pattern indices.
    """

    netlist: Netlist
    patterns: PatternSet  #: the full applied test set (original indices)
    datalog: Datalog
    sites: tuple[Site, ...]
    atoms: frozenset[Atom]
    site_atoms: dict[Site, frozenset[Atom]]
    #: failing pattern (original index) -> sites whose lone flip reproduces it
    exact_singletons: dict[int, tuple[Site, ...]]
    #: per-site per-output flip diffs in work space
    flip_diff: dict[Site, dict[str, int]]
    _work_patterns: PatternSet = None  # type: ignore[assignment]
    _work_base: dict[str, int] = field(default_factory=dict)
    _pos_of: dict[int, int] = field(default_factory=dict)
    _observed_pos: dict[int, frozenset[str]] = field(default_factory=dict)
    #: per work position, outputs whose strobe is X (quarantined/masked):
    #: predictions there are evidence-free and excluded from exact matching
    _x_pos: dict[int, frozenset[str]] = field(default_factory=dict)
    #: transposed evidence: output -> work-position bit vectors of observed
    #: failing (resp. X-tier) strobes, for bit-parallel exact matching
    _obs_vec: dict[str, int] = field(default_factory=dict)
    _x_vec: dict[str, int] = field(default_factory=dict)
    #: (flips, pins) -> per-output work-space diff cache
    _joint_cache: dict[
        tuple[frozenset[Site], frozenset[Site]], dict[str, int]
    ] = field(default_factory=dict)
    #: shared simulation context over the failing-pattern subset; joint
    #: resimulations route through its override-signature memo so repeated
    #: requests (across covers, trials, stages) are simulated once
    _ctx: SimContext | None = None

    # -- single-site queries ---------------------------------------------------

    def atoms_of(self, site: Site) -> frozenset[Atom]:
        """Observed fail atoms that flipping ``site`` reproduces."""
        return self.site_atoms.get(site, frozenset())

    def diff_at(self, site: Site, pattern_index: int) -> frozenset[str]:
        """Outputs flipped by inverting ``site`` under one failing pattern."""
        pos = self._pos_of[pattern_index]
        diff = self.flip_diff.get(site)
        if diff is None:
            diff = self.assignment_diff((site,))
        return frozenset(out for out, vec in diff.items() if (vec >> pos) & 1)

    def exact_match(self, site: Site, pattern_index: int) -> bool:
        return site in self.exact_singletons.get(pattern_index, ())

    # -- joint queries ---------------------------------------------------------------

    def assignment_diff(
        self, flips: Iterable[Site], pins: Iterable[Site] = ()
    ) -> dict[str, int]:
        """Work-space per-output diff of flipping ``flips`` / pinning ``pins``.

        Pinned sites are overridden at their fault-free values, modeling a
        defect site that agrees with the healthy value but still dominates
        its node (blocking propagation from other defects).  A pin outside
        the flips' combined fanout cone can never be disturbed and is
        dropped, which normalizes the cache key -- the reuse this buys
        across multiplet-enumeration combos is what keeps exact
        enumeration tractable.  Cached by the normalized (flips, pins).
        """
        flip_key = frozenset(flips)
        pin_key = frozenset(pins) - flip_key
        if pin_key and flip_key:
            affected = self.netlist.fanout_cone(site.net for site in flip_key)
            pin_key = frozenset(s for s in pin_key if s.net in affected)
        key = (flip_key, pin_key)
        cached = self._joint_cache.get(key)
        if cached is not None:
            return cached
        if not flip_key:
            result: dict[str, int] = {}
        else:
            mask = self._work_patterns.mask
            overrides = {
                site: (self._work_base[site.net] ^ mask) & mask for site in flip_key
            }
            for site in pin_key:
                overrides[site] = self._work_base[site.net]
            if self._ctx is not None:
                result = self._ctx.resim_diff(overrides)
            else:
                changed = resimulate_with_overrides(
                    self.netlist, self._work_base, overrides, mask
                )
                result = changed_outputs(self.netlist, changed, self._work_base, mask)
        self._joint_cache[key] = result
        return result

    def joint_flip_diff(self, sites: Iterable[Site]) -> dict[str, int]:
        """Work-space per-output diff of flipping all ``sites`` (no pins)."""
        return self.assignment_diff(sites)

    def subset_explains(self, subset: Sequence[Site], pattern_index: int) -> bool:
        """Does the multiplet ``subset`` explain pattern ``t`` exactly?

        Tries every flip/pin assignment over the subset's sites.  X-tier
        strobes of the pattern carry no evidence, so predicted flips
        there neither help nor disqualify a match.
        """
        bit = 1 << self._pos_of[pattern_index]
        work_mask = self._work_patterns.mask
        sites = list(dict.fromkeys(subset))
        for r in range(1, len(sites) + 1):
            for flips in combinations(sites, r):
                diff = self.assignment_diff(flips, sites)
                if _match_vector(diff, self._obs_vec, self._x_vec, work_mask) & bit:
                    return True
        return False

    def explained_patterns(
        self, multiplet: Sequence[Site], max_flips: int | None = None
    ) -> set[int]:
        """Failing patterns (original indices) explained by some flip/pin
        assignment of the multiplet.

        Enumerates flip sets by increasing size with the remaining sites
        pinned; each assignment costs one bit-parallel resimulation over
        the failing patterns, cached across calls.
        """
        sites = list(dict.fromkeys(multiplet))
        limit = len(sites) if max_flips is None else min(max_flips, len(sites))
        work_mask = self._work_patterns.mask
        remaining = work_mask
        explained: set[int] = set()
        failing = self.datalog.failing_indices
        for size in range(1, limit + 1):
            if not remaining:
                break
            for flips in combinations(sites, size):
                if not remaining:
                    break
                diff = self.assignment_diff(flips, sites)
                hits = (
                    _match_vector(diff, self._obs_vec, self._x_vec, work_mask)
                    & remaining
                )
                remaining &= ~hits
                while hits:
                    low = hits & -hits
                    explained.add(failing[low.bit_length() - 1])
                    hits ^= low
        return explained

    def explains_all(self, multiplet: Sequence[Site]) -> bool:
        return self.explained_patterns(multiplet) == set(self.datalog.failing_indices)


def build_pertest(
    netlist: Netlist,
    patterns: PatternSet,
    datalog: Datalog,
    sites: Sequence[Site],
    base_values: Mapping[str, int] | None = None,
    budget: Budget | None = None,
) -> PerTestAnalysis:
    """Compute single-flip effects and exact singleton matches for ``sites``.

    ``base_values`` (full-test-set fault-free values) is accepted for API
    symmetry but the analysis derives its own failing-subset simulation.

    Under a ``budget`` the single-flip sweep is checked per site (each
    costs one cone-restricted resimulation, charged as one expansion); on
    exhaustion the analysis covers only the sites swept so far and a
    ``pertest`` truncation is recorded.
    """
    del base_values  # the analysis works on the failing-pattern subset
    failing = datalog.failing_indices
    work = patterns.subset(list(failing))
    ctx = sim_context(netlist, work)
    work_base = ctx.base
    pos_of = {idx: pos for pos, idx in enumerate(failing)}
    observed_pos = {
        pos: datalog.failing_outputs_of(idx) for pos, idx in enumerate(failing)
    }
    x_pos = {
        pos: datalog.x_outputs_of(idx)
        for pos, idx in enumerate(failing)
        if datalog.x_outputs_of(idx)
    }
    atoms = frozenset(datalog.fail_atoms())
    # Transposed work-space evidence comes packed straight from the
    # datalog (built once per datalog, shared across analyses and stages)
    # instead of being re-transposed here; the work axis is the same (bit
    # j = j-th failing record, records are sorted by pattern index, and
    # `failing` above preserves that order).  The shared dicts are
    # read-only -- _match_vector and the atom sweeps only probe them.
    obs_vec = datalog.fail_vectors()
    x_vec = datalog.fail_x_vectors()

    flip_diff: dict[Site, dict[str, int]] = {}
    site_atoms: dict[Site, frozenset[Atom]] = {}
    exact: dict[int, list[Site]] = {idx: [] for idx in failing}
    #: flip-response signature -> (first site seen, patterns it matched)
    sig_seen: dict[tuple, tuple[Site, tuple[int, ...]]] = {}
    sites = list(sites)
    for done, site in enumerate(sites):
        if (
            budget is not None
            and done
            and budget.stop("pertest", done, len(sites))
        ):
            sites = sites[:done]
            break
        if budget is not None:
            # Charged per site regardless of memo warmth, so anytime
            # truncation points stay deterministic across cache states.
            budget.charge()
        diff = ctx.flip_signature(site)
        flip_diff[site] = diff
        # Response-signature dedup: a site whose flip leaves the same
        # output signature as an earlier one is behaviorally equivalent on
        # this evidence -- reuse the derived atoms and exact matches
        # instead of re-walking the failing patterns.
        signature = tuple(sorted(diff.items()))
        twin = sig_seen.get(signature)
        if twin is not None:
            twin_site, matched = twin
            site_atoms[site] = site_atoms[twin_site]
            for idx in matched:
                exact[idx].append(site)
            continue
        covered: set[Atom] = set()
        matched_here: list[int] = []
        hits = _match_vector(diff, obs_vec, x_vec, work.mask)
        while hits:
            low = hits & -hits
            idx = failing[low.bit_length() - 1]
            exact[idx].append(site)
            matched_here.append(idx)
            hits ^= low
        for out, vec in diff.items():
            reproduced = vec & obs_vec.get(out, 0) & ~x_vec.get(out, 0)
            while reproduced:
                low = reproduced & -reproduced
                covered.add((failing[low.bit_length() - 1], out))
                reproduced ^= low
        site_atoms[site] = frozenset(covered)
        sig_seen[signature] = (site, tuple(matched_here))

    analysis = PerTestAnalysis(
        netlist=netlist,
        patterns=patterns,
        datalog=datalog,
        sites=tuple(sites),
        atoms=atoms,
        site_atoms=site_atoms,
        exact_singletons={idx: tuple(v) for idx, v in exact.items()},
        flip_diff=flip_diff,
        _work_patterns=work,
        _work_base=work_base,
        _pos_of=pos_of,
        _observed_pos=observed_pos,
        _x_pos=x_pos,
        _obs_vec=obs_vec,
        _x_vec=x_vec,
        _ctx=ctx,
    )
    for site in sites:
        analysis._joint_cache[(frozenset((site,)), frozenset())] = flip_diff[site]
    return analysis


def pair_search(
    analysis: PerTestAnalysis,
    pattern_index: int,
    pool: Sequence[Site] | None = None,
    cap: int = 300,
    budget: Budget | None = None,
) -> list[tuple[Site, Site]]:
    """Site pairs whose joint assignment reproduces pattern ``t`` exactly.

    Used for failing patterns with no singleton explanation -- the
    signature of interacting defects (joint sensitization or masking).
    The pool defaults to candidate sites inside the fan-in cone of the
    pattern's failing outputs, ranked by single-flip overlap with the
    observed failures so that promising pairs are tried first.

    A ``budget`` bounds the pair sweep on top of ``cap``: each tried pair
    charges one expansion, and exhaustion ends the search with the matches
    found so far (the caller records the stage truncation).
    """
    observed = analysis.datalog.failing_outputs_of(pattern_index)
    if pool is None:
        cone = analysis.netlist.fanin_cone(observed)
        pool = [s for s in analysis.sites if s.net in cone]

    def overlap(site: Site) -> int:
        return len(analysis.diff_at(site, pattern_index) & observed)

    ranked = sorted(pool, key=overlap, reverse=True)
    matches: list[tuple[Site, Site]] = []
    tried = 0
    for a, b in combinations(ranked, 2):
        if tried >= cap:
            break
        if budget is not None:
            if tried and budget.exceeded():
                break
            budget.charge()
        tried += 1
        if analysis.subset_explains((a, b), pattern_index):
            matches.append((a, b))
    return matches
