"""Fault-model allocation for candidate sites.

Once the covering stage has located *where* the defects act, refinement
asks *what* each site is doing: for every candidate site it simulates the
concrete fault models consistent with the site's evidence -- stuck-at,
open (on branch sites), dominant bridge against a bounded aggressor pool,
and slow-to-rise/fall transitions -- scores each against the datalog, and
vindicates deterministic models contradicted by passing patterns.  A
model-free ``arbitrary`` hypothesis is always kept so that a byzantine
defect (the no-assumptions stress case) still yields a correctly located,
honestly labeled candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.circuit.netlist import Netlist, Site
from repro.core.budget import Budget
from repro.core.report import Hypothesis
from repro.core.scoring import match_counts, predicted_atoms
from repro.core.xcover import XCoverAnalysis
from repro.errors import OscillationError
from repro.faults.models import (
    BridgeDefect,
    OpenDefect,
    StuckAtDefect,
    TransitionDefect,
    TransitionKind,
)
from repro.sim.patterns import PatternSet
from repro.tester.datalog import Datalog


@dataclass(frozen=True)
class RefineConfig:
    """Knobs for the hypothesis allocation stage."""

    vindicate: bool = True
    max_aggressors: int = 8
    bridge_level_distance: int = 2
    try_bridges: bool = True
    try_transitions: bool = True


def arbitrary_hypothesis(site: Site, xc: XCoverAnalysis) -> Hypothesis:
    """The model-free fallback: located, no behavioral commitment."""
    own_atoms = xc.atoms_of(site)
    return Hypothesis(
        kind="arbitrary",
        site=site,
        hits=len(own_atoms),
        misses=len(xc.atoms - own_atoms),
        false_alarms=0,
    )


def allocate_hypotheses(
    netlist: Netlist,
    patterns: PatternSet,
    datalog: Datalog,
    site: Site,
    base_values: Mapping[str, int],
    xc: XCoverAnalysis,
    config: RefineConfig | None = None,
    budget: Budget | None = None,
) -> tuple[Hypothesis, ...]:
    """Ranked fault-model hypotheses for one candidate site.

    Under a ``budget`` every concrete-model simulation charges one
    expansion and is preceded by a check (after the first, so a site is
    never left without at least one concrete attempt); on exhaustion the
    remaining model families are skipped -- the always-kept ``arbitrary``
    fallback keeps the site reported.  The caller records the stage-level
    ``refine`` truncation.
    """
    config = config or RefineConfig()
    observed = xc.atoms
    failing = datalog.failing_indices

    hypotheses: list[Hypothesis] = []
    attempts = 0

    def exhausted() -> bool:
        return budget is not None and attempts > 0 and budget.exceeded() is not None

    def score(kind: str, defect, aggressor: str | None = None) -> None:
        nonlocal attempts
        if exhausted():
            return
        attempts += 1
        if budget is not None:
            budget.charge()
        try:
            predicted = predicted_atoms(netlist, patterns, defect, base_values)
        except OscillationError:
            return
        hits, misses, fa = match_counts(
            predicted, observed, failing, datalog.n_observed, datalog.x_atoms
        )
        if hits == 0:
            return
        if config.vindicate and fa > 0:
            return  # deterministic model contradicted by a passing pattern
        hypotheses.append(
            Hypothesis(
                kind=kind,
                site=site,
                aggressor=aggressor,
                hits=hits,
                misses=misses,
                false_alarms=fa,
            )
        )

    # Stuck-at on stems, "open" labeling on branches (a stuck branch is a
    # broken connection; the stem and sibling branches remain healthy).
    for value in (0, 1):
        if site.is_stem:
            score(f"sa{value}", StuckAtDefect(site, value))
        else:
            score(f"open{value}", OpenDefect(site, value))

    if config.try_transitions:
        score("str", TransitionDefect(site, TransitionKind.SLOW_TO_RISE))
        score("stf", TransitionDefect(site, TransitionKind.SLOW_TO_FALL))

    if config.try_bridges and site.is_stem and not netlist.is_input(site.net):
        for aggressor in _aggressor_pool(netlist, patterns, site, base_values, xc, config):
            score(
                "bridge",
                BridgeDefect(site.net, aggressor),
                aggressor=aggressor,
            )

    hypotheses.sort(key=lambda h: h.score, reverse=True)
    return tuple(hypotheses) + (arbitrary_hypothesis(site, xc),)


def _aggressor_pool(
    netlist: Netlist,
    patterns: PatternSet,
    site: Site,
    base_values: Mapping[str, int],
    xc: XCoverAnalysis,
    config: RefineConfig,
) -> list[str]:
    """Bounded dominant-bridge aggressor candidates for a victim site.

    Level proximity proxies layout adjacency (as in the bridge fault
    universe); the aggressor must disagree with the victim on at least one
    failing pattern the victim can explain (otherwise the bridge is never
    activated there), and must not close a structural loop.
    """
    victim = site.net
    victim_level = netlist.level(victim)
    relevant = {idx for idx, _out in xc.atoms_of(site)}
    if not relevant:
        relevant = set(xc.datalog.failing_indices)
    relevance_mask = 0
    for idx in relevant:
        relevance_mask |= 1 << idx
    victim_cone = netlist.fanout_cone([victim])
    scored: list[tuple[int, str]] = []
    for net in netlist.nets():
        if net == victim or net in victim_cone:
            continue
        if abs(netlist.level(net) - victim_level) > config.bridge_level_distance:
            continue
        disagreement = (base_values[net] ^ base_values[victim]) & relevance_mask
        count = bin(disagreement).count("1")
        if count:
            scored.append((count, net))
    scored.sort(key=lambda kv: (-kv[0], kv[1]))
    return [net for _count, net in scored[: config.max_aggressors]]
