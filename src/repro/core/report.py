"""Diagnosis result data structures.

A diagnosis run produces a :class:`DiagnosisReport`:

- ranked :class:`Multiplet` s -- minimal site sets that jointly explain
  every observed failing pattern,
- ranked :class:`Candidate` s -- individual sites with the fault-model
  :class:`Hypothesis` list that the refinement stage allocated to them,
- bookkeeping (uncovered fail atoms, SLAT statistics, timings) consumed by
  the campaign metrics and the experiment tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.circuit.netlist import Site
from repro.core.budget import COMPLETENESS_EXACT, Truncation


@dataclass(frozen=True)
class Hypothesis:
    """One concrete fault-model explanation attached to a candidate site.

    ``kind`` is one of ``sa0``, ``sa1``, ``open0``, ``open1``, ``bridge``
    (with ``aggressor`` set), ``str``, ``stf`` or ``arbitrary``.  Scores
    compare the hypothesis' simulated response against the datalog:

    - ``hits``: observed fail atoms the hypothesis reproduces,
    - ``misses``: observed fail atoms it does not reproduce (possibly
      owned by another defect of the multiplet -- not disqualifying),
    - ``false_alarms``: predicted failures on patterns observed passing
      (disqualifying for always-active models, see vindication).
    """

    kind: str
    site: Site
    aggressor: str | None = None
    hits: int = 0
    misses: int = 0
    false_alarms: int = 0

    @property
    def precision(self) -> float:
        predicted = self.hits + self.false_alarms
        return self.hits / predicted if predicted else 0.0

    @property
    def recall(self) -> float:
        observed = self.hits + self.misses
        return self.hits / observed if observed else 0.0

    @property
    def score(self) -> tuple[float, float, int]:
        """Sort key: higher is better."""
        return (self.precision, self.recall, -self.false_alarms)

    def describe(self) -> str:
        tag = self.kind if self.aggressor is None else f"bridge<-{self.aggressor}"
        return (
            f"{self.site} {tag} "
            f"(hits={self.hits}, misses={self.misses}, fa={self.false_alarms})"
        )


@dataclass(frozen=True)
class Validation:
    """Oracle verdict for one candidate: its best concrete model was
    resimulated against the *raw* (pre-sanitized) datalog.

    ``verdict`` is ``"confirmed"`` (reproduces observed failures, predicts
    none on observed-passing strobes), ``"plausible"`` (reproduces some
    failures but also predicts failures the raw log saw passing -- under
    noise that is expected of even a correct candidate, so it is not
    disqualifying), or ``"refuted"`` (reproduces no observed failure at
    all; the diagnosis demotes such candidates).  A model-free candidate
    cannot be resimulated and is ``"plausible"`` by construction.
    """

    verdict: str
    kind: str = "arbitrary"  #: hypothesis kind resimulated ("arbitrary" = none)
    hits: int = 0
    misses: int = 0
    false_alarms: int = 0

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "kind": self.kind,
            "hits": self.hits,
            "misses": self.misses,
            "false_alarms": self.false_alarms,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Validation":
        return cls(
            verdict=str(data.get("verdict", "plausible")),
            kind=str(data.get("kind", "arbitrary")),
            hits=int(data.get("hits", 0)),
            misses=int(data.get("misses", 0)),
            false_alarms=int(data.get("false_alarms", 0)),
        )


@dataclass(frozen=True)
class Candidate:
    """A suspected defect site with its ranked model hypotheses."""

    site: Site
    hypotheses: tuple[Hypothesis, ...]
    explained_atoms: int = 0
    #: Oracle verdict, present only after post-diagnosis validation.
    validation: Validation | None = None

    @property
    def best(self) -> Hypothesis | None:
        return self.hypotheses[0] if self.hypotheses else None

    @property
    def best_kind(self) -> str:
        return self.best.kind if self.best else "arbitrary"

    def describe(self) -> str:
        models = ", ".join(h.kind for h in self.hypotheses[:3]) or "arbitrary"
        return f"{self.site} [{models}]"


@dataclass(frozen=True)
class Multiplet:
    """A set of sites that jointly explains the observed failures."""

    sites: tuple[Site, ...]
    covered_atoms: int
    total_atoms: int
    iou: float = 0.0  #: joint-simulation match quality (0 when unavailable)

    @property
    def size(self) -> int:
        return len(self.sites)

    @property
    def complete(self) -> bool:
        return self.covered_atoms == self.total_atoms

    @property
    def rank_key(self) -> tuple:
        """Smaller first: incomplete last, small multiplets and high IoU first."""
        return (not self.complete, self.size, -self.iou, tuple(map(str, self.sites)))

    def describe(self) -> str:
        body = ", ".join(str(s) for s in self.sites)
        return (
            f"{{{body}}} covers {self.covered_atoms}/{self.total_atoms}"
            f" iou={self.iou:.2f}"
        )


@dataclass
class DiagnosisReport:
    """Complete outcome of one diagnosis run."""

    method: str
    circuit: str
    candidates: tuple[Candidate, ...] = ()
    multiplets: tuple[Multiplet, ...] = ()
    uncovered_atoms: frozenset[tuple[int, str]] = frozenset()
    stats: dict[str, float] = field(default_factory=dict)
    #: Anytime verdict: ``"exact"`` (every stage ran to completion --
    #: always the case without a budget), ``"truncated"`` (a count ceiling
    #: cut some stage short) or ``"deadline"`` (the wall clock or a
    #: cancellation did).  See :mod:`repro.core.budget`.
    completeness: str = COMPLETENESS_EXACT
    #: Per-stage records of what was cut short, in pipeline order.
    truncations: tuple[Truncation, ...] = ()
    #: Oracle consistency verdict, present only after post-diagnosis
    #: validation (:mod:`repro.core.oracle`): ``"confirmed"`` (the best
    #: multiplet's joint resimulation reproduces every raw fail atom with
    #: no failures predicted on observed-passing strobes), ``"partial"``,
    #: ``"refuted"``, or ``"unvalidated"`` (no concrete model to
    #: resimulate).  ``None`` means the oracle never ran.
    consistency: str | None = None
    #: Cover-cardinality claim of the exact engines (see
    #: :mod:`repro.core.hitting`): ``"optimal"`` (provably minimum over the
    #: structural pool), ``"bounded"`` (a structural cap limited the
    #: search) or ``"budget"`` (the budget cut it first).  ``None`` means
    #: the default greedy engine ran -- reports then serialize
    #: byte-identically to the historical format.
    optimality: str | None = None

    @property
    def is_exact(self) -> bool:
        return self.completeness == COMPLETENESS_EXACT

    @property
    def candidate_sites(self) -> frozenset[Site]:
        return frozenset(c.site for c in self.candidates)

    @property
    def best_multiplet(self) -> Multiplet | None:
        return self.multiplets[0] if self.multiplets else None

    @property
    def best_sites(self) -> frozenset[Site]:
        """Sites of the top-ranked multiplet (empty when none)."""
        best = self.best_multiplet
        return frozenset(best.sites) if best else frozenset()

    @property
    def resolution(self) -> int:
        """Number of reported candidate sites (smaller = sharper diagnosis)."""
        return len(self.candidates)

    @property
    def classification(self) -> str:
        """Coarse verdict for triage routing:

        - ``"passing"`` -- no failing evidence at all,
        - ``"explained"`` -- a complete multiplet reproduces every failure,
        - ``"partially-explained"`` -- candidates exist but some fail atoms
          stay uncovered (suspect more interacting defects than the search
          bound, or behavior beyond the site model),
        - ``"outside-model"`` -- the device fails but *no* candidate
          explains anything: the defect is outside the combinational site
          model (clock/scan-chain/supply problems), so physical analysis
          should not open the logic.  (This is the analogue of the
          empty-suspect-list signal intra-cell flows use to redirect PFA.)
        """
        failing = self.stats.get("n_failing_patterns", 0)
        if not failing and not self.uncovered_atoms and not self.candidates:
            return "passing"
        if not self.candidates:
            return "outside-model"
        best = self.best_multiplet
        if best is not None and best.complete and not self.uncovered_atoms:
            return "explained"
        return "partially-explained"

    def contains(self, sites: Iterable[Site]) -> bool:
        """True when every queried site appears among the candidates."""
        mine = self.candidate_sites
        return all(site in mine for site in sites)

    # -- serialization (for tool interop / archiving diagnosis sessions) ----

    def to_dict(self) -> dict:
        payload = {
            "method": self.method,
            "circuit": self.circuit,
            "candidates": [
                {
                    "site": str(c.site),
                    "explained_atoms": c.explained_atoms,
                    "hypotheses": [
                        {
                            "kind": h.kind,
                            "aggressor": h.aggressor,
                            "hits": h.hits,
                            "misses": h.misses,
                            "false_alarms": h.false_alarms,
                        }
                        for h in c.hypotheses
                    ],
                    # Only validated candidates carry the key, so reports
                    # from oracle-free runs stay byte-identical.
                    **(
                        {"validation": c.validation.to_dict()}
                        if c.validation is not None
                        else {}
                    ),
                }
                for c in self.candidates
            ],
            "multiplets": [
                {
                    "sites": [str(s) for s in m.sites],
                    "covered_atoms": m.covered_atoms,
                    "total_atoms": m.total_atoms,
                    "iou": m.iou,
                }
                for m in self.multiplets
            ],
            "uncovered_atoms": sorted(
                [idx, out] for idx, out in self.uncovered_atoms
            ),
            "stats": dict(self.stats),
        }
        # Emitted only for non-exact runs so that ungoverned reports stay
        # byte-identical to the historical serialization.
        if not self.is_exact or self.truncations:
            payload["completeness"] = self.completeness
            payload["truncations"] = [t.to_dict() for t in self.truncations]
        if self.consistency is not None:
            payload["consistency"] = self.consistency
        if self.optimality is not None:
            payload["optimality"] = self.optimality
        return payload

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: dict) -> "DiagnosisReport":
        candidates = tuple(
            Candidate(
                site=Site.parse(c["site"]),
                explained_atoms=c.get("explained_atoms", 0),
                hypotheses=tuple(
                    Hypothesis(
                        kind=h["kind"],
                        site=Site.parse(c["site"]),
                        aggressor=h.get("aggressor"),
                        hits=h.get("hits", 0),
                        misses=h.get("misses", 0),
                        false_alarms=h.get("false_alarms", 0),
                    )
                    for h in c.get("hypotheses", [])
                ),
                validation=(
                    Validation.from_dict(c["validation"])
                    if "validation" in c
                    else None
                ),
            )
            for c in data.get("candidates", [])
        )
        multiplets = tuple(
            Multiplet(
                sites=tuple(Site.parse(s) for s in m["sites"]),
                covered_atoms=m.get("covered_atoms", 0),
                total_atoms=m.get("total_atoms", 0),
                iou=m.get("iou", 0.0),
            )
            for m in data.get("multiplets", [])
        )
        return cls(
            method=data["method"],
            circuit=data["circuit"],
            candidates=candidates,
            multiplets=multiplets,
            uncovered_atoms=frozenset(
                (int(idx), out) for idx, out in data.get("uncovered_atoms", [])
            ),
            stats=dict(data.get("stats", {})),
            completeness=data.get("completeness", COMPLETENESS_EXACT),
            truncations=tuple(
                Truncation.from_dict(t) for t in data.get("truncations", [])
            ),
            consistency=data.get("consistency"),
            optimality=data.get("optimality"),
        )

    @classmethod
    def from_json(cls, text: str) -> "DiagnosisReport":
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        lines = [
            f"diagnosis[{self.method}] on {self.circuit}: "
            f"{len(self.candidates)} candidate sites, "
            f"{len(self.multiplets)} multiplets, "
            f"{len(self.uncovered_atoms)} uncovered fail atoms",
        ]
        if not self.is_exact:
            lines[0] += f" [{self.completeness}]"
            for trunc in self.truncations:
                lines.append("  truncated: " + trunc.describe())
        if self.optimality is not None:
            lines[0] += f" [optimality={self.optimality}]"
        if self.consistency is not None:
            lines.append(f"  oracle: {self.consistency}")
        for multiplet in self.multiplets[:5]:
            lines.append("  multiplet " + multiplet.describe())
        for candidate in self.candidates[:10]:
            lines.append("  site " + candidate.describe())
        return "\n".join(lines)
