"""Response-match metrics and passing-pattern vindication.

Scoring compares the simulated response of a hypothesized fault (or a
whole multiplet of them) against the datalog at the granularity of fail
atoms -- (pattern, output) pairs:

- ``hits``: observed fail atoms the hypothesis reproduces,
- ``misses``: observed atoms it does not reproduce,
- ``false_alarms``: failures predicted on patterns the tester saw passing.

Vindication is the classic effect-cause step of using *passing* patterns
as exculpatory evidence: a deterministic, always-active model (stuck-at,
open, dominant bridge, gross delay) that predicts a failure on an observed
passing pattern is contradicted by silicon and removed.  Under multiple
defects this is slightly aggressive -- another defect could in principle
mask the predicted failure -- so it is switchable
(:attr:`~repro.core.diagnose.DiagnosisConfig.vindicate`, measured by
ablation C) and never removes the model-free ``arbitrary`` hypothesis,
preserving the no-assumptions envelope.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.circuit.netlist import Netlist
from repro.core.xcover import Atom
from repro.errors import OscillationError
from repro.faults.injection import FaultyCircuit
from repro.faults.models import Defect
from repro.sim.faultsim import defect_output_diff
from repro.sim.patterns import PatternSet


def diff_to_atoms(diff: Mapping[str, int]) -> frozenset[Atom]:
    """Expand per-output mismatch vectors into (pattern, output) atoms."""
    atoms: set[Atom] = set()
    for out, vec in diff.items():
        v = vec
        while v:
            low = v & -v
            atoms.add((low.bit_length() - 1, out))
            v ^= low
    return frozenset(atoms)


def predicted_atoms(
    netlist: Netlist,
    patterns: PatternSet,
    defect: Defect,
    base_values: Mapping[str, int],
) -> frozenset[Atom]:
    """Fail atoms the single ``defect`` would produce on this test set."""
    diff = defect_output_diff(netlist, patterns, defect, base_values)
    return diff_to_atoms(diff)


def match_counts(
    predicted: frozenset[Atom],
    observed: frozenset[Atom],
    failing_indices: Iterable[int],
    n_observed: int | None = None,
    x_atoms: frozenset[Atom] = frozenset(),
) -> tuple[int, int, int]:
    """(hits, misses, false_alarms) of a predicted response.

    ``false_alarms`` counts predicted atoms on patterns with an *observed*
    pass: patterns at index >= ``n_observed`` (an ATE-truncated fail log)
    carry no evidence either way and never vindicate.  Predicted atoms on
    failing patterns at unobserved outputs are tolerated (another defect
    of the multiplet may mask them) and count neither way.  ``x_atoms``
    (strobes the ingestion sanitizer quarantined or the compactor masked)
    are evidence-free the same way: a prediction there neither hits nor
    vindicates.
    """
    failing = set(failing_indices)
    hits = len(predicted & observed)
    misses = len(observed - predicted)
    false_alarms = sum(
        1
        for idx, out in predicted - observed
        if idx not in failing
        and (n_observed is None or idx < n_observed)
        and (idx, out) not in x_atoms
    )
    return hits, misses, false_alarms


def atoms_iou(predicted: frozenset[Atom], observed: frozenset[Atom]) -> float:
    """Intersection-over-union response similarity (1.0 = perfect match)."""
    union = predicted | observed
    if not union:
        return 1.0
    return len(predicted & observed) / len(union)


def multiplet_iou(
    netlist: Netlist,
    patterns: PatternSet,
    defects: Iterable[Defect],
    observed: frozenset[Atom],
    base_values: Mapping[str, int],
) -> float | None:
    """Joint-simulation IoU of a concrete multiplet, or None if unsimulable."""
    defects = list(defects)
    if not defects:
        return None
    try:
        faulty = FaultyCircuit(netlist, defects).simulate_outputs(patterns)
    except OscillationError:
        return None
    mask = patterns.mask
    diff = {
        out: (faulty[out] ^ base_values[out]) & mask
        for out in netlist.outputs
        if (faulty[out] ^ base_values[out]) & mask
    }
    return atoms_iou(diff_to_atoms(diff), observed)
