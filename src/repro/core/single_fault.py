"""Classic single-fault effect-cause diagnosis (comparison baseline).

The textbook pre-multiple-defect flow: simulate every (collapsed) stuck-at
fault in the structural envelope and rank by how closely its full response
matches the datalog; a candidate whose response matches *exactly* is the
classic "perfect match" diagnosis.  With two or more defects present no
single fault reproduces the composite response, so this baseline degrades
-- precisely the failure mode the DAC 2008 method was built to remove, and
the comparison axis of Table 4 / Figure 1.
"""

from __future__ import annotations

import time

from repro.circuit.netlist import Netlist
from repro.core.backtrace import candidate_sites
from repro.core.report import Candidate, DiagnosisReport, Hypothesis, Multiplet
from repro.core.scoring import atoms_iou, match_counts, predicted_atoms
from repro.errors import DiagnosisError
from repro.faults.models import StuckAtDefect
from repro.sim.cache import sim_context
from repro.sim.patterns import PatternSet
from repro.tester.datalog import Datalog

METHOD_NAME = "single-stuck-at"


def diagnose_single_fault(
    netlist: Netlist,
    patterns: PatternSet,
    datalog: Datalog,
    top_k: int = 10,
    include_branches: bool = True,
) -> DiagnosisReport:
    """Best-matching single stuck-at explanations for the datalog."""
    if datalog.n_patterns != patterns.n:
        raise DiagnosisError("datalog/test set pattern count mismatch")
    started = time.perf_counter()
    if datalog.is_passing_device:
        return DiagnosisReport(method=METHOD_NAME, circuit=netlist.name)

    base_values = sim_context(netlist, patterns).base
    observed = frozenset(datalog.fail_atoms())
    failing = datalog.failing_indices

    scored: list[tuple[float, Hypothesis]] = []
    for site in candidate_sites(netlist, datalog, include_branches):
        for value in (0, 1):
            fault = StuckAtDefect(site, value)
            predicted = predicted_atoms(netlist, patterns, fault, base_values)
            if not predicted & observed:
                continue
            hits, misses, fa = match_counts(
                predicted, observed, failing, datalog.n_observed, datalog.x_atoms
            )
            iou = atoms_iou(predicted, observed)
            scored.append(
                (
                    iou,
                    Hypothesis(
                        kind=f"sa{value}",
                        site=site,
                        hits=hits,
                        misses=misses,
                        false_alarms=fa,
                    ),
                )
            )
    scored.sort(key=lambda pair: (-pair[0], str(pair[1].site), pair[1].kind))

    exact = [h for iou, h in scored if iou == 1.0]
    kept = exact if exact else [h for _iou, h in scored[:top_k]]

    by_site: dict = {}
    for h in kept:
        by_site.setdefault(h.site, []).append(h)
    candidates = tuple(
        Candidate(site=site, hypotheses=tuple(hyps), explained_atoms=hyps[0].hits)
        for site, hyps in by_site.items()
    )
    multiplets = tuple(
        Multiplet(
            sites=(h.site,),
            covered_atoms=h.hits,
            total_atoms=len(observed),
            iou=iou,
        )
        for iou, h in scored[: max(top_k, len(exact))]
        if h in kept
    )
    best_cover = max((m.covered_atoms for m in multiplets), default=0)
    stats = {
        "seconds": time.perf_counter() - started,
        "n_exact_matches": float(len(exact)),
        "best_iou": scored[0][0] if scored else 0.0,
    }
    uncovered: frozenset = frozenset()
    if multiplets and best_cover < len(observed):
        # The baseline cannot explain everything: report the residue of the
        # best candidate as uncovered evidence.
        best = max(multiplets, key=lambda m: m.covered_atoms)
        best_h = next(h for h in kept if h.site == best.sites[0])
        predicted = predicted_atoms(
            netlist,
            patterns,
            StuckAtDefect(best_h.site, int(best_h.kind[-1])),
            base_values,
        )
        uncovered = observed - predicted
    return DiagnosisReport(
        method=METHOD_NAME,
        circuit=netlist.name,
        candidates=candidates,
        multiplets=multiplets,
        uncovered_atoms=uncovered,
        stats=stats,
    )
