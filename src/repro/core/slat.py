"""SLAT / per-test multiple-fault diagnosis (comparison baseline).

The Single-Location-At-a-Time paradigm (Bartenstein et al.; Huisman's
per-test diagnosis) assumes that **each failing pattern, taken alone, is
exactly explainable by one stuck-at fault**: a fault explains pattern *t*
when its simulated failing outputs at *t* equal the observed failing
outputs at *t* exactly.  Patterns with at least one such explanation are
*SLAT patterns*; a small multiplet of faults is then chosen to cover all
SLAT patterns.

The assumption buys speed and simplicity but breaks whenever defects
interact on a pattern (joint sensitization, masking, reconvergent mixing)
or behave unlike stuck-at faults: those patterns become non-SLAT and drop
out of the explanation entirely, taking the defects that caused them
along.  The reproduced paper's central claim is the removal of exactly
this assumption; Table 4 quantifies the gap.
"""

from __future__ import annotations

import time

from repro.circuit.netlist import Netlist
from repro.core.backtrace import candidate_sites
from repro.core.report import Candidate, DiagnosisReport, Hypothesis, Multiplet

from repro.errors import DiagnosisError
from repro.faults.models import StuckAtDefect
from repro.sim.faultsim import defect_output_diff
from repro.sim.logicsim import simulate
from repro.sim.patterns import PatternSet
from repro.tester.datalog import Datalog

METHOD_NAME = "slat"


def diagnose_slat(
    netlist: Netlist,
    patterns: PatternSet,
    datalog: Datalog,
    include_branches: bool = True,
    max_multiplet_size: int = 8,
) -> DiagnosisReport:
    """Per-test (SLAT) diagnosis over the stuck-at universe in the envelope."""
    if datalog.n_patterns != patterns.n:
        raise DiagnosisError("datalog/test set pattern count mismatch")
    started = time.perf_counter()
    if datalog.is_passing_device:
        return DiagnosisReport(method=METHOD_NAME, circuit=netlist.name)

    base_values = simulate(netlist, patterns)
    failing = list(datalog.failing_indices)
    observed_by_pattern = {
        idx: datalog.failing_outputs_of(idx) for idx in failing
    }

    # Per-test exact matching: fault f explains pattern t iff its predicted
    # failing outputs at t equal the observed failing outputs at t.
    explains: dict[StuckAtDefect, set[int]] = {}
    for site in candidate_sites(netlist, datalog, include_branches):
        for value in (0, 1):
            fault = StuckAtDefect(site, value)
            diff = defect_output_diff(netlist, patterns, fault, base_values)
            matched: set[int] = set()
            for idx in failing:
                predicted_outs = frozenset(
                    out for out, vec in diff.items() if (vec >> idx) & 1
                )
                if predicted_outs and predicted_outs == observed_by_pattern[idx]:
                    matched.add(idx)
            if matched:
                explains[fault] = matched

    slat_patterns: set[int] = set()
    for matched in explains.values():
        slat_patterns |= matched
    non_slat = [idx for idx in failing if idx not in slat_patterns]

    # Greedy multiplet cover of the SLAT patterns.
    chosen: list[StuckAtDefect] = []
    covered: set[int] = set()
    pool = dict(explains)
    while covered != slat_patterns and len(chosen) < max_multiplet_size:
        best_fault, best_gain = None, 0
        for fault, matched in pool.items():
            gain = len(matched - covered)
            if gain > best_gain or (
                gain == best_gain and gain and str(fault) < str(best_fault)
            ):
                best_fault, best_gain = fault, gain
        if best_fault is None or best_gain == 0:
            break
        chosen.append(best_fault)
        covered |= pool.pop(best_fault)

    observed_atoms = frozenset(datalog.fail_atoms())
    covered_atoms = {
        (idx, out) for idx in covered for out in observed_by_pattern[idx]
    }
    uncovered = observed_atoms - covered_atoms

    # Expand each chosen fault into its tie group: faults explaining the same
    # pattern set are indistinguishable per-test and are all reported (this
    # is the SLAT candidate *set*, the baseline's resolution statistic).
    expanded: list[StuckAtDefect] = []
    seen_sites = set()
    for fault in chosen:
        group = [f for f, m in explains.items() if m == explains[fault]]
        group.sort(key=str)
        for member in group[:16]:
            if member.site not in seen_sites:
                seen_sites.add(member.site)
                expanded.append(member)

    candidates = []
    for fault in expanded:
        hypothesis = Hypothesis(
            kind=f"sa{fault.value}",
            site=fault.site,
            hits=sum(len(observed_by_pattern[i]) for i in explains[fault]),
            misses=len(observed_atoms)
            - sum(len(observed_by_pattern[i]) for i in explains[fault]),
            false_alarms=0,
        )
        candidates.append(
            Candidate(
                site=fault.site,
                hypotheses=(hypothesis,),
                explained_atoms=hypothesis.hits,
            )
        )
    candidates.sort(key=lambda c: (-c.explained_atoms, str(c.site)))

    multiplets = ()
    if chosen:
        multiplets = (
            Multiplet(
                sites=tuple(c.site for c in candidates),
                covered_atoms=len(covered_atoms),
                total_atoms=len(observed_atoms),
                iou=len(covered_atoms) / len(observed_atoms) if observed_atoms else 1.0,
            ),
        )

    stats = {
        "seconds": time.perf_counter() - started,
        "n_slat_patterns": float(len(slat_patterns)),
        "n_non_slat_patterns": float(len(non_slat)),
        "slat_fraction": len(slat_patterns) / len(failing) if failing else 1.0,
    }
    return DiagnosisReport(
        method=METHOD_NAME,
        circuit=netlist.name,
        candidates=tuple(candidates),
        multiplets=multiplets,
        uncovered_atoms=frozenset(uncovered),
        stats=stats,
    )
