"""X-injection coverage analysis.

The assumption-free core of the diagnosis.  Forcing ``X`` at a set of
sites and three-valued simulating the *fault-free* netlist
over-approximates the joint behavior of **any** defects at those sites:
every net either keeps its fault-free binary value or is X (monotonicity),
and every output a real defect set could corrupt is X.  Consequently:

- a site set ``S`` *can explain* failing pattern ``t`` iff joint X
  injection at ``S`` makes every observed failing output of ``t`` X;
- this predicate is monotone in ``S``, which the covering stage exploits;
- for a single defect the individual per-site reach is already exact,
  but with multiple defects a site's error can need another defect to
  unblock its propagation path (masking), so *joint* reach is the sound
  notion -- the distinction measured by ablation A.

All reaches are computed bit-parallel over the whole pattern set, cone
restricted for the single-site case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.circuit.gates import tv_all_x, tv_xmask
from repro.circuit.netlist import Netlist, Site
from repro.core.backtrace import candidate_sites
from repro.core.budget import Budget
from repro.errors import DiagnosisError
from repro.sim.cache import active_context, sim_context
from repro.sim.patterns import PatternSet
from repro.sim.threeval import simulate3, x_injection_reach
from repro.tester.datalog import Datalog

Atom = tuple[int, str]  # (pattern index, output net)


@dataclass
class XCoverAnalysis:
    """Per-site and joint X reach against one datalog."""

    netlist: Netlist
    patterns: PatternSet
    datalog: Datalog
    base_values: dict[str, int]
    sites: tuple[Site, ...]
    reach: dict[Site, dict[str, int]]
    atoms: frozenset[Atom]
    site_atoms: dict[Site, frozenset[Atom]] = field(default_factory=dict)

    # -- single-site queries ---------------------------------------------------

    def atoms_of(self, site: Site) -> frozenset[Atom]:
        """Observed fail atoms individually coverable by ``site``."""
        return self.site_atoms.get(site, frozenset())

    def covers_pattern(self, site: Site, pattern_index: int) -> bool:
        """Can ``site`` alone contribute to explaining this failing pattern?"""
        return any(idx == pattern_index for idx, _out in self.atoms_of(site))

    def pattern_candidates(self, pattern_index: int) -> list[Site]:
        """Sites individually able to cover >=1 atom of this pattern."""
        return [s for s in self.sites if self.covers_pattern(s, pattern_index)]

    # -- joint queries ---------------------------------------------------------------

    def joint_reach(self, sites: Iterable[Site]) -> dict[str, int]:
        """Per-output X vectors under simultaneous X injection at ``sites``."""
        overrides = {site: tv_all_x(self.patterns.mask) for site in sites}
        if not overrides:
            return {}
        values3 = simulate3(self.netlist, self.patterns, overrides)
        out: dict[str, int] = {}
        for net in self.netlist.outputs:
            xm = tv_xmask(values3[net])
            if xm:
                out[net] = xm
        return out

    def joint_covered_atoms(self, sites: Iterable[Site]) -> frozenset[Atom]:
        """Observed fail atoms explainable by defects at all of ``sites``."""
        sites = list(sites)
        if not sites:
            return frozenset()
        if len(sites) == 1:
            return self.atoms_of(sites[0])
        reach = self.joint_reach(sites)
        covered = {
            (idx, out)
            for idx, out in self.atoms
            if reach.get(out, 0) >> idx & 1
        }
        return frozenset(covered)

    def explains_all(self, sites: Iterable[Site]) -> bool:
        return self.joint_covered_atoms(sites) == self.atoms


def build_xcover(
    netlist: Netlist,
    patterns: PatternSet,
    datalog: Datalog,
    include_branches: bool = True,
    base_values: Mapping[str, int] | None = None,
    restrict_sites: Sequence[Site] | None = None,
    budget: Budget | None = None,
) -> XCoverAnalysis:
    """Run the per-site X analysis over the structural candidate envelope.

    Under a ``budget`` the per-site X-reach sweep is checked per site
    (each charged as one expansion); on exhaustion the analysis covers
    only the sites swept so far and an ``xcover`` truncation is recorded.
    """
    if datalog.n_patterns != patterns.n:
        raise DiagnosisError(
            f"datalog covers {datalog.n_patterns} patterns, test set has {patterns.n}"
        )
    if base_values is None:
        ctx = sim_context(netlist, patterns)
        base_values = ctx.base
    else:
        # Memoized X reach is only valid against the context's own base.
        ctx = active_context(netlist, patterns, base_values)
    if restrict_sites is None:
        sites = candidate_sites(netlist, datalog, include_branches, budget=budget)
    else:
        sites = list(restrict_sites)
    atoms = frozenset(datalog.fail_atoms())

    reach: dict[Site, dict[str, int]] = {}
    site_atoms: dict[Site, frozenset[Atom]] = {}
    for done, site in enumerate(sites):
        if (
            budget is not None
            and done
            and budget.stop("xcover", done, len(sites))
        ):
            sites = sites[:done]
            break
        if budget is not None:
            # Charged per site regardless of memo warmth, so anytime
            # truncation points stay deterministic across cache states.
            budget.charge()
        if ctx is not None:
            r = ctx.x_reach(site)
        else:
            r = x_injection_reach(netlist, patterns, site, base_values)
        reach[site] = r
        covered = {
            (idx, out) for idx, out in atoms if r.get(out, 0) >> idx & 1
        }
        site_atoms[site] = frozenset(covered)

    return XCoverAnalysis(
        netlist=netlist,
        patterns=patterns,
        datalog=datalog,
        base_values=dict(base_values),
        sites=tuple(sites),
        reach=reach,
        atoms=atoms,
        site_atoms=site_atoms,
    )
