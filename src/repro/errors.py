"""Exception hierarchy for the :mod:`repro` package.

Every error raised by library code derives from :class:`ReproError` so that
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate specific failure kinds.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class NetlistError(ReproError):
    """A netlist is structurally invalid (dangling net, cycle, bad arity...)."""


class ParseError(NetlistError):
    """A circuit description file could not be parsed.

    Carries the offending line number when available.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """A simulation could not be carried out (width mismatch, unknown net...)."""


class OscillationError(SimulationError):
    """A faulty circuit failed to reach a stable state.

    Raised by two-valued multi-defect simulation when an injected defect
    (typically a bridging fault whose aggressor lies in the victim's fanout
    cone) creates a combinational loop that oscillates.  Three-valued
    simulation resolves the same situation to ``X`` instead of raising.
    """


class FaultModelError(ReproError):
    """A fault or defect description is inconsistent with the netlist."""


class AtpgError(ReproError):
    """Test generation failed in an unexpected way (not mere untestability)."""


class DiagnosisError(ReproError):
    """The diagnosis engine was driven with inconsistent inputs."""


class DatalogError(ReproError):
    """A tester datalog is malformed or inconsistent with the circuit."""
