"""Exception hierarchy for the :mod:`repro` package.

Every error raised by library code derives from :class:`ReproError` so that
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate specific failure kinds.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class NetlistError(ReproError):
    """A netlist is structurally invalid (dangling net, cycle, bad arity...)."""


class CircuitError(NetlistError):
    """The circuit graph violates the combinational contract.

    Raised at build time when a netlist contains a combinational loop --
    the message names the nets along one offending cycle so the feedback
    path can be found in the source description instead of surfacing later
    as an oscillating simulation or a runaway levelization.
    """

    def __init__(self, message: str, cycle: tuple[str, ...] = ()):
        self.cycle = tuple(cycle)
        super().__init__(message)


class ParseError(NetlistError):
    """A circuit description file could not be parsed.

    Carries the offending line number when available.
    """

    def __init__(self, message: str, line: int | None = None):
        self.line = line
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class SimulationError(ReproError):
    """A simulation could not be carried out (width mismatch, unknown net...)."""


class OscillationError(SimulationError):
    """A faulty circuit failed to reach a stable state.

    Raised by two-valued multi-defect simulation when an injected defect
    (typically a bridging fault whose aggressor lies in the victim's fanout
    cone) creates a combinational loop that oscillates.  Three-valued
    simulation resolves the same situation to ``X`` instead of raising.
    """


class FaultModelError(ReproError):
    """A fault or defect description is inconsistent with the netlist."""


class AtpgError(ReproError):
    """Test generation failed in an unexpected way (not mere untestability)."""


class DiagnosisError(ReproError):
    """The diagnosis engine was driven with inconsistent inputs."""


class DatalogError(ReproError):
    """A tester datalog is malformed or inconsistent with the circuit."""


class JournalError(ReproError):
    """A campaign trial journal cannot be read or does not match the run."""


class ChaosError(ReproError):
    """A chaos fault-plan spec string is malformed.

    Distinct from :class:`~repro.chaos.plan.InjectedFault` (an
    ``OSError`` subclass), which is a fault the plan *injects*; this one
    means the plan itself could not be built.
    """


class ServeError(ReproError):
    """The diagnosis daemon was configured or driven inconsistently.

    Raised for malformed job submissions, unknown QoS classes, and other
    service-level misuse; the HTTP layer maps instances to ``400`` responses
    and the ``repro serve`` CLI maps the family to documented exit codes.
    """


class BindError(ServeError):
    """The daemon could not bind its listen address (port taken, bad host).

    Kept distinct from the generic :class:`ServeError` so ``repro serve``
    can exit with a dedicated code: a supervisor restarting the daemon
    treats "address in use" differently from "bad configuration".
    """


#: Failure causes that may succeed on a retry (environment-induced: a
#: worker killed by the OS, a machine under load blowing a deadline).
#: Everything else is deterministic for a given trial seed and retrying
#: would only reproduce the same failure.  Notably ``"deadline"`` -- a
#: trial killed *despite* an armed in-process engine deadline -- is
#: deterministic: the overrun means heavy work outside the governed
#: pipeline, which a retry would only replay against the same wall.
TRANSIENT_CAUSES = frozenset({"crash", "timeout"})


class TrialError(ReproError):
    """Terminal failure of one campaign trial inside the resilient runner.

    Unlike the other exceptions in this module, a ``TrialError`` is as much
    a *record* as an exception: the runner stores instances on the campaign
    result (and in the trial journal) so a sweep can complete while still
    accounting for every trial that did not.

    ``cause`` is a short machine-readable tag:

    - ``"timeout"``  -- the trial exceeded the per-trial wall-clock budget
      and its worker was killed,
    - ``"deadline"`` -- the worker was killed at the wall-clock budget even
      though an in-process engine deadline was armed below it; the engine
      should have returned a partial report, so the overrun is
      deterministic and the trial is not retried,
    - ``"crash"``    -- the worker process died without reporting a result
      (segfault-equivalent, OOM kill, unpicklable payload),
    - ``"oscillation"`` / ``"fault-model"`` / ``"diagnosis"`` -- a
      deterministic in-trial error of the corresponding exception family,
    - ``"io"``       -- an I/O failure (journal append, result channel,
      chaos-injected disk error); deterministic for a given trial, but
      surfaced with its own tag so operators can tell a sick disk from a
      sick diagnosis,
    - ``"exception"`` -- any other in-trial exception.
    """

    def __init__(
        self,
        message: str,
        *,
        circuit: str = "",
        trial: int = -1,
        seed: int = -1,
        cause: str = "exception",
        attempts: int = 1,
    ):
        super().__init__(message)
        self.circuit = circuit
        self.trial = trial
        self.seed = seed
        self.cause = cause
        self.attempts = attempts

    @property
    def is_transient(self) -> bool:
        return self.cause in TRANSIENT_CAUSES

    def to_dict(self) -> dict:
        return {
            "message": str(self),
            "circuit": self.circuit,
            "trial": self.trial,
            "seed": self.seed,
            "cause": self.cause,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrialError":
        return cls(
            str(payload.get("message", "trial failed")),
            circuit=str(payload.get("circuit", "")),
            trial=int(payload.get("trial", -1)),
            seed=int(payload.get("seed", -1)),
            cause=str(payload.get("cause", "exception")),
            attempts=int(payload.get("attempts", 1)),
        )


def classify_cause(exc: BaseException) -> str:
    """Map an in-trial exception to a :class:`TrialError` cause tag."""
    if isinstance(exc, TrialError):
        return exc.cause  # a re-raised trial failure keeps its taxonomy
    if isinstance(exc, OscillationError):
        return "oscillation"
    if isinstance(exc, FaultModelError):
        return "fault-model"
    if isinstance(exc, DiagnosisError):
        return "diagnosis"
    if isinstance(exc, (OSError, EOFError)):
        return "io"
    return "exception"
