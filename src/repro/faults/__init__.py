"""Fault models, defect emulation and fault-universe services.

- :mod:`repro.faults.models` -- the defect/fault class hierarchy with the
  simulation hooks that define each behavior,
- :mod:`repro.faults.injection` -- :class:`FaultyCircuit`, the multi-defect
  device-under-test emulator,
- :mod:`repro.faults.universe` -- fault list enumeration,
- :mod:`repro.faults.collapse` -- structural stuck-at equivalence collapsing.
"""

from repro.faults.models import (
    BridgeKind,
    TransitionKind,
    Defect,
    StuckAtDefect,
    BridgeDefect,
    OpenDefect,
    TransitionDefect,
    ByzantineDefect,
)
from repro.faults.injection import FaultyCircuit
from repro.faults.universe import stuck_at_universe, transition_universe, bridge_pairs
from repro.faults.collapse import collapse_stuck_at

__all__ = [
    "BridgeKind",
    "TransitionKind",
    "Defect",
    "StuckAtDefect",
    "BridgeDefect",
    "OpenDefect",
    "TransitionDefect",
    "ByzantineDefect",
    "FaultyCircuit",
    "stuck_at_universe",
    "transition_universe",
    "bridge_pairs",
    "collapse_stuck_at",
]
