"""Structural stuck-at fault collapsing.

Implements classic equivalence collapsing over the stuck-at universe:

- ``AND``: sa0 on any input is equivalent to sa0 on the output,
- ``NAND``: input sa0 == output sa1,
- ``OR``: input sa1 == output sa1,
- ``NOR``: input sa1 == output sa0,
- ``BUF``/``NOT``: inputs and outputs pairwise equivalent (with inversion),
- a fanout branch feeding the *only* reader of a net is the stem itself
  (already enforced by the :class:`~repro.circuit.netlist.Site`
  enumeration, which only creates branch sites on multi-fanout nets).

XOR/XNOR/MUX gates admit no structural equivalences and are left alone.
Only equivalence (not dominance) collapsing is performed: diagnosis wants
candidate *classes* whose members are indistinguishable by any test, and
dominance would merge distinguishable faults.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import GateKind
from repro.circuit.netlist import Netlist, Site
from repro.faults.models import StuckAtDefect

_FaultKey = tuple[Site, int]


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[_FaultKey, _FaultKey] = {}

    def add(self, key: _FaultKey) -> None:
        self._parent.setdefault(key, key)

    def find(self, key: _FaultKey) -> _FaultKey:
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:  # path compression
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: _FaultKey, b: _FaultKey) -> None:
        self.add(a)
        self.add(b)
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[rb] = ra

    def classes(self) -> dict[_FaultKey, list[_FaultKey]]:
        groups: dict[_FaultKey, list[_FaultKey]] = {}
        for key in self._parent:
            groups.setdefault(self.find(key), []).append(key)
        return groups


@dataclass(frozen=True)
class CollapseResult:
    """Outcome of stuck-at collapsing."""

    classes: tuple[tuple[StuckAtDefect, ...], ...]
    representative: dict[StuckAtDefect, StuckAtDefect]

    @property
    def representatives(self) -> list[StuckAtDefect]:
        return [cls[0] for cls in self.classes]

    def equivalent(self, a: StuckAtDefect, b: StuckAtDefect) -> bool:
        return self.representative[a] == self.representative[b]

    @property
    def collapse_ratio(self) -> float:
        total = sum(len(cls) for cls in self.classes)
        return len(self.classes) / total if total else 1.0


def _input_site(netlist: Netlist, gate_out: str, pin: int, src: str) -> Site:
    if netlist.fanout_count(src) > 1:
        return Site(src, (gate_out, pin))
    return Site(src)


def collapse_stuck_at(netlist: Netlist, include_branches: bool = True) -> CollapseResult:
    """Equivalence-collapse the stuck-at universe of ``netlist``."""
    uf = _UnionFind()
    for site in netlist.sites(include_branches=include_branches):
        uf.add((site, 0))
        uf.add((site, 1))

    for out_net in netlist.topo_order:
        gate = netlist.gates[out_net]
        out0, out1 = (Site(out_net), 0), (Site(out_net), 1)
        # Without branch sites, a multi-fanout stem must NOT be merged with a
        # single reader's gate output (the stem fault is observable through
        # the sibling branches too) -- drop those pins from the union rules.
        in_sites = [
            _input_site(netlist, out_net, pin, src)
            for pin, src in enumerate(gate.inputs)
            if include_branches or netlist.fanout_count(src) == 1
        ]
        if not in_sites:
            continue
        kind = gate.kind
        if kind is GateKind.AND:
            for s in in_sites:
                uf.union(out0, (s, 0))
        elif kind is GateKind.NAND:
            for s in in_sites:
                uf.union(out1, (s, 0))
        elif kind is GateKind.OR:
            for s in in_sites:
                uf.union(out1, (s, 1))
        elif kind is GateKind.NOR:
            for s in in_sites:
                uf.union(out0, (s, 1))
        elif kind is GateKind.BUF:
            uf.union(out0, (in_sites[0], 0))
            uf.union(out1, (in_sites[0], 1))
        elif kind is GateKind.NOT:
            uf.union(out0, (in_sites[0], 1))
            uf.union(out1, (in_sites[0], 0))
        # XOR/XNOR/MUX/CONST: no structural equivalence.

    groups = uf.classes()
    classes: list[tuple[StuckAtDefect, ...]] = []
    representative: dict[StuckAtDefect, StuckAtDefect] = {}
    for members in groups.values():
        faults = sorted(
            (StuckAtDefect(site, v) for site, v in members),
            key=lambda f: (str(f.site), f.value),
        )
        rep = faults[0]
        classes.append(tuple(faults))
        for fault in faults:
            representative[fault] = rep
    classes.sort(key=lambda cls: (str(cls[0].site), cls[0].value))
    return CollapseResult(tuple(classes), representative)


# ---------------------------------------------------------------------------
# Dominance reduction and checkpoint faults (ATPG target shrinking)
# ---------------------------------------------------------------------------


def dominance_reduce(
    netlist: Netlist, result: CollapseResult | None = None
) -> list[StuckAtDefect]:
    """Equivalence classes further reduced by structural dominance.

    Classic rules: for AND/NAND, the output's controlled-inverse fault
    (sa1 for AND, sa0 for NAND) *dominates* each input sa1/sa0 -- any test
    for the input fault also detects the output fault -- so the output
    fault can be dropped from an ATPG target list.  Dually for OR/NOR.

    Caveats (documented, tested): dominance preserves *detection*, not
    distinguishability, so diagnosis must not use it; and in redundant
    logic a dominating fault can be testable while every dominated fault
    is not, in which case dropping loses coverage -- the guarantee holds
    for irredundant circuits.
    """
    if result is None:
        result = collapse_stuck_at(netlist)
    representative = result.representative
    dropped: set[StuckAtDefect] = set()
    for out_net in netlist.topo_order:
        gate = netlist.gates[out_net]
        kind = gate.kind
        if kind.controlling_value is None:
            continue
        # The output fault produced when NO input is at the controlling
        # value dominates each input's non-controlling stuck fault.
        non_ctrl = kind.controlling_value ^ 1
        # Faulty response of the dominated tests == output as if every input
        # were non-controlling: that polarity is the dominating output fault.
        out_value = non_ctrl ^ (1 if kind.inverting else 0)
        out_fault = representative[StuckAtDefect(Site(out_net), out_value)]
        input_faults = [
            representative[
                StuckAtDefect(_input_site(netlist, out_net, pin, src), non_ctrl)
            ]
            for pin, src in enumerate(gate.inputs)
        ]
        if any(f != out_fault for f in input_faults):
            dropped.add(out_fault)
    return [rep for rep in result.representatives if rep not in dropped]


def checkpoint_faults(netlist: Netlist) -> list[StuckAtDefect]:
    """The checkpoint set: stuck-at faults on PIs and fanout branches.

    For circuits built from AND/OR/NAND/NOR/NOT/BUF, detecting every
    (testable) checkpoint fault detects every stuck-at fault (the
    checkpoint theorem).  XOR-class gates void the guarantee, so callers
    grading XOR-bearing designs should use the collapsed universe instead.
    """
    faults: list[StuckAtDefect] = []
    for net in netlist.inputs:
        faults.append(StuckAtDefect(Site(net), 0))
        faults.append(StuckAtDefect(Site(net), 1))
    for net in netlist.nets():
        fan = netlist.fanout(net)
        if len(fan) > 1:
            for gate_name, pin in fan:
                site = Site(net, (gate_name, pin))
                faults.append(StuckAtDefect(site, 0))
                faults.append(StuckAtDefect(site, 1))
    return faults
