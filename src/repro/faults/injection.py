"""Multi-defect device-under-test emulation.

:class:`FaultyCircuit` wraps a netlist plus an arbitrary set of
simultaneously present defects and simulates the resulting behavior
bit-parallel over a whole pattern set.  This is the stand-in for failing
silicon: the tester harness compares its responses against the fault-free
circuit to produce the datalog the diagnosis consumes, while the injected
defect set remains available as ground truth for scoring.

Interacting defects are handled by fixpoint relaxation: bridge hooks read
the *current* value of their aggressor net, so a defect whose aggressor
lies later in topological order simply needs another sweep to settle.  A
defect combination that creates a genuinely oscillating loop (a bridge
closing a cycle through reconvergent logic) raises
:class:`~repro.errors.OscillationError` -- two-valued simulation has no
stable answer there, mirroring a real circuit that would ring or settle to
an intermediate voltage.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.circuit.gates import eval2
from repro.circuit.netlist import Netlist, Site
from repro.errors import OscillationError
from repro.faults.models import Defect, Hook, HookEnv
from repro.sim.cache import sim_context
from repro.sim.patterns import PatternSet


class FaultyCircuit:
    """A netlist with a set of injected defects."""

    def __init__(
        self,
        netlist: Netlist,
        defects: Iterable[Defect],
        max_iterations: int = 16,
    ):
        self.netlist = netlist
        self.defects: tuple[Defect, ...] = tuple(defects)
        self.max_iterations = max_iterations
        self._stem_hooks: dict[str, list[Hook]] = {}
        self._pin_hooks: dict[tuple[str, int], list[Hook]] = {}
        for defect in self.defects:
            defect.validate(netlist)
            for site, hook in defect.hooks():
                if site.is_stem:
                    self._stem_hooks.setdefault(site.net, []).append(hook)
                else:
                    self._pin_hooks.setdefault(site.branch, []).append(hook)
        # Only nets downstream of a hook can ever deviate from the fault-free
        # values (a gate outside the hooks' joint fanout cone has no hook and
        # only out-of-cone sources), so relaxation sweeps stay inside it.
        roots = set(self._stem_hooks)
        roots.update(gate_out for gate_out, _pin in self._pin_hooks)
        cone = netlist.fanout_cone(roots) if roots else frozenset()
        self._hooked_inputs = [n for n in netlist.inputs if n in self._stem_hooks]
        self._sweep_order = [n for n in netlist.topo_order if n in cone]

    # -- ground truth -------------------------------------------------------

    def ground_truth_sites(self) -> frozenset[Site]:
        sites: set[Site] = set()
        for defect in self.defects:
            sites.update(defect.ground_truth_sites())
        return frozenset(sites)

    # -- simulation -----------------------------------------------------------

    def simulate(self, patterns: PatternSet) -> dict[str, int]:
        """Settled value of every net under every pattern."""
        values, unstable = self._settle(patterns)
        if unstable:
            raise OscillationError(
                f"defect set {list(map(str, self.defects))} oscillates "
                f"(nets {sorted(unstable)[:6]})"
            )
        return values

    def _settle(
        self, patterns: PatternSet
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Fixpoint relaxation; returns ``(values, unstable)``.

        ``unstable`` maps each net that still moved on the final sweep to
        the bit mask of patterns under which it moved; it is empty when
        the relaxation converged.
        """
        netlist = self.netlist
        mask = patterns.mask
        values: dict[str, int] = {}
        env = HookEnv(values, mask)

        # Pass 0 seeds with hook-free values so aggressor reads are defined;
        # the shared context makes this one cached compiled pass per
        # (netlist, patterns) rather than one interpreted pass per device.
        values.update(sim_context(netlist, patterns).base)

        for _ in range(self.max_iterations):
            changed = False
            for net in self._hooked_inputs:
                new = self._apply_stem(net, patterns.bits[net], env)
                if new != values[net]:
                    values[net] = new
                    changed = True
            for net in self._sweep_order:
                gate = netlist.gates[net]
                ins = [
                    self._read_pin(net, pin, values[src], env)
                    for pin, src in enumerate(gate.inputs)
                ]
                new = self._apply_stem(net, eval2(gate.kind, ins, mask), env)
                if new != values[net]:
                    values[net] = new
                    changed = True
            if not changed:
                return values, {}
        return values, self._find_unstable(values, patterns)

    def simulate_outputs(self, patterns: PatternSet) -> dict[str, int]:
        values = self.simulate(patterns)
        return {net: values[net] for net in self.netlist.outputs}

    def simulate_outputs_with_x(
        self, patterns: PatternSet
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Outputs plus per-output X masks; oscillation resolves to ``X``.

        Where two-valued relaxation fails to settle, the still-moving bits
        are treated as three-valued ``X`` and propagated through the
        structural fanout (plus bridge couplings) as an X-monotonic upper
        bound, exactly as a real ringing node reads as an indeterminate
        voltage downstream.  Returns ``(outputs, xmasks)`` where
        ``xmasks[out]`` has bit *i* set when output ``out`` is unknown
        under pattern *i*; ``xmasks`` is empty when the circuit settled
        and the result matches :meth:`simulate_outputs` exactly.
        """
        values, unstable = self._settle(patterns)
        outputs = {net: values[net] for net in self.netlist.outputs}
        if not unstable:
            return outputs, {}
        xmask = self._propagate_x(unstable)
        out_x = {
            net: xmask[net] for net in self.netlist.outputs if xmask.get(net, 0)
        }
        # Force X bits to 0 so callers that ignore the mask still see a
        # deterministic (if arbitrary) value, never a mid-oscillation read.
        for net, xm in out_x.items():
            outputs[net] &= ~xm
        return outputs, out_x

    def _propagate_x(self, seeds: dict[str, int]) -> dict[str, int]:
        """Over-approximate X reach of the unstable bits.

        Structural propagation deliberately ignores controlling side
        inputs: an X that would in truth be blocked is still reported as
        X, which only ever removes evidence, never fabricates it.  Bridge
        defects add non-structural edges (the victim reads its aggressor
        and vice versa for resistive shorts), so those are propagated too,
        iterating because a bridge can feed X back upstream of topological
        order.
        """
        from repro.faults.models import BridgeDefect, BridgeKind

        couplings: list[tuple[str, str]] = []
        for defect in self.defects:
            if isinstance(defect, BridgeDefect):
                couplings.append((defect.aggressor, defect.victim))
                if defect.kind is not BridgeKind.DOMINANT:
                    couplings.append((defect.victim, defect.aggressor))

        xmask = dict(seeds)
        for _ in range(max(self.max_iterations, 1)):
            changed = False
            for src, dst in couplings:
                m = xmask.get(src, 0)
                if m & ~xmask.get(dst, 0):
                    xmask[dst] = xmask.get(dst, 0) | m
                    changed = True
            for net in self.netlist.topo_order:
                gate = self.netlist.gates[net]
                m = 0
                for src in gate.inputs:
                    m |= xmask.get(src, 0)
                if m & ~xmask.get(net, 0):
                    xmask[net] = xmask.get(net, 0) | m
                    changed = True
            if not changed:
                break
        return xmask

    # -- internals ---------------------------------------------------------------

    def _apply_stem(self, net: str, driven: int, env: HookEnv) -> int:
        value = driven
        for hook in self._stem_hooks.get(net, ()):
            value = hook(value, env) & env.mask
        return value

    def _read_pin(self, gate_out: str, pin: int, stem_value: int, env: HookEnv) -> int:
        hooks = self._pin_hooks.get((gate_out, pin))
        if not hooks:
            return stem_value
        value = stem_value
        for hook in hooks:
            value = hook(value, env) & env.mask
        return value

    def _find_unstable(
        self, values: dict[str, int], patterns: PatternSet
    ) -> dict[str, int]:
        """One more sweep, recording which nets still move and where.

        Returns ``{net: changed-bit mask}`` for every net whose value moved
        again -- the oscillation seeds for diagnostics and X fallback.
        """
        mask = patterns.mask
        env = HookEnv(values, mask)
        moved: dict[str, int] = {}
        for net in self._sweep_order:
            gate = self.netlist.gates[net]
            ins = [
                self._read_pin(net, pin, values[src], env)
                for pin, src in enumerate(gate.inputs)
            ]
            new = self._apply_stem(net, eval2(gate.kind, ins, mask), env)
            if new != values[net]:
                moved[net] = moved.get(net, 0) | (new ^ values[net])
                values[net] = new
        return moved


def defect_creates_feedback(netlist: Netlist, defects: Sequence[Defect]) -> bool:
    """True when a bridge's aggressor lies inside its victim's fanout cone.

    Such a defect closes a structural loop; two-valued simulation may
    oscillate.  Campaign samplers use this predicate to draw realistic
    non-ringing shorts (a ringing short manifests as unstable tester reads,
    which is outside any logic-diagnosis scope).
    """
    from repro.faults.models import BridgeDefect

    for defect in defects:
        if isinstance(defect, BridgeDefect):
            cone = netlist.fanout_cone([defect.victim])
            if defect.aggressor in cone:
                return True
            if defect.kind.value != "dom":
                back = netlist.fanout_cone([defect.aggressor])
                if defect.victim in back:
                    return True
    return False
