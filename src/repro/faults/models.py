"""Defect and fault model hierarchy.

A single class family serves two roles:

1. **Ground-truth defects** injected into a simulated device under test
   (through :class:`repro.faults.injection.FaultyCircuit`) to emulate the
   silicon failures the diagnosis must explain, and
2. **Model faults** hypothesized, simulated and ranked by the diagnosis
   engine, ATPG and the SLAT baseline.

Every behavior is defined by its *hooks*: bit-parallel functions that
rewrite a site's value vector during simulation.  A hook receives the
site's fault-free-driven value (all patterns at once) plus a
:class:`HookEnv` giving access to other nets' current values (bridges) and
to previous-pattern values (delay defects), and returns the faulty vector.

The ``ByzantineDefect`` deserves emphasis: it flips its site on an
arbitrary seeded subset of patterns with no underlying model at all.  It
exists precisely because the reproduced method claims to make *no
assumption on failing pattern characteristics* -- a diagnosis that only
handles stuck-at-explainable patterns will lose these defects, while the
X-envelope approach keeps them.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Mapping

from repro._rng import make_rng
from repro.circuit.netlist import Netlist, Site
from repro.errors import FaultModelError


class BridgeKind(enum.Enum):
    """Two-net short behaviors."""

    DOMINANT = "dom"  # victim takes the aggressor's value
    WIRED_AND = "wand"  # both nets take AND of the two drivers
    WIRED_OR = "wor"  # both nets take OR of the two drivers


class TransitionKind(enum.Enum):
    SLOW_TO_RISE = "str"
    SLOW_TO_FALL = "stf"


class HookEnv:
    """Simulation context handed to defect hooks."""

    def __init__(self, values: Mapping[str, int], mask: int):
        self._values = values
        self.mask = mask

    def value(self, net: str) -> int:
        """Current (this relaxation pass) settled value vector of ``net``."""
        return self._values[net]

    def prev_shift(self, vec: int) -> int:
        """Previous-pattern view of a value vector.

        Bit *i* of the result is bit *i-1* of ``vec``; pattern 0, having no
        predecessor, sees its own value (i.e. no transition before the
        first pattern).
        """
        return (((vec << 1) | (vec & 1))) & self.mask


Hook = Callable[[int, HookEnv], int]


@dataclass(frozen=True)
class Defect(ABC):
    """Base class; concrete defects are small frozen dataclasses."""

    @abstractmethod
    def ground_truth_sites(self) -> tuple[Site, ...]:
        """Sites where this defect *originates* errors (scoring reference)."""

    @abstractmethod
    def hooks(self) -> tuple[tuple[Site, Hook], ...]:
        """(site, hook) pairs installed into the faulty simulator."""

    def validate(self, netlist: Netlist) -> None:
        for site, _hook in self.hooks():
            netlist.validate_site(site)

    @property
    def family(self) -> str:
        """Short behavior-class tag used in reports and campaign tables."""
        return type(self).__name__.replace("Defect", "").lower()


@dataclass(frozen=True)
class StuckAtDefect(Defect):
    """Site permanently tied to ``value`` (0 or 1)."""

    site: Site
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise FaultModelError(f"stuck-at value must be 0/1, got {self.value!r}")

    def ground_truth_sites(self) -> tuple[Site, ...]:
        return (self.site,)

    def hooks(self) -> tuple[tuple[Site, Hook], ...]:
        forced = self.value

        def hook(_v: int, env: HookEnv) -> int:
            return env.mask if forced else 0

        return ((self.site, hook),)

    def __str__(self) -> str:
        return f"{self.site} sa{self.value}"


@dataclass(frozen=True)
class OpenDefect(Defect):
    """Broken interconnect; the floating node reads ``float_value``.

    Behaviorally stuck-at-like (resistive opens in CMOS settle to a rail
    through leakage), but kept as a distinct class: a *branch* open leaves
    the stem and sibling branches healthy, which is what distinguishes it
    from a stem stuck-at during physical failure analysis.
    """

    site: Site
    float_value: int

    def __post_init__(self) -> None:
        if self.float_value not in (0, 1):
            raise FaultModelError("open float value must be 0/1")

    def ground_truth_sites(self) -> tuple[Site, ...]:
        return (self.site,)

    def hooks(self) -> tuple[tuple[Site, Hook], ...]:
        forced = self.float_value

        def hook(_v: int, env: HookEnv) -> int:
            return env.mask if forced else 0

        return ((self.site, hook),)

    def __str__(self) -> str:
        return f"{self.site} open@{self.float_value}"


@dataclass(frozen=True)
class BridgeDefect(Defect):
    """Short between two nets (stems).

    ``DOMINANT``: the victim net takes the aggressor's value; the aggressor
    is unaffected.  ``WIRED_AND``/``WIRED_OR``: both nets resolve to the
    AND/OR of the two driven values.
    """

    victim: str
    aggressor: str
    kind: BridgeKind = BridgeKind.DOMINANT

    def __post_init__(self) -> None:
        if self.victim == self.aggressor:
            raise FaultModelError("bridge victim and aggressor must differ")

    def validate(self, netlist: Netlist) -> None:
        super().validate(netlist)
        if self.kind is BridgeKind.DOMINANT:
            netlist.validate_site(Site(self.aggressor))

    def ground_truth_sites(self) -> tuple[Site, ...]:
        if self.kind is BridgeKind.DOMINANT:
            return (Site(self.victim),)
        return (Site(self.victim), Site(self.aggressor))

    def hooks(self) -> tuple[tuple[Site, Hook], ...]:
        aggressor, victim, kind = self.aggressor, self.victim, self.kind

        def victim_hook(v: int, env: HookEnv) -> int:
            a = env.value(aggressor)
            if kind is BridgeKind.DOMINANT:
                return a
            if kind is BridgeKind.WIRED_AND:
                return v & a
            return v | a

        entries: list[tuple[Site, Hook]] = [(Site(victim), victim_hook)]
        if kind is not BridgeKind.DOMINANT:

            def aggressor_hook(a: int, env: HookEnv) -> int:
                v = env.value(victim)
                return (a & v) if kind is BridgeKind.WIRED_AND else (a | v)

            entries.append((Site(aggressor), aggressor_hook))
        return tuple(entries)

    def __str__(self) -> str:
        return f"bridge({self.victim}<-{self.aggressor},{self.kind.value})"


@dataclass(frozen=True)
class TransitionDefect(Defect):
    """Gross-delay defect: the site is slow to rise or slow to fall.

    With full-scan launch/capture semantics, the captured value at pattern
    *i* is the pattern *i-1* value whenever the site attempts the slow
    transition; the node completes the transition before the next launch.
    """

    site: Site
    kind: TransitionKind

    def ground_truth_sites(self) -> tuple[Site, ...]:
        return (self.site,)

    def hooks(self) -> tuple[tuple[Site, Hook], ...]:
        slow_rise = self.kind is TransitionKind.SLOW_TO_RISE

        def hook(v: int, env: HookEnv) -> int:
            prev = env.prev_shift(v)
            # Slow-to-rise: a 0->1 transition is captured as 0  => v AND prev.
            # Slow-to-fall: a 1->0 transition is captured as 1  => v OR prev.
            return (v & prev) if slow_rise else (v | prev)

        return ((self.site, hook),)

    def __str__(self) -> str:
        return f"{self.site} {self.kind.value}"


@dataclass(frozen=True)
class ByzantineDefect(Defect):
    """Model-free defect: flips its site on a seeded random pattern subset.

    ``activity`` is the flip probability per pattern.  No fault model
    reproduces this behavior; it is the acid test for assumption-free
    diagnosis.
    """

    site: Site
    seed: int
    activity: float = 0.4

    def __post_init__(self) -> None:
        if not 0.0 < self.activity <= 1.0:
            raise FaultModelError("byzantine activity must be in (0, 1]")

    def ground_truth_sites(self) -> tuple[Site, ...]:
        return (self.site,)

    def flip_vector(self, n_patterns: int) -> int:
        """Deterministic flip mask for a test set of ``n_patterns``."""
        rng = make_rng(self.seed)
        vec = 0
        for i in range(n_patterns):
            if rng.random() < self.activity:
                vec |= 1 << i
        return vec

    def hooks(self) -> tuple[tuple[Site, Hook], ...]:
        defect = self

        def hook(v: int, env: HookEnv) -> int:
            return v ^ (defect.flip_vector(env.mask.bit_length()) & env.mask)

        return ((self.site, hook),)

    def __str__(self) -> str:
        return f"{self.site} byz(seed={self.seed},p={self.activity})"
