"""Fault universe enumeration.

Generates the model-fault lists consumed by ATPG, fault grading and the
dictionary-style baselines: the classic stuck-at universe over stems and
fanout branches, the transition universe, and candidate bridge pairs.

Full bridge enumeration is quadratic in net count; real flows restrict it
to layout-adjacent nets.  With no layout in a purely logical reproduction,
:func:`bridge_pairs` approximates adjacency by *level proximity* (nets
close in logic depth are far more likely to be routed near each other) plus
an explicit cap, which keeps the universe realistic and bounded.
"""

from __future__ import annotations

import random
from itertools import combinations

from repro._rng import make_rng
from repro.circuit.netlist import Netlist
from repro.faults.models import (
    BridgeDefect,
    BridgeKind,
    StuckAtDefect,
    TransitionDefect,
    TransitionKind,
)


def stuck_at_universe(
    netlist: Netlist, include_branches: bool = True
) -> list[StuckAtDefect]:
    """Both polarities of every stem (and optionally branch) site."""
    faults: list[StuckAtDefect] = []
    for site in netlist.sites(include_branches=include_branches):
        faults.append(StuckAtDefect(site, 0))
        faults.append(StuckAtDefect(site, 1))
    return faults


def transition_universe(
    netlist: Netlist, include_branches: bool = False
) -> list[TransitionDefect]:
    """Slow-to-rise and slow-to-fall on every site."""
    faults: list[TransitionDefect] = []
    for site in netlist.sites(include_branches=include_branches):
        faults.append(TransitionDefect(site, TransitionKind.SLOW_TO_RISE))
        faults.append(TransitionDefect(site, TransitionKind.SLOW_TO_FALL))
    return faults


def bridge_pairs(
    netlist: Netlist,
    max_level_distance: int = 2,
    max_pairs: int | None = 5000,
    kind: BridgeKind = BridgeKind.DOMINANT,
    seed: int | random.Random | None = None,
    exclude_feedback: bool = True,
) -> list[BridgeDefect]:
    """Candidate two-net shorts under a level-proximity adjacency proxy.

    Pairs whose aggressor lies in the victim's fanout cone are skipped when
    ``exclude_feedback`` is set (they would close a loop).  When the proxy
    still yields more than ``max_pairs`` candidates, a seeded uniform sample
    is returned.
    """
    nets = list(netlist.nets())
    pairs: list[BridgeDefect] = []
    for a, b in combinations(nets, 2):
        if abs(netlist.level(a) - netlist.level(b)) > max_level_distance:
            continue
        for victim, aggressor in ((a, b), (b, a)):
            if exclude_feedback and aggressor in netlist.fanout_cone([victim]):
                continue
            pairs.append(BridgeDefect(victim, aggressor, kind))
            if kind is not BridgeKind.DOMINANT:
                break  # wired bridges are symmetric; one orientation suffices
    if max_pairs is not None and len(pairs) > max_pairs:
        rng = make_rng(seed)
        pairs = rng.sample(pairs, max_pairs)
        pairs.sort(key=str)
    return pairs
