"""Pipeline observability: tracing spans and a process-local metrics
registry.

- :mod:`repro.obs.trace` -- nestable spans over every diagnosis stage,
  Chrome-trace (flamegraph) export, the process-local *active tracer*
  deep instrumentation points emit into,
- :mod:`repro.obs.metrics` -- counters/gauges/histograms fed by the sim
  counters, budget truncations, ingest anomalies and the campaign runner
  taxonomy, exportable as Prometheus text or JSON.

Both modules are stdlib-only by design so any layer can import them
without cycles; both are inert until a tracer is installed or an export
is requested, keeping untraced runs byte-identical to historical output.
"""

from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    NULL_TRACER,
    STAGES,
    NullTracer,
    Span,
    Tracer,
    active_tracer,
    chrome_trace_events,
    install_tracer,
    span_count,
    stage_seconds,
    to_chrome_trace,
    trace_event,
    trace_span,
    uninstall_tracer,
)

__all__ = [
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "STAGES",
    "NullTracer",
    "Span",
    "Tracer",
    "active_tracer",
    "chrome_trace_events",
    "install_tracer",
    "span_count",
    "stage_seconds",
    "to_chrome_trace",
    "trace_event",
    "trace_span",
    "uninstall_tracer",
]
