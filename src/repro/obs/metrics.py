"""Process-local metrics registry with Prometheus and JSON export.

Counters, gauges and histograms keyed by ``(name, labels)``, fed by the
pipeline's existing instrumentation sources -- :class:`SimCounters`
deltas, budget truncation trails, tester ingest anomaly counters, and the
campaign runner's retry/timeout/skip taxonomy -- and exported on demand as
Prometheus text exposition format or JSON.

Recording is always on: it is a handful of dict lookups and float adds
per diagnosis, never touches the diagnosis itself, and keeps the registry
warm so a ``--metrics-out`` flag (or a future scrape endpoint) can export
at any moment.  The registry is **per process**: under the multi-process
campaign runner each worker accumulates its own view and the parent's
export covers scheduling-side metrics (trials, retries, timeouts) plus
everything executed in-process.

Metric names follow Prometheus conventions: ``repro_`` prefix,
``_total`` suffix on counters, ``_seconds`` on time histograms.  Label
sets are kept low-cardinality by construction (stage, cause, status --
never circuit-sized or site-sized domains).

Like :mod:`repro.obs.trace`, this module imports only the standard
library so every layer can use it without cycles.
"""

from __future__ import annotations

import json
import math
import re
import threading
from typing import Iterable, Mapping

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: One process-wide lock guards every metric mutation and export.  The
#: daemon's worker threads record into the same registry the ``/metrics``
#: exporter reads from; Python's read-modify-write float adds are not
#: atomic, so without the lock concurrent ``inc`` calls can drop counts
#: and an export can observe a histogram mid-update.  Contention is
#: negligible: recording is a handful of dict lookups per diagnosis.
_LOCK = threading.RLock()

#: Default histogram buckets (seconds): spans diagnosis runs from sub-ms
#: toy circuits to minutes-long governed searches.
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    30.0,
    60.0,
    300.0,
)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape_label_value(value)}"' for key, value in labels
    )
    return "{" + body + "}"


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with _LOCK:
            self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        with _LOCK:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with _LOCK:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with _LOCK:
            self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS):
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with _LOCK:
            self.sum += value
            self.count += 1
            # ``counts`` is per-bin; :meth:`cumulative` prefix-sums at export.
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    break

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper bound, cumulative count) pairs, ``+Inf`` last."""
        with _LOCK:
            out: list[tuple[float, int]] = []
            running = 0
            for bound, n in zip(self.buckets, self.counts):
                running += n
                out.append((bound, running))
            out.append((math.inf, self.count))
            return out


class _Family:
    """All children of one metric name (one per label set)."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help_text: str, buckets=None):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.children: dict[tuple[tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """Registry of metric families; the module-level :data:`REGISTRY` is
    the process default, but independent registries can be constructed
    for tests."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    # -- registration ------------------------------------------------------

    def _family(self, name: str, kind: str, help_text: str, buckets=None) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with _LOCK:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"requested {kind}"
                )
            return family

    @staticmethod
    def _label_key(labels: Mapping[str, object]) -> tuple[tuple[str, str], ...]:
        for key in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        family = self._family(name, "counter", help)
        key = self._label_key(labels)
        with _LOCK:
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Counter()
        return child  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        family = self._family(name, "gauge", help)
        key = self._label_key(labels)
        with _LOCK:
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Gauge()
        return child  # type: ignore[return-value]

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] | None = None, **labels
    ) -> Histogram:
        family = self._family(
            name, "histogram", help, tuple(buckets) if buckets else DEFAULT_BUCKETS
        )
        key = self._label_key(labels)
        with _LOCK:
            child = family.children.get(key)
            if child is None:
                child = family.children[key] = Histogram(family.buckets)
        return child  # type: ignore[return-value]

    def reset(self) -> None:
        """Drop every family (testing hook)."""
        with _LOCK:
            self._families.clear()

    # -- export ------------------------------------------------------------

    @staticmethod
    def _format_value(value: float) -> str:
        if value == math.inf:
            return "+Inf"
        if float(value).is_integer():
            return str(int(value))
        return repr(float(value))

    def to_prometheus_text(self) -> str:
        """Prometheus text exposition format (version 0.0.4).

        Exported under the registry lock, so a concurrent scrape sees a
        consistent point-in-time snapshot even while worker threads
        record.
        """
        with _LOCK:
            return self._to_prometheus_text_locked()

    def _to_prometheus_text_locked(self) -> str:
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.children):
                child = family.children[key]
                if isinstance(child, Histogram):
                    for bound, cumulative in child.cumulative():
                        bucket_labels = key + (("le", self._format_value(bound)),)
                        lines.append(
                            f"{name}_bucket{_format_labels(bucket_labels)} "
                            f"{cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_format_labels(key)} "
                        f"{self._format_value(child.sum)}"
                    )
                    lines.append(f"{name}_count{_format_labels(key)} {child.count}")
                else:
                    lines.append(
                        f"{name}{_format_labels(key)} "
                        f"{self._format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self, indent: int | None = 2) -> str:
        """JSON image of every family (for dashboards and tests)."""
        with _LOCK:
            return self._to_json_locked(indent)

    def _to_json_locked(self, indent: int | None) -> str:
        payload: dict = {}
        for name in sorted(self._families):
            family = self._families[name]
            series = []
            for key in sorted(family.children):
                child = family.children[key]
                entry: dict = {"labels": dict(key)}
                if isinstance(child, Histogram):
                    entry["sum"] = child.sum
                    entry["count"] = child.count
                    entry["buckets"] = [
                        {"le": ("+Inf" if bound == math.inf else bound), "count": n}
                        for bound, n in child.cumulative()
                    ]
                else:
                    entry["value"] = child.value
                series.append(entry)
            payload[name] = {
                "kind": family.kind,
                "help": family.help,
                "series": series,
            }
        return json.dumps(payload, indent=indent)


#: The process-default registry every pipeline layer records into.
REGISTRY = MetricsRegistry()


# ---------------------------------------------------------------------------
# Domain recorders (called by the pipeline layers)
# ---------------------------------------------------------------------------


def record_sim_delta(delta: Mapping[str, int]) -> None:
    """Fold one diagnosis run's :class:`SimCounters` delta into counters."""
    for key, value in delta.items():
        if value:
            REGISTRY.counter(
                f"repro_sim_{key}_total", "simulation work by SimCounters class"
            ).inc(float(value))


def record_diagnosis(method: str, seconds: float, completeness: str) -> None:
    """One finished diagnosis run: latency histogram + completeness tally."""
    REGISTRY.histogram(
        "repro_diagnosis_seconds", "end-to-end diagnosis latency", method=method
    ).observe(seconds)
    REGISTRY.counter(
        "repro_diagnosis_runs_total",
        "diagnosis runs by anytime verdict",
        method=method,
        completeness=completeness,
    ).inc()


def record_truncations(truncations: Iterable) -> None:
    """Budget truncation trail -> per-(stage, cause) counters."""
    for truncation in truncations:
        REGISTRY.counter(
            "repro_diagnosis_truncations_total",
            "stages cut short by the anytime budget",
            stage=truncation.stage,
            cause=truncation.cause,
        ).inc()


def record_ingest(report) -> None:
    """Tester ingest anomaly counters (an :class:`IngestReport`)."""
    anomalies = getattr(report, "anomalies", 0)
    quarantined = getattr(report, "quarantined", 0)
    if anomalies:
        REGISTRY.counter(
            "repro_ingest_anomalies_total", "datalog ingest anomalies detected"
        ).inc(float(anomalies))
    if quarantined:
        REGISTRY.counter(
            "repro_ingest_quarantined_total",
            "strobes quarantined to the X tier during ingest",
        ).inc(float(quarantined))


def record_trial(status: str, cause: str | None = None) -> None:
    """A terminal campaign trial record (ok / skipped / error)."""
    REGISTRY.counter(
        "repro_trials_total", "terminal campaign trials by status", status=status
    ).inc()
    if cause:
        REGISTRY.counter(
            "repro_trial_failures_total",
            "terminally failed trials by cause",
            cause=cause,
        ).inc()


def record_retry(cause: str) -> None:
    """A transient trial failure scheduled for a backoff retry."""
    REGISTRY.counter(
        "repro_trial_retries_total", "trial retries by transient cause", cause=cause
    ).inc()


def record_skip_reasons(reasons: Mapping[str, int]) -> None:
    """One trial's resample diary folded into per-cause counters."""
    for reason, count in reasons.items():
        if count:
            REGISTRY.counter(
                "repro_trial_resamples_total",
                "defect-set resamples by cause",
                cause=reason,
            ).inc(float(count))


def record_kernel_compile(variant: str) -> None:
    """One sim-kernel variant codegen/compile."""
    REGISTRY.counter(
        "repro_sim_kernel_compiles_total",
        "compiled simulation kernel variants built",
        variant=variant,
    ).inc()


# -- diagnosis-daemon recorders (see :mod:`repro.serve`) --------------------


def record_job_transition(state: str) -> None:
    """One job entering ``state`` (submitted/running/done/failed/cancelled)."""
    REGISTRY.counter(
        "repro_serve_jobs_total", "daemon job state transitions", state=state
    ).inc()


def set_queue_depth(queued: int, running: int) -> None:
    """Point-in-time daemon load (refreshed on every transition and scrape)."""
    REGISTRY.gauge(
        "repro_serve_queue_depth", "jobs by position", kind="queued"
    ).set(queued)
    REGISTRY.gauge(
        "repro_serve_queue_depth", "jobs by position", kind="running"
    ).set(running)


def record_admission_rejected(reason: str) -> None:
    """A submission turned away (saturated / draining / duplicate...)."""
    REGISTRY.counter(
        "repro_serve_rejected_total",
        "job submissions rejected by admission control",
        reason=reason,
    ).inc()


def record_degraded_admission() -> None:
    """A job admitted above high water and mapped to a degraded budget."""
    REGISTRY.counter(
        "repro_serve_degraded_jobs_total",
        "jobs admitted under degraded QoS budgets (backpressure)",
    ).inc()


def record_recovery(n_jobs: int) -> None:
    """Jobs re-enqueued from the durable store after a restart."""
    if n_jobs:
        REGISTRY.counter(
            "repro_serve_recovered_jobs_total",
            "jobs replayed from the job store on daemon restart",
        ).inc(float(n_jobs))


def record_drain(outcome: str) -> None:
    """One daemon drain: ``clean`` (within deadline) or ``forced``."""
    REGISTRY.counter(
        "repro_serve_drains_total", "daemon drains by outcome", outcome=outcome
    ).inc()


def record_job_seconds(qos: str, seconds: float) -> None:
    """End-to-end service latency of one finished job, by QoS class."""
    REGISTRY.histogram(
        "repro_serve_job_seconds", "job execution latency", qos=qos
    ).observe(seconds)


# -- chaos / durability recorders (see :mod:`repro.chaos`) -------------------


def record_chaos_injection(site: str, kind: str) -> None:
    """One fault fired by the armed chaos plan at a checkpoint site."""
    REGISTRY.counter(
        "repro_chaos_injected_total",
        "faults injected by the armed chaos plan",
        site=site,
        kind=kind,
    ).inc()


def record_store_compaction(outcome: str) -> None:
    """One job-store compaction attempt (``ok`` / ``failed``)."""
    REGISTRY.counter(
        "repro_store_compactions_total",
        "job-store journal compactions by outcome",
        outcome=outcome,
    ).inc()


def record_store_error(op: str) -> None:
    """A job-store I/O failure (append, probe, compact) that was surfaced."""
    REGISTRY.counter(
        "repro_store_errors_total",
        "job-store I/O failures by operation",
        op=op,
    ).inc()


def record_watchdog_requeue(cause: str) -> None:
    """The executor watchdog requeued a job off a dead/wedged worker."""
    REGISTRY.counter(
        "repro_watchdog_requeues_total",
        "jobs requeued by the executor watchdog",
        cause=cause,
    ).inc()


def record_watchdog_respawn() -> None:
    """The executor watchdog replaced a dead or wedged worker thread."""
    REGISTRY.counter(
        "repro_watchdog_respawns_total",
        "worker threads replaced by the executor watchdog",
    ).inc()


# -- cluster recorders (see :mod:`repro.serve.cluster`) ----------------------


def set_cluster_nodes(alive: int, suspect: int, dead: int) -> None:
    """Point-in-time worker membership as seen by the coordinator."""
    gauge = REGISTRY.gauge
    gauge(
        "repro_cluster_nodes", "worker nodes by membership state", state="alive"
    ).set(alive)
    gauge(
        "repro_cluster_nodes", "worker nodes by membership state", state="suspect"
    ).set(suspect)
    gauge(
        "repro_cluster_nodes", "worker nodes by membership state", state="dead"
    ).set(dead)


def record_lease_takeover(cause: str) -> None:
    """A dispatched job re-leased to a new node (``dead`` / ``missing`` /
    ``expired`` / ``unreachable``)."""
    REGISTRY.counter(
        "repro_cluster_lease_takeovers_total",
        "job leases taken over from a failed or lapsed node",
        cause=cause,
    ).inc()


def record_dispatch_retry() -> None:
    """A dispatch attempt that failed and was scheduled for backoff."""
    REGISTRY.counter(
        "repro_cluster_dispatch_retries_total",
        "job dispatch attempts retried after a node error",
    ).inc()


def record_channel_error(cause: str) -> None:
    """A worker result channel broke mid-read in the campaign runner."""
    REGISTRY.counter(
        "repro_runner_channel_errors_total",
        "worker result-channel read failures by classified cause",
        cause=cause,
    ).inc()
