"""Nestable, low-overhead tracing for the diagnosis pipeline.

A :class:`Tracer` records a tree of :class:`Span` s -- one per pipeline
stage (``backtrace``, ``pertest``, ``xcover``, ``cover``, ``refine``,
``scoring``, ``oracle``) plus point events for sim-kernel compiles and
cache activity -- against a monotonic clock that is injectable for
deterministic tests.  The design constraints, in order:

1. **Zero cost when off.**  Code that may run untraced emits through the
   module-level *active* tracer, which defaults to a shared
   :class:`NullTracer` whose ``span``/``event`` are constant no-ops, so an
   untraced diagnosis does no allocation and no clock reads beyond the
   stage marks it always took.
2. **Determinism.**  Tracing never influences the diagnosis itself; span
   data lands in ``DiagnosisReport.stats["trace"]``, which is excluded
   from determinism comparisons exactly like the ``seconds*`` / ``sim_*``
   entries.  A traced and an untraced run produce reports that are
   byte-identical outside ``stats``.
3. **Portability.**  Span trees serialize to plain dicts (JSONL journal,
   worker pipes) and export as Chrome-trace events
   (``chrome://tracing`` / Perfetto), so a whole campaign opens as a
   flamegraph.

Only the standard library is used; nothing in :mod:`repro` is imported,
so every layer (sim, core, campaign, tester, CLI) can depend on this
module without cycles.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Mapping

#: Stage names the pipeline emits, in pipeline order.  The campaign CSV
#: (``TRACE_STAT_FIELDS``) and the architecture docs key off this list.
STAGES = (
    "context",
    "backtrace",
    "pertest",
    "xcover",
    "cover",
    "refine",
    "scoring",
    "oracle",
)


class Span:
    """One timed region: a name, clock marks, metadata and children."""

    __slots__ = ("name", "start", "end", "children", "meta")

    def __init__(self, name: str, start: float, meta: dict | None = None):
        self.name = name
        self.start = start
        self.end = start
        self.children: list[Span] = []
        self.meta = meta

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        payload: dict = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.meta:
            payload["meta"] = dict(self.meta)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def __repr__(self) -> str:  # debugging aid only
        return f"Span({self.name!r}, {self.duration:.6f}s, {len(self.children)} children)"


class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`; yields the Span."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *_exc) -> None:
        self._tracer._close(self._span)


class _NullContext:
    """Shared no-op context manager (one instance per process)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *_exc) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullTracer:
    """Tracer that records nothing; the default active tracer.

    ``span`` and ``event`` return immediately without touching the clock,
    so instrumented code paths cost one attribute lookup and one call when
    tracing is off.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, **meta) -> _NullContext:
        return _NULL_CONTEXT

    def event(self, name: str, **meta) -> None:
        return None


NULL_TRACER = NullTracer()


class Tracer:
    """Collects a forest of nested spans against an injectable clock."""

    __slots__ = ("roots", "_stack", "_clock", "n_spans")

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self.roots: list[Span] = []
        self._stack: list[Span] = []
        self._clock = clock
        self.n_spans = 0

    # -- recording ---------------------------------------------------------

    def now(self) -> float:
        """The tracer's clock (stage marks share it with the spans)."""
        return self._clock()

    def span(self, name: str, **meta) -> _SpanContext:
        """Open a nested span; use as ``with tracer.span("cover") as sp:``."""
        span = Span(name, self._clock(), meta or None)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        self.n_spans += 1
        return _SpanContext(self, span)

    def event(self, name: str, **meta) -> None:
        """A zero-duration point event attached at the current nesting."""
        now = self._clock()
        span = Span(name, now, meta or None)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self.n_spans += 1

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        # Tolerate exception-driven unwinding: pop through to this span.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            top.end = span.end

    # -- export ------------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        """The recorded span forest as JSON-safe dicts."""
        return [root.to_dict() for root in self.roots]


# ---------------------------------------------------------------------------
# The active tracer (process-local)
# ---------------------------------------------------------------------------

#: Stack so nested installs (a traced campaign trial running a traced
#: diagnosis) restore correctly; the bottom entry is the permanent no-op.
_ACTIVE: list = [NULL_TRACER]


def active_tracer():
    """The tracer deep instrumentation points (sim kernels) emit into."""
    return _ACTIVE[-1]


def install_tracer(tracer) -> None:
    """Make ``tracer`` the active tracer until :func:`uninstall_tracer`."""
    _ACTIVE.append(tracer)


def uninstall_tracer(tracer) -> None:
    """Pop ``tracer`` (and anything installed above it) off the stack."""
    while len(_ACTIVE) > 1:
        if _ACTIVE.pop() is tracer:
            break


def trace_event(name: str, **meta) -> None:
    """Emit a point event into the active tracer (no-op when untraced)."""
    _ACTIVE[-1].event(name, **meta)


def trace_span(name: str, **meta):
    """Open a span on the active tracer (no-op context when untraced)."""
    return _ACTIVE[-1].span(name, **meta)


# ---------------------------------------------------------------------------
# Summaries and exporters
# ---------------------------------------------------------------------------


def stage_seconds(spans: Iterable[Mapping]) -> dict[str, float]:
    """Total seconds per span name over a span-dict forest (recursive).

    Point events contribute zero time but still appear as keys, so a
    summary row records *that* a kernel compile happened inside a stage.
    """
    totals: dict[str, float] = {}

    def walk(span: Mapping) -> None:
        name = str(span.get("name", ""))
        totals[name] = totals.get(name, 0.0) + float(span.get("duration", 0.0))
        for child in span.get("children", ()):
            walk(child)

    for span in spans:
        walk(span)
    return totals


def span_count(spans: Iterable[Mapping]) -> int:
    """Number of spans (including events) in a span-dict forest."""
    total = 0

    def walk(span: Mapping) -> None:
        nonlocal total
        total += 1
        for child in span.get("children", ()):
            walk(child)

    for span in spans:
        walk(span)
    return total


def chrome_trace_events(
    spans: Iterable[Mapping], pid: int = 0, tid: int = 0
) -> list[dict]:
    """Flatten a span-dict forest into Chrome-trace ``X``/``i`` events.

    Timestamps are microseconds on the tracer's own clock; within one
    process every span shares that clock, so relative placement -- the
    flamegraph -- is exact.
    """
    events: list[dict] = []

    def walk(span: Mapping) -> None:
        duration = float(span.get("duration", 0.0))
        event = {
            "name": str(span.get("name", "")),
            "ph": "X" if duration > 0.0 else "i",
            "ts": float(span.get("start", 0.0)) * 1e6,
            "pid": pid,
            "tid": tid,
        }
        if duration > 0.0:
            event["dur"] = duration * 1e6
        else:
            event["s"] = "t"  # instant event, thread-scoped
        meta = span.get("meta")
        if meta:
            event["args"] = dict(meta)
        events.append(event)
        for child in span.get("children", ()):
            walk(child)

    for span in spans:
        walk(span)
    return events


def to_chrome_trace(traces: Iterable[tuple[int, Iterable[Mapping]]]) -> dict:
    """Assemble ``(tid, span forest)`` pairs into one Chrome-trace object.

    Feed one pair per campaign trial (``tid`` = trial number) and the
    whole campaign opens as one flamegraph, a lane per trial.  The result
    is the JSON object format ``chrome://tracing`` / Perfetto load
    directly.
    """
    events: list[dict] = []
    for tid, spans in traces:
        events.extend(chrome_trace_events(spans, pid=0, tid=tid))
    return {"traceEvents": events, "displayTimeUnit": "ms"}
