"""Sequential-circuit substrate.

The diagnosis method operates on the combinational core of a full-scan
design.  This subpackage supplies the missing front half of that story:

- :mod:`repro.seq.model` -- :class:`SequentialNetlist` (gates + D
  flip-flops) and the sequential ``.bench`` reader,
- :mod:`repro.seq.transform` -- scan insertion (sequential design ->
  combinational core + scan-chain configuration) and time-frame
  unrolling (for reasoning about non-scan behavior),
- :mod:`repro.seq.generators` -- parametric sequential benchmarks
  (shift registers, LFSRs, counters).
"""

from repro.seq.model import Flop, SequentialNetlist, parse_bench_sequential
from repro.seq.transform import ScanDesign, scan_insert, unroll
from repro.seq.generators import counter, lfsr, shift_register

__all__ = [
    "Flop",
    "SequentialNetlist",
    "parse_bench_sequential",
    "ScanDesign",
    "scan_insert",
    "unroll",
    "counter",
    "lfsr",
    "shift_register",
]
