"""Parametric sequential benchmark circuits."""

from __future__ import annotations

from repro.circuit.builder import NetlistBuilder
from repro.errors import NetlistError
from repro.seq.model import Flop, SequentialNetlist


def shift_register(width: int, name: str | None = None) -> SequentialNetlist:
    """Serial-in serial-out shift register: out is ``din`` delayed by width."""
    if width < 1:
        raise NetlistError("shift register needs width >= 1")
    b = NetlistBuilder("core")
    din = b.input("din")
    stages = [b.input(f"q{i}") for i in range(width)]  # flop outputs
    d_nets = []
    prev = din
    for i, q in enumerate(stages):
        d_nets.append(b.buf(prev, name=f"d{i}"))
        prev = q
    out = b.buf(stages[-1], name="dout")
    b.output(out)
    core = b.build()
    flops = [Flop(f"q{i}", f"d{i}") for i in range(width)]
    return SequentialNetlist(
        name or f"sr{width}",
        ["din"],
        ["dout"],
        [g for g in core.gates.values()],
        flops,
    )


def lfsr(taps: tuple[int, ...], width: int, name: str | None = None) -> SequentialNetlist:
    """Fibonacci LFSR: feedback = XOR of tapped stages, shifts toward q0.

    ``taps`` are stage indices (0-based) XORed into the new q[width-1].
    Seeded non-zero via ``init=1`` on stage 0.
    """
    if not taps or any(t < 0 or t >= width for t in taps):
        raise NetlistError("taps must be non-empty stage indices < width")
    b = NetlistBuilder("core")
    stages = [b.input(f"q{i}") for i in range(width)]
    feedback = stages[taps[0]]
    for t in taps[1:]:
        feedback = b.xor(feedback, stages[t])
    feedback = b.buf(feedback, name="fb")
    d_nets = []
    for i in range(width - 1):
        d_nets.append(b.buf(stages[i + 1], name=f"d{i}"))
    d_nets.append(b.buf(feedback, name=f"d{width - 1}"))
    b.output(b.buf(stages[0], name="serial"))
    core = b.build()
    flops = [
        Flop(f"q{i}", f"d{i}", init=1 if i == 0 else 0) for i in range(width)
    ]
    return SequentialNetlist(
        name or f"lfsr{width}",
        [],
        ["serial"],
        [g for g in core.gates.values()],
        flops,
    )


def counter(width: int, name: str | None = None) -> SequentialNetlist:
    """Binary up-counter with enable; outputs the count bits."""
    if width < 1:
        raise NetlistError("counter needs width >= 1")
    b = NetlistBuilder("core")
    enable = b.input("en")
    stages = [b.input(f"q{i}") for i in range(width)]
    carry = enable
    outs = []
    for i in range(width):
        b.xor(stages[i], carry, name=f"d{i}")
        carry = b.and_(stages[i], carry)
        outs.append(b.buf(stages[i], name=f"count{i}"))
    for net in outs:
        b.output(net)
    core = b.build()
    flops = [Flop(f"q{i}", f"d{i}") for i in range(width)]
    return SequentialNetlist(
        name or f"cnt{width}",
        ["en"],
        [f"count{i}" for i in range(width)],
        [g for g in core.gates.values()],
        flops,
    )
