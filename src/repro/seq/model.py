"""Sequential netlist model: combinational gates plus D flip-flops."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.circuit.gates import Gate, GateKind, KIND_ALIASES
from repro.circuit.netlist import Netlist
from repro.errors import NetlistError, ParseError


@dataclass(frozen=True)
class Flop:
    """One D flip-flop: ``q`` is driven from ``d`` at each clock edge."""

    q: str
    d: str
    init: int = 0

    def __post_init__(self) -> None:
        if self.init not in (0, 1):
            raise NetlistError(f"flop {self.q!r}: init must be 0/1")


class SequentialNetlist:
    """A single-clock synchronous design.

    The combinational part follows the same conventions as
    :class:`~repro.circuit.netlist.Netlist`; flop outputs (``q`` nets) act
    as additional combinational sources.  Validation builds the
    combinational core once, which also proves the gate graph acyclic.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[str],
        outputs: Sequence[str],
        gates: Iterable[Gate],
        flops: Sequence[Flop],
    ):
        self.name = name
        self.inputs = tuple(inputs)
        self.outputs = tuple(outputs)
        self.flops = tuple(flops)
        q_names = [f.q for f in self.flops]
        if len(set(q_names)) != len(q_names):
            raise NetlistError("duplicate flop output net")
        # The scan view: q nets become pseudo inputs, d nets pseudo outputs.
        self._core = Netlist(
            f"{name}_core",
            list(inputs) + q_names,
            list(outputs) + [f.d for f in self.flops],
            gates,
        )
        self.gates = self._core.gates

    @property
    def n_gates(self) -> int:
        return self._core.n_gates

    @property
    def n_flops(self) -> int:
        return len(self.flops)

    def combinational_core(self) -> Netlist:
        """The full-scan combinational view (q = pseudo PI, d = pseudo PO)."""
        return self._core

    def __repr__(self) -> str:
        return (
            f"SequentialNetlist({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, gates={self.n_gates}, "
            f"flops={self.n_flops})"
        )


def parse_bench_sequential(text: str, name: str = "bench") -> SequentialNetlist:
    """Parse ``.bench`` keeping DFFs as flops (cf. the scan-replacing
    :func:`repro.circuit.bench.parse_bench`)."""
    import re

    assign_re = re.compile(
        r"^(?P<out>[^\s=]+)\s*=\s*(?P<kind>[A-Za-z_][A-Za-z0-9_]*)\s*"
        r"\((?P<ins>[^)]*)\)$"
    )
    io_re = re.compile(r"^(?P<dir>INPUT|OUTPUT)\s*\((?P<net>[^)]+)\)$", re.IGNORECASE)

    inputs: list[str] = []
    outputs: list[str] = []
    gates: list[Gate] = []
    flops: list[Flop] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io = io_re.match(line)
        if io:
            (inputs if io.group("dir").upper() == "INPUT" else outputs).append(
                io.group("net").strip()
            )
            continue
        assign = assign_re.match(line)
        if not assign:
            raise ParseError(f"unrecognized statement {line!r}", line=lineno)
        out = assign.group("out").strip()
        kind_name = assign.group("kind").lower()
        ins = tuple(s.strip() for s in assign.group("ins").split(",") if s.strip())
        if kind_name == "dff":
            if len(ins) != 1:
                raise ParseError(f"DFF {out!r} must have exactly one input", lineno)
            flops.append(Flop(out, ins[0]))
            continue
        kind = KIND_ALIASES.get(kind_name)
        if kind is None or kind is GateKind.INPUT:
            raise ParseError(f"unknown gate kind {kind_name!r}", line=lineno)
        gates.append(Gate(out, kind, ins))
    return SequentialNetlist(name, inputs, outputs, gates, flops)
