"""Scan insertion and time-frame unrolling.

Scan insertion produces exactly the artifact the diagnosis flow consumes:
the combinational core (flop outputs as pseudo primary inputs, flop data
inputs as pseudo primary outputs) together with the
:class:`~repro.tester.scan.ScanChainConfig` that says where each captured
bit physically sits on the tester.  Primary outputs are modeled as a
parallel-measure register on chain 0; the flops are stitched round-robin
onto chains 1..N.

Time-frame unrolling expands ``n_frames`` clock cycles of the sequential
design into one combinational netlist (``f<t>_`` prefixes), with flops
wired frame-to-frame and frame 0 fed by their initial values.  It is the
reference model for sequential behavior (LFSRs, counters) and the basis
for reasoning about non-scan test application.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.gates import Gate, GateKind
from repro.circuit.netlist import Netlist
from repro.errors import NetlistError
from repro.seq.model import SequentialNetlist
from repro.tester.scan import ScanCell, ScanChainConfig


@dataclass
class ScanDesign:
    """Result of scan insertion."""

    netlist: Netlist  #: the combinational core the tester exercises
    config: ScanChainConfig  #: tester-side placement of every observed bit
    flop_order: tuple[str, ...]  #: q nets in chain-stitching order


def scan_insert(seq: SequentialNetlist, n_chains: int = 1) -> ScanDesign:
    """Insert scan: full observability/controllability of every flop."""
    if n_chains < 1:
        raise NetlistError("scan insertion needs >= 1 chain")
    core = seq.combinational_core()
    mapping: dict[str, ScanCell] = {}
    # Primary outputs: parallel-measure "chain 0".
    for position, out in enumerate(seq.outputs):
        mapping[out] = ScanCell(0, position)
    # Flop capture bits (their D nets) round-robin on chains 1..n.
    counters = [0] * n_chains
    flop_order = []
    for index, flop in enumerate(seq.flops):
        chain = 1 + index % n_chains
        mapping[flop.d] = ScanCell(chain, counters[chain - 1])
        counters[chain - 1] += 1
        flop_order.append(flop.q)
    config = ScanChainConfig(core, mapping=mapping)
    return ScanDesign(netlist=core, config=config, flop_order=tuple(flop_order))


def unroll(seq: SequentialNetlist, n_frames: int, name: str | None = None) -> Netlist:
    """Expand ``n_frames`` cycles into one combinational netlist.

    Nets of frame *t* are prefixed ``f<t>_``.  Primary inputs exist per
    frame; primary outputs are exposed per frame.  Flop q nets of frame 0
    are constants (their ``init`` values); at frame *t > 0* they are
    buffers of the previous frame's d nets.
    """
    if n_frames < 1:
        raise NetlistError("unroll needs >= 1 frame")
    gates: list[Gate] = []
    inputs: list[str] = []
    outputs: list[str] = []

    def net_at(net: str, frame: int) -> str:
        return f"f{frame}_{net}"

    for frame in range(n_frames):
        for pi in seq.inputs:
            inputs.append(net_at(pi, frame))
        for flop in seq.flops:
            q = net_at(flop.q, frame)
            if frame == 0:
                kind = GateKind.CONST1 if flop.init else GateKind.CONST0
                gates.append(Gate(q, kind, ()))
            else:
                gates.append(Gate(q, GateKind.BUF, (net_at(flop.d, frame - 1),)))
        for gate in seq.gates.values():
            gates.append(
                Gate(
                    net_at(gate.output, frame),
                    gate.kind,
                    tuple(net_at(src, frame) for src in gate.inputs),
                )
            )
        for po in seq.outputs:
            outputs.append(net_at(po, frame))

    return Netlist(
        name or f"{seq.name}_x{n_frames}",
        inputs,
        outputs,
        gates,
    )
