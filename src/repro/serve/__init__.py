"""Diagnosis-as-a-service: the fault-tolerant ``repro serve`` daemon.

A stdlib-only long-lived service over the existing diagnosis machinery:

- :mod:`repro.serve.protocol` -- job specs, fingerprints, canonical
  (byte-stable) report serialization, and the HTTP wire formats;
- :mod:`repro.serve.store` -- the durable job store, an append-only
  fsync'd JSONL journal replayed on restart for crash recovery;
- :mod:`repro.serve.executor` -- the shard-affine worker executor with
  the campaign runner's retry/backoff taxonomy and cooperative
  cancellation;
- :mod:`repro.serve.app` -- admission control, backpressure, lifecycle
  (drain/health/readiness) and the HTTP front-end.
"""

from repro.serve.app import DiagnosisDaemon, ServeConfig, serve
from repro.serve.protocol import JobSpec, canonical_report_json
from repro.serve.store import JobStore

__all__ = [
    "DiagnosisDaemon",
    "JobSpec",
    "JobStore",
    "ServeConfig",
    "canonical_report_json",
    "serve",
]
