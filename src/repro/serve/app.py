"""The diagnosis daemon: admission control, lifecycle, and the HTTP app.

:class:`DiagnosisDaemon` is the transport-free core -- its
:meth:`~DiagnosisDaemon.handle` method takes ``(method, path, body)`` and
returns a :class:`Response`, so every behavior (admission, backpressure,
recovery, drain, health) is testable without sockets.  :func:`serve`
wraps it in a stdlib ``ThreadingHTTPServer`` plus signal handling.

Robustness model:

- **durability**: every submission and transition is an fsync'd journal
  record (:mod:`repro.serve.store`) written *before* it is acknowledged,
  so ``kill -9`` at any instant loses nothing that was confirmed;
- **recovery**: on start the store replays its journal and non-terminal
  jobs are re-enqueued; deterministic job fingerprints and canonical
  report serialization make the re-execution idempotent;
- **backpressure**: a bounded admission queue -- past ``queue_depth`` a
  submission is rejected immediately with ``429`` and a ``Retry-After``
  estimate; past the high-water fraction new jobs run under *degraded*
  QoS budgets so the daemon sheds precision, not availability;
- **drain**: SIGTERM stops admissions and job starts, lets in-flight
  jobs finish under ``drain_seconds``, checkpoints, and exits 0; a
  second SIGINT force-quits.

Endpoints::

    POST   /jobs        submit {"circuit": ..., "datalog": ..., ...}
    GET    /jobs        list jobs + per-state counts
    GET    /jobs/<id>   status, report when done
    DELETE /jobs/<id>   cooperative cancel
    GET    /healthz     liveness (503 on an unrecovered store write error)
    GET    /readyz      readiness (store writable, pool alive, queue ok)
    GET    /metrics     live Prometheus text exposition
"""

from __future__ import annotations

import json
import math
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro import chaos
from repro.errors import BindError, JournalError, ServeError, TrialError
from repro.obs.metrics import (
    REGISTRY,
    record_admission_rejected,
    record_degraded_admission,
    record_drain,
    record_job_seconds,
    record_job_transition,
    record_recovery,
    set_queue_depth,
)
from repro.core.budget import CancellationToken
from repro.serve.executor import ExecutorCallbacks, ShardExecutor, execute_job
from repro.serve.protocol import (
    STATE_RUNNING,
    STATE_SUBMITTED,
    JobSpec,
    canonical_report_dict,
)
from repro.serve.store import JobStore, StoredJob


@dataclass
class ServeConfig:
    """Everything ``repro serve`` needs to run one daemon."""

    store: str | Path = "jobs.jsonl"
    host: str = "127.0.0.1"
    port: int = 8765
    #: Worker threads (shard-affine; see :mod:`repro.serve.executor`).
    workers: int = 2
    #: Admission bound: accepted-but-unstarted jobs past this are rejected
    #: with 429 instead of queueing unboundedly.
    queue_depth: int = 16
    #: Fraction of ``queue_depth`` past which readiness drops and newly
    #: admitted jobs run under degraded QoS budgets.
    high_water: float = 0.75
    #: Seconds SIGTERM waits for in-flight jobs before forcing the exit.
    drain_seconds: float = 10.0
    retries: int = 1
    backoff: float = 0.05
    #: fsync every job-store record (the durable default; tests may relax).
    fsync: bool = True
    #: Compact the job store when its journal exceeds this many bytes
    #: (checked on terminal transitions; None disables the size trigger).
    compact_bytes: int | None = 4 << 20
    #: Compact when this many seconds passed since the last compaction
    #: (None disables the age trigger).
    compact_age_seconds: float | None = None
    #: Watchdog: a job running longer than this on one worker is declared
    #: wedged, abandoned, and requeued (None disables wedge detection).
    stuck_seconds: float | None = 300.0
    #: Watchdog sweep period in seconds (0 disables the watchdog thread).
    watchdog_interval: float = 1.0
    #: Total wall-clock a job may spend being retried/requeued before it
    #: is terminally failed (None: unbounded).
    retry_wall_seconds: float | None = 600.0
    #: Chaos fault-plan spec (e.g. ``fsync_eio:0.05+slow_io:20ms``);
    #: None falls back to the ``REPRO_CHAOS`` environment variable.
    chaos: str | None = None
    #: ``standalone`` or ``worker``: a worker is the same daemon serving
    #: a coordinator instead of end clients (the coordinator drives it
    #: through the public job protocol, which is the whole point); the
    #: role is surfaced in the startup banner and ``/cluster/status``.
    role: str = "standalone"


@dataclass
class Response:
    """One transport-free HTTP response."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: dict = field(default_factory=dict)

    @classmethod
    def json(cls, status: int, payload: dict, **headers) -> "Response":
        """Build a JSON response; keyword headers are normalized from
        Python identifiers to dashed HTTP names (``retry_after`` ->
        ``Retry-After``), so callers never need ``**{"Retry-After": ...}``
        contortions."""
        return cls(
            status,
            (json.dumps(payload, indent=2) + "\n").encode(),
            headers={
                key.replace("_", "-").title(): str(value)
                for key, value in headers.items()
            },
        )

    @classmethod
    def text(cls, status: int, text: str) -> "Response":
        return cls(status, text.encode(), content_type="text/plain; charset=utf-8")


class DiagnosisDaemon(ExecutorCallbacks):
    """Transport-free daemon core: store + executor + admission + lifecycle."""

    def __init__(self, config: ServeConfig, *, run=execute_job, clock=time.monotonic):
        self.config = config
        self._clock = clock
        self.store = JobStore(
            config.store,
            fsync=config.fsync,
            compact_bytes=config.compact_bytes,
            compact_age_seconds=config.compact_age_seconds,
        )
        self.executor = ShardExecutor(
            self,
            workers=config.workers,
            retries=config.retries,
            backoff=config.backoff,
            run=run,
            stuck_seconds=config.stuck_seconds,
            watchdog_interval=config.watchdog_interval,
            retry_wall_seconds=config.retry_wall_seconds,
        )
        self._lock = threading.RLock()
        self._queued: set[str] = set()
        self._running: dict[str, float] = {}  # job id -> start time
        self._tokens: dict[str, CancellationToken] = {}
        self._user_cancelled: set[str] = set()
        self._started = False
        self._draining = False
        #: EMA of job latency, seeding the 429 Retry-After estimate.
        self._ema_seconds = 1.0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> int:
        """Open the store, replay, re-enqueue; returns #jobs recovered."""
        recovered = self.store.open()
        self.executor.start()
        for job in recovered:
            self._enqueue(job)
        record_recovery(len(recovered))
        self._started = True
        self._update_gauges()
        return len(recovered)

    def drain(self) -> bool:
        """Stop admissions and job starts; wait out in-flight work.

        Returns True when the drain finished inside ``drain_seconds``.
        On overrun, in-flight tokens are cancelled so the jobs return
        their partial state quickly; they are *deferred* (left
        non-terminal in the journal) and recover on the next start.
        """
        with self._lock:
            self._draining = True
        clean = self.executor.drain(self.config.drain_seconds, clock=self._clock)
        if not clean:
            # Overran: trip the in-flight tokens and give the workers a short
            # grace to surface their deferrals.  The drain stays *forced*
            # even when that reap succeeds -- work was interrupted.
            for job_id in self.executor.cancel_inflight():
                token = self._tokens.get(job_id)
                if token is not None:
                    token.cancel()
            self.executor.drain(2.0, clock=self._clock)
        record_drain("clean" if clean else "forced")
        self.store.note_drain(clean)
        self.store.close()
        return clean

    def abort(self) -> None:
        """Release resources after a failed startup (no drain ceremony)."""
        self.store.close()

    # -- admission -----------------------------------------------------------

    def _high_water_count(self) -> int:
        return max(1, int(math.ceil(self.config.queue_depth * self.config.high_water)))

    def _retry_after(self) -> int:
        with self._lock:
            backlog = len(self._queued) + len(self._running)
        per_worker = backlog / max(1, self.config.workers)
        return max(1, min(60, int(math.ceil(per_worker * self._ema_seconds))))

    def _enqueue(self, job: StoredJob) -> None:
        token = CancellationToken()
        with self._lock:
            self._tokens[job.job_id] = token
            self._queued.add(job.job_id)
        self.executor.submit(
            job.job_id, job.spec, token, degraded=job.degraded
        )
        self._update_gauges()

    def submit(self, spec: JobSpec) -> Response:
        with self._lock:
            if self._draining:
                record_admission_rejected("draining")
                # The restart horizon is the drain deadline plus recovery;
                # like the 429 path, tell the client when to come back.
                retry_after = max(1, int(math.ceil(self.config.drain_seconds)))
                return Response.json(
                    503,
                    {
                        "error": "daemon is draining; resubmit after restart",
                        "retry_after_seconds": retry_after,
                    },
                    retry_after=retry_after,
                )
            queued = len(self._queued)
        if queued >= self.config.queue_depth:
            record_admission_rejected("saturated")
            retry_after = self._retry_after()
            return Response.json(
                429,
                {
                    "error": "admission queue is full",
                    "queue_depth": self.config.queue_depth,
                    "retry_after_seconds": retry_after,
                },
                retry_after=retry_after,
            )
        degraded = queued >= self._high_water_count()
        try:
            job, created = self.store.submit(spec, degraded=degraded)
        except JournalError:
            # The durable append failed: the job was never accepted, and
            # /healthz flips until the store writes again.
            record_admission_rejected("store_error")
            raise
        if not created:
            # Idempotent resubmission: point at the existing job.
            return Response.json(200, job.status_dict())
        record_job_transition(STATE_SUBMITTED)
        if degraded:
            record_degraded_admission()
        self._enqueue(job)
        return Response.json(202, job.status_dict())

    def cancel(self, job_id: str) -> Response:
        job = self.store.get(job_id)
        if job is None:
            return Response.json(404, {"error": f"unknown job {job_id!r}"})
        if job.terminal:
            return Response.json(
                409, {"error": f"job is already {job.state}", "state": job.state}
            )
        with self._lock:
            self._user_cancelled.add(job_id)
            token = self._tokens.get(job_id)
            was_queued = job_id in self._queued
        if token is not None:
            token.cancel()
        if was_queued:
            # Not started yet: terminal immediately; the worker discards
            # the queue item when it surfaces.
            self._finish(job_id)
            self.store.mark_cancelled(job_id)
            record_job_transition("cancelled")
            self._update_gauges()
            return Response.json(202, self.store.get(job_id).status_dict())
        return Response.json(202, {"id": job_id, "state": "cancelling"})

    # -- executor callbacks (worker threads) ---------------------------------

    def _finish(self, job_id: str) -> None:
        with self._lock:
            self._queued.discard(job_id)
            started = self._running.pop(job_id, None)
            self._tokens.pop(job_id, None)
        if started is not None:
            elapsed = max(0.0, self._clock() - started)
            job = self.store.get(job_id)
            qos = job.spec.qos if job is not None else "unknown"
            record_job_seconds(qos, elapsed)
            with self._lock:
                self._ema_seconds = 0.7 * self._ema_seconds + 0.3 * elapsed

    def on_running(self, job_id: str, attempt: int) -> None:
        with self._lock:
            self._queued.discard(job_id)
            self._running[job_id] = self._clock()
        self.store.mark_running(job_id, attempt)
        record_job_transition(STATE_RUNNING)
        self._update_gauges()

    def on_done(self, job_id: str, report) -> None:
        self._finish(job_id)
        self.store.mark_done(job_id, canonical_report_dict(report))
        record_job_transition("done")
        self.store.maybe_compact()
        self._update_gauges()

    def on_failed(self, job_id: str, error: TrialError) -> None:
        self._finish(job_id)
        self.store.mark_failed(job_id, error.to_dict())
        record_job_transition("failed")
        self.store.maybe_compact()
        self._update_gauges()

    def on_requeued(self, job_id: str, cause: str) -> None:
        # The watchdog pulled the job off a dead/wedged worker; it is
        # queued again (same shard, same token), so move the in-memory
        # accounting back without touching the journal -- the next
        # ``on_running`` writes the new attempt.
        with self._lock:
            self._running.pop(job_id, None)
            self._queued.add(job_id)
        self._update_gauges()

    def on_cancelled(self, job_id: str) -> None:
        with self._lock:
            user = job_id in self._user_cancelled
        self._finish(job_id)
        if user:
            self.store.mark_cancelled(job_id)
            record_job_transition("cancelled")
        # else: a drain tripped the token -- leave the journal non-terminal
        # so the job recovers on the next start.
        self._update_gauges()

    def on_deferred(self, job_id: str) -> None:
        with self._lock:
            self._queued.discard(job_id)
        self._update_gauges()

    # -- health --------------------------------------------------------------

    def readiness(self) -> tuple[bool, list[str]]:
        reasons: list[str] = []
        if not self._started:
            reasons.append("not started")
        with self._lock:
            if self._draining:
                reasons.append("draining")
            queued = len(self._queued)
        if not self.store.probe_writable():
            reasons.append("job store is not writable")
        store_error = self.store.last_error
        if store_error:
            reasons.append(f"unrecovered store write error: {store_error}")
        if self._started and not self.executor.alive():
            reasons.append("worker pool is dead")
        if queued >= self._high_water_count():
            reasons.append(
                f"queue above high water ({queued}/{self.config.queue_depth})"
            )
        return (not reasons), reasons

    def _update_gauges(self) -> None:
        with self._lock:
            set_queue_depth(len(self._queued), len(self._running))

    # -- the request surface (fake-transport harness + HTTP handler) ---------

    def handle(self, method: str, path: str, body: bytes | None = None) -> Response:
        """Dispatch one request; the HTTP layer is a thin wrapper over this."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if method == "GET" and path == "/healthz":
                # An unrecovered store write error makes the *process*
                # unhealthy, not merely unready: a daemon that cannot
                # persist transitions is silently lying about durability,
                # and a supervisor should restart it onto a healthy disk.
                store_error = self.store.last_error
                if store_error:
                    return Response.json(
                        503,
                        {"status": "unhealthy", "last_store_error": store_error},
                    )
                return Response.json(200, {"status": "ok"})
            if method == "GET" and path == "/readyz":
                ready, reasons = self.readiness()
                if ready:
                    return Response.json(200, {"status": "ready"})
                return Response.json(503, {"status": "unready", "reasons": reasons})
            if method == "GET" and path == "/metrics":
                self._update_gauges()
                return Response.text(200, REGISTRY.to_prometheus_text())
            if method == "GET" and path == "/cluster/status":
                # Answered by every role so ``repro cluster status`` works
                # against a worker or standalone node too.
                with self._lock:
                    queued, running = len(self._queued), len(self._running)
                    draining = self._draining
                return Response.json(
                    200,
                    {
                        "role": self.config.role,
                        "counts": self.store.counts(),
                        "queued": queued,
                        "running": running,
                        "draining": draining,
                    },
                )
            if method == "POST" and path == "/jobs":
                try:
                    payload = json.loads((body or b"").decode() or "null")
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    return Response.json(400, {"error": f"bad JSON body: {exc}"})
                return self.submit(JobSpec.from_dict(payload))
            if method == "GET" and path == "/jobs":
                return Response.json(
                    200,
                    {
                        "jobs": [
                            job.status_dict(include_report=False)
                            for job in self.store.jobs()
                        ],
                        "counts": self.store.counts(),
                    },
                )
            if path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                if method == "GET":
                    job = self.store.get(job_id)
                    if job is None:
                        return Response.json(
                            404, {"error": f"unknown job {job_id!r}"}
                        )
                    return Response.json(200, job.status_dict())
                if method == "DELETE":
                    return self.cancel(job_id)
            return Response.json(404, {"error": f"no route {method} {path}"})
        except ServeError as exc:
            return Response.json(400, {"error": str(exc)})
        except JournalError as exc:
            # The store went bad mid-request (disk full, dir removed):
            # surface as a 500 and let /readyz flip.
            return Response.json(500, {"error": f"job store failure: {exc}"})


# -- HTTP wrapper ------------------------------------------------------------


class _Handler(BaseHTTPRequestHandler):
    """Thin byte shuffler between the socket and :meth:`DiagnosisDaemon.handle`."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    def _dispatch(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        response = self.server.daemon.handle(self.command, self.path, body)
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for key, value in response.headers.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(response.body)

    do_GET = _dispatch
    do_POST = _dispatch
    do_DELETE = _dispatch

    def log_message(self, format: str, *args) -> None:
        pass  # request logging is the metrics registry's job


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, daemon: DiagnosisDaemon):
        self.daemon = daemon
        super().__init__(address, _Handler)


def bind_server(config: ServeConfig, daemon: DiagnosisDaemon) -> _Server:
    """Bind the listen socket; OS-level failures become :class:`BindError`."""
    try:
        return _Server((config.host, config.port), daemon)
    except OSError as exc:
        raise BindError(
            f"cannot bind {config.host}:{config.port}: {exc}"
        ) from exc


#: ``repro serve`` exit codes (see ``docs/architecture.md``).
EXIT_OK = 0  #: clean drain
EXIT_FORCED = 1  #: drain deadline overran; deferred jobs recover on restart
EXIT_CONFIG = 2  #: configuration / generic ReproError
EXIT_BIND = 3  #: listen address could not be bound
EXIT_LOCKED = 4  #: job store is locked by another daemon


def serve(
    config: ServeConfig,
    *,
    run=execute_job,
    install_signals: bool = True,
    on_ready=None,
) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns the process exit code.

    Startup failures raise (:class:`BindError`, :class:`JournalError`);
    the CLI maps them to exit codes.  ``on_ready`` (tests) is called with
    the bound server once recovery finished and the listener is up.
    """
    plan = (
        chaos.arm(config.chaos) if config.chaos else chaos.arm_from_env()
    )
    if plan is not None:
        print(
            f"repro serve: CHAOS ARMED ({plan.spec}, seed {plan.seed}) -- "
            "faults below are injected, not real",
            file=sys.stderr,
            flush=True,
        )

    stop = threading.Event()
    sigints = {"n": 0}

    def _on_term(_signum, _frame) -> None:
        stop.set()

    def _on_int(_signum, _frame) -> None:
        sigints["n"] += 1
        if sigints["n"] >= 2:
            print("repro serve: force quit", file=sys.stderr, flush=True)
            os._exit(130)
        stop.set()

    # Signals go in *before* recovery: a replay over a large journal can
    # take a while, and a SIGTERM landing mid-recovery must drain and
    # exit instead of dying on the default handler with the store open.
    if install_signals:
        signal.signal(signal.SIGTERM, _on_term)
        signal.signal(signal.SIGINT, _on_int)

    daemon = DiagnosisDaemon(config, run=run)
    recovered = daemon.start()  # JournalError here when the store is locked
    if stop.is_set():
        print(
            "repro serve: stop requested during recovery; draining without "
            "serving",
            file=sys.stderr,
            flush=True,
        )
        clean = daemon.drain()
        return EXIT_OK if clean else EXIT_FORCED
    try:
        server = bind_server(config, daemon)
    except BindError:
        daemon.abort()
        raise
    host, port = server.server_address[:2]
    role_note = f", role {config.role}" if config.role != "standalone" else ""
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"(store {config.store}, {config.workers} workers, "
        f"queue depth {config.queue_depth}, "
        f"recovered {recovered} job(s){role_note})",
        flush=True,
    )

    listener = threading.Thread(
        target=server.serve_forever, name="repro-serve-listener", daemon=True
    )
    listener.start()
    if on_ready is not None:
        on_ready(server)
    try:
        stop.wait()
    finally:
        print(
            f"repro serve: draining (deadline {config.drain_seconds:g}s)",
            file=sys.stderr,
            flush=True,
        )
        clean = daemon.drain()
        server.shutdown()
        server.server_close()
        print(
            "repro serve: drained cleanly"
            if clean
            else "repro serve: drain deadline overran; "
            "in-flight jobs deferred to the next start",
            file=sys.stderr,
            flush=True,
        )
    return EXIT_OK if clean else EXIT_FORCED
