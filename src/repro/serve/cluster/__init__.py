"""Multi-node diagnosis fabric: coordinator/worker sharding with leases.

A *worker* node is the ordinary :class:`~repro.serve.app.DiagnosisDaemon`
-- the coordinator drives it through the same public job protocol end
clients use, which is what makes worker failover invisible: any worker
can execute any job, and canonical report serialization makes the result
byte-identical no matter which one did.

The *coordinator* (:mod:`repro.serve.cluster.coordinator`) admits jobs
through the identical HTTP surface, routes each to a worker by
rendezvous-hashing its shard key over the live membership
(:mod:`repro.serve.cluster.membership`), and tracks every dispatch in a
durable lease table journaled in its own
:class:`~repro.serve.store.JobStore`
(:mod:`repro.serve.cluster.lease`).  Node death, unreachability, or
lease expiry triggers a takeover: the lease is released with a journaled
cause, the job is re-dispatched to a surviving node under seeded
backoff, and the client polling the coordinator never notices.

Execution is **at-least-once** (a takeover can race a worker that was
merely slow), but the visible result is **exactly-once**: job ids are
content fingerprints, re-dispatch is an idempotent resubmission, and the
canonical report any replica produces is byte-identical.
"""

from repro.serve.cluster.client import NodeUnreachable, WorkerClient
from repro.serve.cluster.coordinator import (
    Coordinator,
    CoordinatorConfig,
    parse_worker_specs,
    serve_coordinator,
)
from repro.serve.cluster.lease import Lease, LeaseTable
from repro.serve.cluster.membership import (
    NODE_ALIVE,
    NODE_DEAD,
    NODE_SUSPECT,
    Membership,
    rendezvous_order,
)

__all__ = [
    "Coordinator",
    "CoordinatorConfig",
    "Lease",
    "LeaseTable",
    "Membership",
    "NODE_ALIVE",
    "NODE_DEAD",
    "NODE_SUSPECT",
    "NodeUnreachable",
    "WorkerClient",
    "parse_worker_specs",
    "rendezvous_order",
    "serve_coordinator",
]
