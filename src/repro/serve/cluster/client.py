"""The coordinator's HTTP client to worker nodes, with chaos checkpoints.

Every request crosses two chaos sites bracketing the real transport
call::

    cluster.<op>.send   -- before the request leaves this process;
                           ``conn_refused`` fires here (the request
                           never happened on the peer)
    cluster.<op>.recv   -- after the peer handled the request, before
                           the caller sees the response;
                           ``drop_response`` fires here (the operation
                           *did* happen, the acknowledgement was lost --
                           the classic at-least-once ambiguity) and
                           ``http_503`` is converted into a synthetic
                           503 response (a live peer shedding load)

``<op>`` is one of ``dispatch`` / ``poll`` / ``health`` / ``cancel``, so
a plan can target one operation (``drop_response@cluster.dispatch.recv``)
or all of them (the kind defaults).

All organic network failures (refused, reset, timeout) surface as
:class:`NodeUnreachable` with a :func:`~repro.errors.classify_cause`
cause string; HTTP error *statuses* are returned, not raised -- a peer
that answered is a peer the membership layer should count as reachable.

The transport is injectable: production uses a small ``urllib`` adapter,
tests pass a callable that routes straight into a fake worker's
``handle()`` -- same checkpoints, no sockets.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from repro import chaos
from repro.chaos import InjectedHttp
from repro.errors import classify_cause


class NodeUnreachable(Exception):
    """A request to a worker node failed at the network layer."""

    def __init__(self, url: str, op: str, exc: OSError):
        self.url = url
        self.op = op
        self.cause = classify_cause(exc)
        super().__init__(f"{op} {url} unreachable [{self.cause}]: {exc}")


def urllib_transport(
    url: str, method: str, body: bytes | None, timeout: float
) -> tuple[int, bytes]:
    """Default transport: one stdlib HTTP request, no redirects needed."""
    headers = {"Content-Type": "application/json"} if body else {}
    request = urllib.request.Request(
        url, data=body, method=method, headers=headers
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        # An HTTP error is still an answer; read the body so callers see
        # the peer's error payload (429 retry_after, 503 reasons...).
        return exc.code, exc.read()


class WorkerClient:
    """Typed operations over one injectable transport."""

    def __init__(self, *, timeout: float = 5.0, transport=urllib_transport):
        self._timeout = timeout
        self._transport = transport

    def request(
        self,
        base_url: str,
        op: str,
        method: str,
        path: str,
        payload: dict | None = None,
    ) -> tuple[int, dict]:
        """One operation against one node; returns ``(status, body_dict)``.

        Raises :class:`NodeUnreachable` for anything the network layer
        could not deliver -- including the injected kinds, which arrive
        as :class:`~repro.chaos.InjectedFault` (an ``OSError``) and take
        the same path as an organic refusal or timeout.
        """
        url = base_url.rstrip("/") + path
        body = (
            json.dumps(payload).encode() if payload is not None else None
        )
        try:
            chaos.checkpoint(f"cluster.{op}.send")
            status, raw = self._transport(url, method, body, self._timeout)
            chaos.checkpoint(f"cluster.{op}.recv")
        except InjectedHttp as exc:
            # The peer "answered" with a refusal: synthesize the response
            # so the coordinator's retry path sees a real-looking 503.
            return exc.status, {"error": str(exc)}
        except OSError as exc:
            raise NodeUnreachable(url, op, exc) from exc
        try:
            parsed = json.loads(raw.decode() or "null")
        except (UnicodeDecodeError, json.JSONDecodeError):
            parsed = None
        if not isinstance(parsed, dict):
            parsed = {"error": "unparseable response body"}
        return status, parsed

    # -- the coordinator's vocabulary ---------------------------------------

    def submit(self, base_url: str, spec_payload: dict) -> tuple[int, dict]:
        return self.request(
            base_url, "dispatch", "POST", "/jobs", spec_payload
        )

    def poll(self, base_url: str, job_id: str) -> tuple[int, dict]:
        return self.request(base_url, "poll", "GET", f"/jobs/{job_id}")

    def health(self, base_url: str) -> tuple[int, dict]:
        return self.request(base_url, "health", "GET", "/healthz")

    def cancel(self, base_url: str, job_id: str) -> tuple[int, dict]:
        return self.request(base_url, "cancel", "DELETE", f"/jobs/{job_id}")
