"""The cluster coordinator: admission, routing, leases, failover.

Transport-free like the worker daemon: :meth:`Coordinator.handle` takes
``(method, path, body)`` and returns a
:class:`~repro.serve.app.Response`, so every failover behavior is
testable with a fake transport and a manual clock.  The HTTP surface is
the *same* job protocol the standalone daemon serves -- a client does not
know (or care) whether it is talking to one node or a fabric.

The control loop is two periodic passes, both drivable by hand in tests
(set the intervals to 0 and call :meth:`heartbeat_pass` /
:meth:`pump_pass` directly):

- **heartbeat**: poll every configured worker's ``/healthz`` and feed
  the membership state machine; eviction and rejoin both come from here.
- **pump**: poll every leased job's holder (completion copies the
  worker's canonical report into the coordinator's store; a healthy
  answer renews the lease; a 404 or a dead/expired holder triggers a
  takeover), then dispatch pending jobs to their rendezvous-ranked node
  under a journaled lease.

Dispatch discipline: the lease grant is journaled *before* the dispatch
request leaves, the job is marked ``running`` only on the worker's
acknowledgement, and a failed dispatch releases the lease and backs off
with the same seeded :func:`~repro.campaign.runner.backoff_delay` the
executor uses, bounded in total by ``retry_wall_seconds``.  Because job
ids are content fingerprints and the dispatch is an idempotent
resubmission, a lost acknowledgement (``drop_response``) re-dispatches
harmlessly: the worker answers 200 with the job it already has.
"""

from __future__ import annotations

import json
import math
import os
import signal
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro import chaos
from repro.campaign.runner import backoff_delay
from repro.errors import BindError, JournalError, ServeError, TrialError
from repro.obs.metrics import (
    REGISTRY,
    record_admission_rejected,
    record_dispatch_retry,
    record_drain,
    record_job_transition,
    record_lease_takeover,
    record_recovery,
    set_cluster_nodes,
    set_queue_depth,
)
from repro.serve.app import (
    EXIT_FORCED,
    EXIT_OK,
    Response,
    bind_server,
)
from repro.serve.cluster.client import NodeUnreachable, WorkerClient
from repro.serve.cluster.lease import LeaseTable
from repro.serve.cluster.membership import (
    NODE_DEAD,
    Membership,
    rendezvous_order,
)
from repro.serve.protocol import (
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_RUNNING,
    STATE_SUBMITTED,
    JobSpec,
)
from repro.serve.store import JobStore


def parse_worker_specs(specs) -> dict[str, str]:
    """``name=url`` or bare-``url`` strings -> ordered ``{name: url}``.

    Bare URLs are auto-named ``w0``, ``w1``... in declaration order.
    Duplicate names (or an empty list) are configuration errors.
    """
    nodes: dict[str, str] = {}
    for index, text in enumerate(specs):
        text = text.strip()
        if not text:
            continue
        if "=" in text and not text.split("=", 1)[0].startswith("http"):
            name, _, url = text.partition("=")
            name = name.strip()
            url = url.strip()
        else:
            name, url = f"w{index}", text
        if not url.startswith(("http://", "https://")):
            raise ServeError(
                f"worker {name!r}: url must start with http:// or "
                f"https:// (got {url!r})"
            )
        if name in nodes:
            raise ServeError(f"duplicate worker name {name!r}")
        nodes[name] = url
    if not nodes:
        raise ServeError(
            "coordinator needs at least one worker node (--worker URL); "
            "refusing to start a fabric that can execute nothing"
        )
    return nodes


@dataclass
class CoordinatorConfig:
    """Everything ``repro serve --role coordinator`` needs."""

    store: str | Path = "coordinator.jsonl"
    host: str = "127.0.0.1"
    port: int = 8765
    #: Worker node specs (``name=url`` or bare url); must be non-empty.
    workers: tuple[str, ...] = ()
    #: Seconds between ``/healthz`` polls (0 disables the thread: tests
    #: drive :meth:`Coordinator.heartbeat_pass` manually).
    heartbeat_interval: float = 1.0
    #: Consecutive heartbeat failures before a node is declared dead.
    max_failures: int = 3
    #: Seconds a dispatched job may go unrenewed before takeover.
    lease_seconds: float = 15.0
    #: Seconds between dispatch/poll pump passes (0 disables the thread).
    pump_interval: float = 0.25
    #: Seeded backoff base for dispatch retries and takeovers.
    backoff: float = 0.1
    #: Total wall-clock a job may spend pending/retrying before it is
    #: terminally failed (None: unbounded).
    retry_wall_seconds: float | None = 600.0
    #: Admission floor: below this many routable nodes new submissions
    #: get 503 + Retry-After instead of queueing into a dead fabric.
    min_live: int = 1
    #: Admission bound on not-yet-finished jobs (pending + leased).
    queue_depth: int = 64
    drain_seconds: float = 5.0
    request_timeout: float = 5.0
    fsync: bool = True
    compact_bytes: int | None = 4 << 20
    chaos: str | None = None


@dataclass
class _Pending:
    """One job waiting (or backing off) for dispatch."""

    attempt: int
    not_before: float
    first_queued: float
    #: Previous holder to rank last on re-dispatch (takeover hygiene).
    avoid: str | None = None


class Coordinator:
    """Transport-free coordinator core: store + membership + lease pump."""

    role = "coordinator"

    def __init__(
        self,
        config: CoordinatorConfig,
        *,
        client: WorkerClient | None = None,
        clock=time.monotonic,
    ):
        self.config = config
        self.nodes = parse_worker_specs(config.workers)
        self._clock = clock
        self.membership = Membership(
            self.nodes, max_failures=config.max_failures
        )
        self.client = client or WorkerClient(timeout=config.request_timeout)
        self.store = JobStore(
            config.store,
            fsync=config.fsync,
            compact_bytes=config.compact_bytes,
        )
        self.leases = LeaseTable(
            self.store, lease_seconds=config.lease_seconds, clock=clock
        )
        self._pending: dict[str, _Pending] = {}
        self._lock = threading.RLock()
        self._started = False
        self._draining = False
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> int:
        """Open the store, re-adopt journaled leases, queue the rest.

        A recovered job *with* an unreleased lease is not re-dispatched:
        its old holder may be happily executing (or already done), so the
        lease is re-armed against the live clock and the pump polls the
        holder first -- completion is harvested, a 404 or silence becomes
        an ordinary takeover.  Returns the number of recovered jobs.
        """
        recovered = self.store.open()
        adopted = 0
        images = self.store.lease_images()
        for job_id, image in images.items():
            job = self.store.get(job_id)
            if job is None or job.terminal:
                # A release record lost to a torn tail; harmless.
                self.store.release_lease(job_id, "stale")
                continue
            self.leases.adopt(
                job_id, image["node"], int(image.get("attempt", 1))
            )
            adopted += 1
        now = self._clock()
        with self._lock:
            for job in self.store.jobs():
                if job.terminal or self.leases.get(job.job_id) is not None:
                    continue
                self._pending[job.job_id] = _Pending(
                    attempt=1, not_before=0.0, first_queued=now
                )
        record_recovery(len(recovered))
        self._started = True
        self._update_gauges()
        if self.config.heartbeat_interval > 0:
            self._spawn_loop(
                "repro-cluster-heartbeat",
                self.config.heartbeat_interval,
                self.heartbeat_pass,
            )
        if self.config.pump_interval > 0:
            self._spawn_loop(
                "repro-cluster-pump", self.config.pump_interval, self.pump_pass
            )
        return len(recovered)

    def _spawn_loop(self, name: str, interval: float, fn) -> None:
        def loop() -> None:
            while not self._stop.wait(interval):
                try:
                    fn()
                except Exception:
                    pass  # the control loops must outlive any one bad pass

        thread = threading.Thread(target=loop, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def drain(self) -> bool:
        """Stop admissions and the control loops; leases stay journaled.

        Always clean: dispatched jobs keep running on their workers and
        are re-adopted by the next coordinator; pending jobs are durable
        in the store and recover as pending.
        """
        with self._lock:
            self._draining = True
        self._stop.set()
        for thread in self._threads:
            thread.join(self.config.drain_seconds)
        record_drain("clean")
        self.store.note_drain(True)
        self.store.close()
        return True

    def abort(self) -> None:
        """Release resources after a failed startup."""
        self._stop.set()
        self.store.close()

    # -- admission -----------------------------------------------------------

    def _capacity_retry_after(self) -> int:
        # Long enough for a worker restart to complete one full
        # eviction/rejoin cycle of heartbeats.
        return max(
            1,
            int(
                math.ceil(
                    max(1.0, self.config.heartbeat_interval)
                    * self.config.max_failures
                )
            ),
        )

    def submit(self, spec: JobSpec) -> Response:
        with self._lock:
            if self._draining:
                record_admission_rejected("draining")
                retry_after = max(
                    1, int(math.ceil(self.config.drain_seconds))
                )
                return Response.json(
                    503,
                    {
                        "error": "coordinator is draining; "
                        "resubmit after restart",
                        "retry_after_seconds": retry_after,
                    },
                    retry_after=retry_after,
                )
            backlog = len(self._pending)
        live = len(self.membership.live())
        if live < self.config.min_live:
            record_admission_rejected("no_capacity")
            retry_after = self._capacity_retry_after()
            return Response.json(
                503,
                {
                    "error": (
                        f"cluster below capacity floor "
                        f"({live} live node(s) < {self.config.min_live})"
                    ),
                    "retry_after_seconds": retry_after,
                },
                retry_after=retry_after,
            )
        if backlog + self.leases.count() >= self.config.queue_depth:
            record_admission_rejected("saturated")
            retry_after = max(
                1, int(math.ceil(self.config.lease_seconds))
            )
            return Response.json(
                429,
                {
                    "error": "admission queue is full",
                    "queue_depth": self.config.queue_depth,
                    "retry_after_seconds": retry_after,
                },
                retry_after=retry_after,
            )
        job, created = self.store.submit(spec)
        if not created:
            return Response.json(200, job.status_dict())
        record_job_transition(STATE_SUBMITTED)
        with self._lock:
            self._pending[job.job_id] = _Pending(
                attempt=1, not_before=0.0, first_queued=self._clock()
            )
        self._update_gauges()
        return Response.json(202, job.status_dict())

    def cancel(self, job_id: str) -> Response:
        job = self.store.get(job_id)
        if job is None:
            return Response.json(404, {"error": f"unknown job {job_id!r}"})
        if job.terminal:
            return Response.json(
                409,
                {"error": f"job is already {job.state}", "state": job.state},
            )
        lease = self.leases.get(job_id)
        if lease is not None:
            try:
                self.client.cancel(self.nodes[lease.node], job_id)
            except NodeUnreachable:
                pass  # the worker will abandon the orphan on its own
            self.leases.release(job_id, "cancelled")
        with self._lock:
            self._pending.pop(job_id, None)
        self.store.mark_cancelled(job_id)
        record_job_transition(STATE_CANCELLED)
        self._update_gauges()
        return Response.json(202, self.store.get(job_id).status_dict())

    # -- the control loops ---------------------------------------------------

    def heartbeat_pass(self) -> None:
        """Poll every node's ``/healthz`` (dead ones too: that is rejoin)."""
        for name, url in self.nodes.items():
            try:
                status, _ = self.client.health(url)
            except NodeUnreachable:
                self.membership.note_failure(name)
                continue
            if status == 200:
                self.membership.note_success(name)
            else:
                self.membership.note_failure(name)
        self._update_gauges()

    def pump_pass(self) -> None:
        """One scheduling sweep: harvest/renew leases, then dispatch."""
        now = self._clock()
        self._poll_leases(now)
        self._dispatch_pending(self._clock())
        self._update_gauges()

    def route(self, shard_key: str, avoid: str | None = None) -> list[str]:
        """Routable nodes ranked for ``shard_key``; ``avoid`` (the lease's
        previous holder) is demoted to last so a takeover lands elsewhere
        whenever anywhere else exists."""
        order = rendezvous_order(shard_key, self.membership.live())
        if avoid is not None and avoid in order and len(order) > 1:
            order.remove(avoid)
            order.append(avoid)
        return order

    def _poll_leases(self, now: float) -> None:
        for lease in self.leases.snapshot():
            job = self.store.get(lease.job_id)
            if job is None or job.terminal:
                self.leases.release(lease.job_id, "stale")
                continue
            if self.membership.state(lease.node) == NODE_DEAD:
                self._takeover(lease, "dead")
                continue
            if lease.expires_at <= now:
                self._takeover(lease, "expired")
                continue
            try:
                status, payload = self.client.poll(
                    self.nodes[lease.node], lease.job_id
                )
            except NodeUnreachable:
                # Unreachability is the heartbeat's eviction signal; the
                # lease itself only falls to death or expiry, so one
                # dropped poll of a healthy node changes nothing.
                self.membership.note_failure(lease.node)
                continue
            if status == 404:
                # The holder answered and does not know the job (e.g. it
                # restarted onto an empty store): takeover immediately.
                self._takeover(lease, "missing")
                continue
            if status != 200:
                continue  # worker-side hiccup; expiry is the backstop
            self.membership.note_success(lease.node)
            self._harvest(lease, payload)

    def _harvest(self, lease, payload: dict) -> None:
        """Fold one healthy poll answer into the coordinator's store."""
        state = str(payload.get("state", ""))
        if state == STATE_DONE:
            report = payload.get("report")
            self.store.mark_done(
                lease.job_id, report if isinstance(report, dict) else {}
            )
            record_job_transition(STATE_DONE)
            self.leases.release(lease.job_id, "done")
            self.store.maybe_compact()
        elif state == STATE_FAILED:
            error = payload.get("error")
            self.store.mark_failed(
                lease.job_id,
                error
                if isinstance(error, dict)
                else {"error": "worker reported failure without detail"},
            )
            record_job_transition(STATE_FAILED)
            self.leases.release(lease.job_id, "failed")
            self.store.maybe_compact()
        elif state == STATE_CANCELLED:
            self.store.mark_cancelled(lease.job_id)
            record_job_transition(STATE_CANCELLED)
            self.leases.release(lease.job_id, "cancelled")
        else:
            # submitted/running on the worker: healthy progress.
            if (
                state == STATE_RUNNING
                and self.store.get(lease.job_id).state != STATE_RUNNING
            ):
                self.store.mark_running(lease.job_id, lease.attempt)
                record_job_transition(STATE_RUNNING)
            self.leases.renew(lease.job_id)

    def _takeover(self, lease, cause: str) -> None:
        """Release a lost lease and put the job back in the pending pool."""
        record_lease_takeover(cause)
        self.leases.release(lease.job_id, f"takeover_{cause}")
        self.store.mark_resubmitted(lease.job_id)
        seed = int(
            self.store.get(lease.job_id).spec.fingerprint()[:8], 16
        )
        with self._lock:
            self._pending[lease.job_id] = _Pending(
                attempt=lease.attempt + 1,
                not_before=self._clock()
                + backoff_delay(self.config.backoff, lease.attempt, seed),
                first_queued=self._clock(),
                avoid=lease.node,
            )

    def _dispatch_pending(self, now: float) -> None:
        with self._lock:
            batch = list(self._pending.items())
        for job_id, pending in batch:
            if pending.not_before > now:
                continue
            job = self.store.get(job_id)
            if job is None or job.terminal:
                with self._lock:
                    self._pending.pop(job_id, None)
                continue
            if (
                self.config.retry_wall_seconds is not None
                and now - pending.first_queued
                >= self.config.retry_wall_seconds
            ):
                self._fail_exhausted(job, pending)
                continue
            candidates = self.route(job.spec.shard_key, avoid=pending.avoid)
            if not candidates:
                continue  # whole fabric dead; stay pending, readiness flips
            self._dispatch(job, pending, candidates[0], now)

    def _fail_exhausted(self, job, pending: _Pending) -> None:
        self.store.mark_failed(
            job.job_id,
            TrialError(
                f"job {job.job_id} undispatchable for "
                f"{self.config.retry_wall_seconds:g}s "
                f"(last attempt {pending.attempt})",
                circuit=job.spec.circuit,
                cause="timeout",
                attempts=pending.attempt,
            ).to_dict(),
        )
        record_job_transition(STATE_FAILED)
        with self._lock:
            self._pending.pop(job.job_id, None)

    def _dispatch(self, job, pending: _Pending, node: str, now: float) -> None:
        """Grant-then-dispatch; failure releases the lease and backs off."""
        self.leases.grant(job.job_id, node, pending.attempt)
        seed = int(job.spec.fingerprint()[:8], 16)
        try:
            status, _payload = self.client.submit(
                self.nodes[node], job.spec.to_dict()
            )
        except NodeUnreachable:
            self.membership.note_failure(node)
            self._dispatch_failed(job.job_id, pending, node, seed, now)
            return
        if status in (200, 202):
            # 202: freshly queued on the worker.  200: the worker already
            # had this job (a lost acknowledgement re-sent) -- equally
            # fine, the fingerprint made the resubmission idempotent.
            self.membership.note_success(node)
            self.store.mark_running(job.job_id, pending.attempt)
            record_job_transition(STATE_RUNNING)
            with self._lock:
                self._pending.pop(job.job_id, None)
        else:
            # The worker answered but refused (draining, saturated, ...):
            # same shard node is usually right once it recovers, so back
            # off without demoting it.
            self._dispatch_failed(job.job_id, pending, None, seed, now)

    def _dispatch_failed(
        self,
        job_id: str,
        pending: _Pending,
        avoid: str | None,
        seed: int,
        now: float,
    ) -> None:
        self.leases.release(job_id, "dispatch_failed")
        record_dispatch_retry()
        with self._lock:
            current = self._pending.get(job_id)
            if current is None:
                return  # cancelled while dispatching
            current.attempt = pending.attempt + 1
            current.not_before = now + backoff_delay(
                self.config.backoff, pending.attempt, seed
            )
            if avoid is not None:
                current.avoid = avoid

    # -- health / status -----------------------------------------------------

    def readiness(self) -> tuple[bool, list[str]]:
        reasons: list[str] = []
        if not self._started:
            reasons.append("not started")
        with self._lock:
            if self._draining:
                reasons.append("draining")
        if not self.store.probe_writable():
            reasons.append("job store is not writable")
        if self.store.last_error:
            reasons.append(
                f"unrecovered store write error: {self.store.last_error}"
            )
        live = len(self.membership.live())
        if live < self.config.min_live:
            reasons.append(
                f"cluster below capacity floor "
                f"({live} live node(s) < {self.config.min_live})"
            )
        return (not reasons), reasons

    def cluster_status(self) -> dict:
        now = self._clock()
        with self._lock:
            pending = sorted(self._pending)
            draining = self._draining
        return {
            "role": self.role,
            "nodes": [
                {**image, "url": self.nodes[image["name"]]}
                for image in self.membership.snapshot()
            ],
            "leases": [
                {
                    "id": lease.job_id,
                    "node": lease.node,
                    "attempt": lease.attempt,
                    "expires_in_seconds": round(
                        max(0.0, lease.expires_at - now), 3
                    ),
                    "adopted": lease.adopted,
                }
                for lease in self.leases.snapshot()
            ],
            "pending": pending,
            "counts": self.store.counts(),
            "draining": draining,
        }

    def _update_gauges(self) -> None:
        alive, suspect, dead = self.membership.counts()
        set_cluster_nodes(alive, suspect, dead)
        with self._lock:
            set_queue_depth(len(self._pending), self.leases.count())

    # -- the request surface -------------------------------------------------

    def handle(
        self, method: str, path: str, body: bytes | None = None
    ) -> Response:
        """Same route table the worker daemon serves (plus cluster status)."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        try:
            if method == "GET" and path == "/healthz":
                store_error = self.store.last_error
                if store_error:
                    return Response.json(
                        503,
                        {
                            "status": "unhealthy",
                            "last_store_error": store_error,
                        },
                    )
                return Response.json(200, {"status": "ok"})
            if method == "GET" and path == "/readyz":
                ready, reasons = self.readiness()
                if ready:
                    return Response.json(200, {"status": "ready"})
                return Response.json(
                    503, {"status": "unready", "reasons": reasons}
                )
            if method == "GET" and path == "/metrics":
                self._update_gauges()
                return Response.text(200, REGISTRY.to_prometheus_text())
            if method == "GET" and path == "/cluster/status":
                return Response.json(200, self.cluster_status())
            if method == "POST" and path == "/jobs":
                try:
                    payload = json.loads((body or b"").decode() or "null")
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    return Response.json(
                        400, {"error": f"bad JSON body: {exc}"}
                    )
                return self.submit(JobSpec.from_dict(payload))
            if method == "GET" and path == "/jobs":
                return Response.json(
                    200,
                    {
                        "jobs": [
                            job.status_dict(include_report=False)
                            for job in self.store.jobs()
                        ],
                        "counts": self.store.counts(),
                    },
                )
            if path.startswith("/jobs/"):
                job_id = path[len("/jobs/"):]
                if method == "GET":
                    job = self.store.get(job_id)
                    if job is None:
                        return Response.json(
                            404, {"error": f"unknown job {job_id!r}"}
                        )
                    return Response.json(200, job.status_dict())
                if method == "DELETE":
                    return self.cancel(job_id)
            return Response.json(404, {"error": f"no route {method} {path}"})
        except ServeError as exc:
            return Response.json(400, {"error": str(exc)})
        except JournalError as exc:
            return Response.json(
                500, {"error": f"job store failure: {exc}"}
            )


# -- process entrypoint ------------------------------------------------------


def serve_coordinator(
    config: CoordinatorConfig,
    *,
    install_signals: bool = True,
    on_ready=None,
) -> int:
    """Run a coordinator until SIGTERM/SIGINT; returns the exit code.

    Mirrors :func:`repro.serve.app.serve`: chaos arming, signals before
    recovery, ``BindError``/``JournalError`` raised for the CLI to map
    to exit codes, and a banner the tooling can parse.
    """
    plan = chaos.arm(config.chaos) if config.chaos else chaos.arm_from_env()
    if plan is not None:
        print(
            f"repro serve: CHAOS ARMED ({plan.spec}, seed {plan.seed}) -- "
            "faults below are injected, not real",
            file=sys.stderr,
            flush=True,
        )

    stop = threading.Event()
    sigints = {"n": 0}

    def _on_term(_signum, _frame) -> None:
        stop.set()

    def _on_int(_signum, _frame) -> None:
        sigints["n"] += 1
        if sigints["n"] >= 2:
            print("repro serve: force quit", file=sys.stderr, flush=True)
            os._exit(130)
        stop.set()

    if install_signals:
        signal.signal(signal.SIGTERM, _on_term)
        signal.signal(signal.SIGINT, _on_int)

    coordinator = Coordinator(config)
    recovered = coordinator.start()  # JournalError when the store is locked
    if stop.is_set():
        coordinator.drain()
        return EXIT_OK
    try:
        server = bind_server(config, coordinator)
    except BindError:
        coordinator.abort()
        raise
    host, port = server.server_address[:2]
    print(
        f"repro serve: listening on http://{host}:{port} "
        f"(coordinator over {len(coordinator.nodes)} worker node(s), "
        f"store {config.store}, recovered {recovered} job(s))",
        flush=True,
    )

    listener = threading.Thread(
        target=server.serve_forever, name="repro-serve-listener", daemon=True
    )
    listener.start()
    if on_ready is not None:
        on_ready(server)
    try:
        stop.wait()
    finally:
        print(
            "repro serve: coordinator draining "
            "(leases stay journaled; workers keep executing)",
            file=sys.stderr,
            flush=True,
        )
        clean = coordinator.drain()
        server.shutdown()
        server.server_close()
    return EXIT_OK if clean else EXIT_FORCED
