"""The coordinator's lease table: durable grants, volatile expiry.

A *lease* says "node N may be executing job J, attempt A".  The grant
and release are journaled in the coordinator's
:class:`~repro.serve.store.JobStore` (so a restarted coordinator knows
exactly which workers to re-adopt leases from); the *expiry deadline* is
deliberately not -- a wall-clock deadline written before a crash says
nothing trustworthy after one, so every lease is re-armed against the
live clock when it enters the table, whether by a fresh grant or by
post-restart adoption.

Expiry is the takeover backstop of last resort: node death and 404s are
detected faster by heartbeats and polls, but a network partition that
swallows responses without refusing connections only ever trips the
expiry clock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace


@dataclass
class Lease:
    """One dispatched job's claim on a worker node."""

    job_id: str
    node: str
    attempt: int
    #: Coordinator-clock instant after which the holder is presumed lost.
    expires_at: float
    #: True when this lease was re-adopted from the journal after a
    #: coordinator restart (the holder may already be done).
    adopted: bool = False


class LeaseTable:
    """In-memory lease images over the store's journaled grant/release."""

    def __init__(self, store, *, lease_seconds: float, clock=time.monotonic):
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        self._store = store
        self._lease_seconds = lease_seconds
        self._clock = clock
        self._live: dict[str, Lease] = {}
        self._lock = threading.Lock()

    def grant(self, job_id: str, node: str, attempt: int) -> Lease:
        """Journal a grant (before the dispatch leaves) and arm expiry."""
        self._store.grant_lease(job_id, node, attempt=attempt)
        lease = Lease(
            job_id, node, attempt, self._clock() + self._lease_seconds
        )
        with self._lock:
            self._live[job_id] = lease
        return lease

    def adopt(self, job_id: str, node: str, attempt: int) -> Lease:
        """Re-arm a journal-recovered grant without re-journaling it."""
        lease = Lease(
            job_id,
            node,
            attempt,
            self._clock() + self._lease_seconds,
            adopted=True,
        )
        with self._lock:
            self._live[job_id] = lease
        return lease

    def renew(self, job_id: str) -> None:
        """A healthy poll of the holder pushes the expiry forward, so a
        long-running job on a live worker is never taken over."""
        with self._lock:
            lease = self._live.get(job_id)
            if lease is not None:
                lease.expires_at = self._clock() + self._lease_seconds

    def release(self, job_id: str, cause: str) -> Lease | None:
        """Journal the release; no-op (None) when no lease is held."""
        with self._lock:
            lease = self._live.pop(job_id, None)
        if lease is not None:
            self._store.release_lease(job_id, cause)
        return lease

    def get(self, job_id: str) -> Lease | None:
        with self._lock:
            lease = self._live.get(job_id)
            return replace(lease) if lease is not None else None

    def snapshot(self) -> list[Lease]:
        """Copies of every live lease (safe to iterate while mutating)."""
        with self._lock:
            return [replace(lease) for lease in self._live.values()]

    def count(self) -> int:
        with self._lock:
            return len(self._live)
