"""Worker membership: rendezvous routing + heartbeat-driven health.

Routing uses rendezvous (highest-random-weight) hashing: every node gets
a deterministic per-key score and the key goes to the highest scorer.
Unlike modulo sharding, removing one node only moves the keys that node
owned -- every other shard's affinity (and its warmed ``SimContext``
caches on the worker) survives a membership change untouched.

Health is a failure-count state machine fed by the coordinator's
``/healthz`` polls::

    alive --failure--> suspect --failures >= max--> dead
      ^________________any success (rejoin)___________|

``suspect`` nodes remain routable (one dropped poll must not migrate
every shard); ``dead`` nodes are excluded from routing but stay polled,
so a restarted worker rejoins on its first healthy heartbeat.
"""

from __future__ import annotations

import hashlib
import threading

NODE_ALIVE = "alive"
NODE_SUSPECT = "suspect"
NODE_DEAD = "dead"


def rendezvous_order(key: str, nodes: list[str]) -> list[str]:
    """Nodes ranked by highest-random-weight score for ``key``.

    Deterministic and process-independent (sha256, not ``hash``), so a
    restarted coordinator routes every shard exactly where its
    predecessor did.
    """
    def score(node: str) -> int:
        digest = hashlib.sha256(f"{node}|{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    return sorted(nodes, key=lambda node: (-score(node), node))


class _NodeHealth:
    __slots__ = ("name", "state", "failures")

    def __init__(self, name: str):
        self.name = name
        self.state = NODE_ALIVE  # optimistic: routable until proven dead
        self.failures = 0


class Membership:
    """Failure-count health table over a fixed set of named nodes.

    Thread-safe: the heartbeat thread mutates while HTTP threads read
    for routing and status.
    """

    def __init__(self, names, *, max_failures: int = 3):
        if max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        self.max_failures = max_failures
        self._nodes = {name: _NodeHealth(name) for name in names}
        if not self._nodes:
            raise ValueError("membership needs at least one node")
        self._lock = threading.Lock()

    def note_success(self, name: str) -> str:
        """A healthy poll: any state (including dead) snaps back to alive."""
        with self._lock:
            node = self._nodes[name]
            node.failures = 0
            node.state = NODE_ALIVE
            return node.state

    def note_failure(self, name: str) -> str:
        """A failed poll; returns the node's new state."""
        with self._lock:
            node = self._nodes[name]
            node.failures += 1
            node.state = (
                NODE_DEAD if node.failures >= self.max_failures else NODE_SUSPECT
            )
            return node.state

    def state(self, name: str) -> str:
        with self._lock:
            return self._nodes[name].state

    def names(self) -> list[str]:
        return list(self._nodes)

    def live(self) -> list[str]:
        """Routable nodes (alive + suspect), declaration order."""
        with self._lock:
            return [
                node.name
                for node in self._nodes.values()
                if node.state != NODE_DEAD
            ]

    def counts(self) -> tuple[int, int, int]:
        """(alive, suspect, dead) tallies for the membership gauges."""
        with self._lock:
            alive = suspect = dead = 0
            for node in self._nodes.values():
                if node.state == NODE_ALIVE:
                    alive += 1
                elif node.state == NODE_SUSPECT:
                    suspect += 1
                else:
                    dead += 1
            return alive, suspect, dead

    def snapshot(self) -> list[dict]:
        """Per-node images for ``/cluster/status``."""
        with self._lock:
            return [
                {
                    "name": node.name,
                    "state": node.state,
                    "failures": node.failures,
                }
                for node in self._nodes.values()
            ]
