"""Shard-aware worker executor for the diagnosis daemon.

Jobs are routed to a fixed worker slot by a stable hash of their
``(circuit, pattern_seed)`` shard key, so repeated jobs against one
device family hit the same worker -- and therefore the same warmed
``SimContext``/kernel caches -- instead of bouncing between cold workers.

The failure discipline is the campaign runner's, reused rather than
reinvented: an in-job exception is classified through the
:func:`~repro.errors.classify_cause` taxonomy, transient causes
(``crash``/``timeout``) buy seeded-backoff retries
(:func:`~repro.campaign.runner.backoff_delay`), deterministic causes fail
the job immediately, and every attempt is isolated -- one job's failure
never takes a worker down.

**The watchdog** makes the pool self-healing against the failures the
per-attempt isolation cannot catch: a worker thread that *dies* (a
``BaseException`` out of a job -- the chaos layer's
:class:`~repro.chaos.plan.WorkerDeath` models a segfault-equivalent) or
*wedges* (stuck past ``stuck_seconds`` in non-cooperative code).  Each
slot carries a heartbeat and a generation counter; the watchdog thread
requeues the victim's in-flight job under the transient taxonomy
(``crash`` for a death, ``timeout`` for a wedge), retires the old thread
by bumping the generation, and spawns a replacement on the same shard
queue.  A wedged thread that eventually wakes finds its item *abandoned*
and its generation stale, so it reports nothing and exits instead of
double-finishing the job.  ``retry_wall_seconds`` bounds the total
wall-clock a job may spend being retried and requeued before it is
terminally failed.

Lifecycle: :meth:`ShardExecutor.drain` stops workers from *starting*
queued jobs (they stay durable in the store and recover on restart) while
in-flight jobs run to completion under the drain deadline.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
from dataclasses import dataclass, field

from repro import chaos
from repro.campaign.driver import provision_patterns
from repro.campaign.runner import backoff_delay
from repro.circuit.library import load_circuit
from repro.core.budget import Budget, CancellationToken, qos_class
from repro.core.diagnose import DiagnosisConfig, Diagnoser
from repro.core.single_fault import diagnose_single_fault
from repro.core.slat import diagnose_slat
from repro.errors import TRANSIENT_CAUSES, TrialError, classify_cause
from repro.obs.metrics import record_watchdog_requeue, record_watchdog_respawn
from repro.serve.protocol import JobSpec

_STOP = object()


# -- job execution (the daemon's unit of work) -------------------------------


def execute_job(spec: JobSpec, token: CancellationToken | None = None,
                degraded: bool = False):
    """Run one diagnosis job to a :class:`~repro.core.report.DiagnosisReport`.

    Mirrors the CLI ``diagnose`` path: tolerant ingest when
    ``noise_report`` is set, strict parse otherwise, method dispatch, and
    the optional post-diagnosis oracle.  The budget comes from the job's
    QoS class (degraded under load) unless the spec carries explicit
    overrides; ``token`` keeps the run cancellable either way.
    """
    netlist = load_circuit(spec.circuit)
    patterns = provision_patterns(netlist, spec.pattern_seed)
    raw = None
    if spec.noise_report:
        from repro.tester.noise import ingest_text

        sanitized = ingest_text(spec.datalog)
        datalog = sanitized.datalog
        raw = sanitized.raw
    else:
        from repro.tester.datalog import Datalog

        datalog = Datalog.from_text(spec.datalog)
    datalog.validate_for(netlist, n_patterns=patterns.n)
    oracle_raw = (raw if raw is not None else datalog) if spec.validate else None

    if spec.method == "xcover":
        if (
            spec.deadline_seconds is not None
            or spec.max_multiplets is not None
            or spec.max_expansions is not None
        ):
            budget = Budget(
                deadline_seconds=spec.deadline_seconds,
                max_multiplets=spec.max_multiplets,
                max_expansions=spec.max_expansions,
                token=token,
            )
        else:
            budget = qos_class(spec.qos).budget(degraded=degraded, token=token)
        report = Diagnoser(netlist, DiagnosisConfig()).diagnose(
            patterns, datalog, budget=budget, raw=oracle_raw
        )
    elif spec.method == "slat":
        report = diagnose_slat(netlist, patterns, datalog)
    else:
        report = diagnose_single_fault(netlist, patterns, datalog)
    if oracle_raw is not None and report.consistency is None:
        from repro.core.oracle import validate_report

        report = validate_report(netlist, patterns, report, oracle_raw)
    return report


# -- the executor ------------------------------------------------------------


@dataclass
class _Item:
    job_id: str
    spec: JobSpec
    token: CancellationToken
    degraded: bool
    attempts_base: int = 0
    #: Last attempt number reported through ``on_running``.
    attempt: int = 0
    #: Executor-clock time of the job's very first attempt, carried
    #: across watchdog requeues so the retry wall clock is total.
    first_started: float | None = None
    #: Set by the watchdog when the job was handed to a requeued copy;
    #: the original holder must report nothing further.
    abandoned: bool = False


class _WorkerSlot:
    """One shard: a queue, the thread currently owning it, health state."""

    __slots__ = ("index", "queue", "thread", "generation", "item",
                 "started", "heartbeat")

    def __init__(self, index: int):
        self.index = index
        self.queue: queue.Queue = queue.Queue()
        self.thread: threading.Thread | None = None
        #: Bumped on every respawn; a thread whose spawn generation is
        #: stale retires itself instead of competing for the queue.
        self.generation = 0
        self.item: _Item | None = None
        self.started: float | None = None
        self.heartbeat: float | None = None


class ExecutorCallbacks:
    """What the executor tells the daemon (all called from worker threads)."""

    def on_running(self, job_id: str, attempt: int) -> None: ...

    def on_done(self, job_id: str, report) -> None: ...

    def on_failed(self, job_id: str, error: TrialError) -> None: ...

    def on_cancelled(self, job_id: str) -> None: ...

    def on_deferred(self, job_id: str) -> None:
        """A queued job left unexecuted by a drain (recovers on restart)."""

    def on_requeued(self, job_id: str, cause: str) -> None:
        """The watchdog moved a job off a dead/wedged worker."""


def shard_index(key: str, workers: int) -> int:
    """Stable shard routing (process-independent, unlike ``hash``)."""
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:4], "big") % max(1, workers)


class ShardExecutor:
    """Fixed pool of shard-affine worker threads over per-worker queues."""

    def __init__(
        self,
        callbacks: ExecutorCallbacks,
        *,
        workers: int = 2,
        retries: int = 1,
        backoff: float = 0.05,
        run=execute_job,
        sleep=time.sleep,
        clock=time.monotonic,
        stuck_seconds: float | None = None,
        watchdog_interval: float = 1.0,
        retry_wall_seconds: float | None = None,
    ):
        self._cb = callbacks
        self._workers = max(1, workers)
        self._retries = retries
        self._backoff = backoff
        self._run = run
        self._sleep = sleep
        self._clock = clock
        self._stuck_seconds = stuck_seconds
        self._watchdog_interval = watchdog_interval
        self._retry_wall_seconds = retry_wall_seconds
        self._slots = [_WorkerSlot(i) for i in range(self._workers)]
        self._draining = threading.Event()
        self._watchdog_stop = threading.Event()
        self._watchdog_thread: threading.Thread | None = None
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        for slot in self._slots:
            self._spawn(slot)
        if self._watchdog_interval:
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop,
                name="repro-serve-watchdog",
                daemon=True,
            )
            self._watchdog_thread.start()

    def _spawn(self, slot: _WorkerSlot) -> None:
        with self._lock:
            slot.generation += 1
            generation = slot.generation
            thread = threading.Thread(
                target=self._worker,
                args=(slot, generation),
                name=f"repro-serve-worker-{slot.index}g{generation}",
                daemon=True,
            )
            slot.thread = thread
            slot.heartbeat = self._clock()
        thread.start()

    def alive(self) -> bool:
        """Is the pool still able to make progress?

        With the watchdog running this self-heals: a dead worker is
        replaced within one watchdog interval, so a False here means the
        watchdog itself is gone too.
        """
        with self._lock:
            threads = [slot.thread for slot in self._slots]
        return bool(threads) and all(
            t is not None and t.is_alive() for t in threads
        )

    def heartbeats(self) -> dict[int, float | None]:
        """Per-slot last-heartbeat times (introspection and tests)."""
        with self._lock:
            return {slot.index: slot.heartbeat for slot in self._slots}

    def drain(self, deadline_seconds: float, clock=time.monotonic) -> bool:
        """Stop starting queued jobs; wait for in-flight ones.

        Returns True when every worker exited within the deadline.  Queued
        jobs are reported through ``on_deferred`` and stay pending in the
        durable store.  The watchdog is stopped first so it cannot
        requeue or respawn against the shutdown.
        """
        self._watchdog_stop.set()
        if self._watchdog_thread is not None:
            self._watchdog_thread.join(1.0)
        self._draining.set()
        for slot in self._slots:
            slot.queue.put(_STOP)
        horizon = clock() + deadline_seconds
        threads = [slot.thread for slot in self._slots if slot.thread]
        for thread in threads:
            thread.join(max(0.0, horizon - clock()))
        return all(not t.is_alive() for t in threads)

    def cancel_inflight(self) -> list[str]:
        """Job ids currently executing (the drain-overrun victims)."""
        with self._lock:
            return [
                slot.item.job_id for slot in self._slots if slot.item is not None
            ]

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        job_id: str,
        spec: JobSpec,
        token: CancellationToken,
        *,
        degraded: bool = False,
    ) -> None:
        idx = shard_index(spec.shard_key, self._workers)
        self._slots[idx].queue.put(_Item(job_id, spec, token, degraded))

    def queued_jobs(self) -> int:
        """Approximate number of accepted-but-unstarted jobs."""
        return sum(slot.queue.qsize() for slot in self._slots)

    # -- the watchdog --------------------------------------------------------

    def _watchdog_loop(self) -> None:
        while not self._watchdog_stop.wait(self._watchdog_interval):
            try:
                self.watchdog_pass()
            except Exception:
                pass  # the watchdog must outlive any callback bug

    def watchdog_pass(self) -> None:
        """One detection sweep (public so tests can drive it directly)."""
        if self._draining.is_set():
            return
        now = self._clock()
        for slot in self._slots:
            self._reap(slot, now)

    def _reap(self, slot: _WorkerSlot, now: float) -> None:
        with self._lock:
            thread = slot.thread
            item = slot.item
            started = slot.started
            dead = thread is None or not thread.is_alive()
            wedged = (
                not dead
                and item is not None
                and started is not None
                and self._stuck_seconds is not None
                and now - started >= self._stuck_seconds
            )
            if not dead and not wedged:
                return
            victim: _Item | None = None
            if item is not None and not item.abandoned:
                item.abandoned = True
                victim = item
            slot.item = None
            slot.started = None
        if victim is not None:
            cause = "crash" if dead else "timeout"
            self._requeue(slot, victim, cause)
        self._spawn(slot)  # retires the old thread via the generation bump
        record_watchdog_respawn()

    def _wall_exhausted(self, item: _Item) -> bool:
        return (
            self._retry_wall_seconds is not None
            and item.first_started is not None
            and self._clock() - item.first_started >= self._retry_wall_seconds
        )

    def _requeue(self, slot: _WorkerSlot, item: _Item, cause: str) -> None:
        """Give a victim job back to its shard queue -- or fail it if the
        total-retry wall clock is spent."""
        if self._wall_exhausted(item):
            try:
                self._cb.on_failed(
                    item.job_id,
                    TrialError(
                        f"job {item.job_id} abandoned by the watchdog "
                        f"({cause} worker) with the "
                        f"{self._retry_wall_seconds:g}s total-retry wall "
                        "clock exhausted",
                        circuit=item.spec.circuit,
                        cause=cause,
                        attempts=max(1, item.attempt),
                    ),
                )
            except Exception:
                pass
            return
        record_watchdog_requeue(cause)
        try:
            self._cb.on_requeued(item.job_id, cause)
        except Exception:
            pass
        slot.queue.put(
            _Item(
                item.job_id,
                item.spec,
                item.token,
                item.degraded,
                attempts_base=max(item.attempt, item.attempts_base),
                first_started=item.first_started,
            )
        )

    # -- worker loop ---------------------------------------------------------

    def _worker(self, slot: _WorkerSlot, generation: int) -> None:
        q = slot.queue
        while True:
            if slot.generation != generation:
                return  # retired by the watchdog; a replacement owns the queue
            item = q.get()
            if item is _STOP:
                break
            slot.heartbeat = self._clock()
            if self._draining.is_set():
                self._cb.on_deferred(item.job_id)
                continue
            self._execute(slot, item)
            slot.heartbeat = self._clock()
        # Drain leftovers so the daemon can account for every deferred job.
        while True:
            try:
                item = q.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                self._cb.on_deferred(item.job_id)

    def _execute(self, slot: _WorkerSlot, item: _Item) -> None:
        if item.token.cancelled:
            self._cb.on_cancelled(item.job_id)
            return
        with self._lock:
            slot.item = item
            slot.started = self._clock()
        try:
            self._execute_attempts(item)
        except Exception as exc:  # callback bug: isolate, don't kill the worker
            try:
                self._cb.on_failed(
                    item.job_id,
                    TrialError(
                        f"job {item.job_id} executor error: {exc}",
                        circuit=item.spec.circuit,
                        cause="exception",
                    ),
                )
            except Exception:
                pass
        # Deliberately NOT a ``finally``: a ``BaseException`` (an injected
        # WorkerDeath, interpreter teardown) must leave ``slot.item`` in
        # place so the watchdog can see what the dying thread was holding.
        with self._lock:
            slot.item = None
            slot.started = None

    def _execute_attempts(self, item: _Item) -> None:
        attempt = item.attempts_base
        while True:
            attempt += 1
            item.attempt = attempt
            if item.first_started is None:
                item.first_started = self._clock()
            self._cb.on_running(item.job_id, attempt)
            chaos.checkpoint("executor.job")
            try:
                report = self._run(item.spec, item.token, item.degraded)
            except Exception as exc:
                cause = classify_cause(exc)
                transient = cause in TRANSIENT_CAUSES
                if (
                    transient
                    and attempt <= item.attempts_base + self._retries
                    and not self._wall_exhausted(item)
                ):
                    seed = int(item.spec.fingerprint()[:8], 16)
                    self._sleep(
                        backoff_delay(self._backoff, attempt, seed)
                    )
                    continue
                if item.abandoned:
                    return  # a requeued copy owns the job's terminal state
                self._cb.on_failed(
                    item.job_id,
                    TrialError(
                        f"job {item.job_id} failed: {exc}",
                        circuit=item.spec.circuit,
                        cause=cause,
                        attempts=attempt,
                    ),
                )
                return
            if item.abandoned:
                # The watchdog declared this worker wedged and requeued
                # the job; whatever this late result is, it is not ours
                # to report.
                return
            if item.token.cancelled:
                # The run returned a partial report because the token
                # tripped mid-flight; whoever cancelled decides whether
                # that means "cancelled" or "defer to restart".
                self._cb.on_cancelled(item.job_id)
                return
            self._cb.on_done(item.job_id, report)
            return
