"""Shard-aware worker executor for the diagnosis daemon.

Jobs are routed to a fixed worker thread by a stable hash of their
``(circuit, pattern_seed)`` shard key, so repeated jobs against one
device family hit the same worker -- and therefore the same warmed
``SimContext``/kernel caches -- instead of bouncing between cold workers.

The failure discipline is the campaign runner's, reused rather than
reinvented: an in-job exception is classified through the
:func:`~repro.errors.classify_cause` taxonomy, transient causes
(``crash``/``timeout``) buy seeded-backoff retries
(:func:`~repro.campaign.runner.backoff_delay`), deterministic causes fail
the job immediately, and every attempt is isolated -- one job's failure
never takes a worker down.

Lifecycle: :meth:`ShardExecutor.drain` stops workers from *starting*
queued jobs (they stay durable in the store and recover on restart) while
in-flight jobs run to completion under the drain deadline.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
from dataclasses import dataclass

from repro.campaign.driver import provision_patterns
from repro.campaign.runner import backoff_delay
from repro.circuit.library import load_circuit
from repro.core.budget import Budget, CancellationToken, qos_class
from repro.core.diagnose import DiagnosisConfig, Diagnoser
from repro.core.single_fault import diagnose_single_fault
from repro.core.slat import diagnose_slat
from repro.errors import TRANSIENT_CAUSES, TrialError, classify_cause
from repro.serve.protocol import JobSpec

_STOP = object()


# -- job execution (the daemon's unit of work) -------------------------------


def execute_job(spec: JobSpec, token: CancellationToken | None = None,
                degraded: bool = False):
    """Run one diagnosis job to a :class:`~repro.core.report.DiagnosisReport`.

    Mirrors the CLI ``diagnose`` path: tolerant ingest when
    ``noise_report`` is set, strict parse otherwise, method dispatch, and
    the optional post-diagnosis oracle.  The budget comes from the job's
    QoS class (degraded under load) unless the spec carries explicit
    overrides; ``token`` keeps the run cancellable either way.
    """
    netlist = load_circuit(spec.circuit)
    patterns = provision_patterns(netlist, spec.pattern_seed)
    raw = None
    if spec.noise_report:
        from repro.tester.noise import ingest_text

        sanitized = ingest_text(spec.datalog)
        datalog = sanitized.datalog
        raw = sanitized.raw
    else:
        from repro.tester.datalog import Datalog

        datalog = Datalog.from_text(spec.datalog)
    datalog.validate_for(netlist, n_patterns=patterns.n)
    oracle_raw = (raw if raw is not None else datalog) if spec.validate else None

    if spec.method == "xcover":
        if (
            spec.deadline_seconds is not None
            or spec.max_multiplets is not None
            or spec.max_expansions is not None
        ):
            budget = Budget(
                deadline_seconds=spec.deadline_seconds,
                max_multiplets=spec.max_multiplets,
                max_expansions=spec.max_expansions,
                token=token,
            )
        else:
            budget = qos_class(spec.qos).budget(degraded=degraded, token=token)
        report = Diagnoser(netlist, DiagnosisConfig()).diagnose(
            patterns, datalog, budget=budget, raw=oracle_raw
        )
    elif spec.method == "slat":
        report = diagnose_slat(netlist, patterns, datalog)
    else:
        report = diagnose_single_fault(netlist, patterns, datalog)
    if oracle_raw is not None and report.consistency is None:
        from repro.core.oracle import validate_report

        report = validate_report(netlist, patterns, report, oracle_raw)
    return report


# -- the executor ------------------------------------------------------------


@dataclass
class _Item:
    job_id: str
    spec: JobSpec
    token: CancellationToken
    degraded: bool
    attempts_base: int = 0


class ExecutorCallbacks:
    """What the executor tells the daemon (all called from worker threads)."""

    def on_running(self, job_id: str, attempt: int) -> None: ...

    def on_done(self, job_id: str, report) -> None: ...

    def on_failed(self, job_id: str, error: TrialError) -> None: ...

    def on_cancelled(self, job_id: str) -> None: ...

    def on_deferred(self, job_id: str) -> None:
        """A queued job left unexecuted by a drain (recovers on restart)."""


def shard_index(key: str, workers: int) -> int:
    """Stable shard routing (process-independent, unlike ``hash``)."""
    digest = hashlib.sha256(key.encode()).digest()
    return int.from_bytes(digest[:4], "big") % max(1, workers)


class ShardExecutor:
    """Fixed pool of shard-affine worker threads over per-worker queues."""

    def __init__(
        self,
        callbacks: ExecutorCallbacks,
        *,
        workers: int = 2,
        retries: int = 1,
        backoff: float = 0.05,
        run=execute_job,
        sleep=time.sleep,
    ):
        self._cb = callbacks
        self._workers = max(1, workers)
        self._retries = retries
        self._backoff = backoff
        self._run = run
        self._sleep = sleep
        self._queues: list[queue.Queue] = [
            queue.Queue() for _ in range(self._workers)
        ]
        self._threads: list[threading.Thread] = []
        self._draining = threading.Event()
        self._inflight: dict[int, str] = {}
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        for idx in range(self._workers):
            thread = threading.Thread(
                target=self._worker,
                args=(idx, self._queues[idx]),
                name=f"repro-serve-worker-{idx}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def alive(self) -> bool:
        """Is the pool still able to make progress?"""
        return bool(self._threads) and all(t.is_alive() for t in self._threads)

    def drain(self, deadline_seconds: float, clock=time.monotonic) -> bool:
        """Stop starting queued jobs; wait for in-flight ones.

        Returns True when every worker exited within the deadline.  Queued
        jobs are reported through ``on_deferred`` and stay pending in the
        durable store.
        """
        self._draining.set()
        for q in self._queues:
            q.put(_STOP)
        horizon = clock() + deadline_seconds
        for thread in self._threads:
            thread.join(max(0.0, horizon - clock()))
        return all(not t.is_alive() for t in self._threads)

    def cancel_inflight(self) -> list[str]:
        """Job ids currently executing (the drain-overrun victims)."""
        with self._lock:
            return list(self._inflight.values())

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        job_id: str,
        spec: JobSpec,
        token: CancellationToken,
        *,
        degraded: bool = False,
    ) -> None:
        idx = shard_index(spec.shard_key, self._workers)
        self._queues[idx].put(_Item(job_id, spec, token, degraded))

    def queued_jobs(self) -> int:
        """Approximate number of accepted-but-unstarted jobs."""
        return sum(q.qsize() for q in self._queues)

    # -- worker loop ---------------------------------------------------------

    def _worker(self, idx: int, q: queue.Queue) -> None:
        while True:
            item = q.get()
            if item is _STOP:
                break
            if self._draining.is_set():
                self._cb.on_deferred(item.job_id)
                continue
            self._execute(idx, item)
        # Drain leftovers so the daemon can account for every deferred job.
        while True:
            try:
                item = q.get_nowait()
            except queue.Empty:
                break
            if item is not _STOP:
                self._cb.on_deferred(item.job_id)

    def _execute(self, idx: int, item: _Item) -> None:
        if item.token.cancelled:
            self._cb.on_cancelled(item.job_id)
            return
        with self._lock:
            self._inflight[idx] = item.job_id
        try:
            attempt = item.attempts_base
            while True:
                attempt += 1
                self._cb.on_running(item.job_id, attempt)
                try:
                    report = self._run(item.spec, item.token, item.degraded)
                except Exception as exc:
                    cause = classify_cause(exc)
                    transient = cause in TRANSIENT_CAUSES
                    if transient and attempt <= item.attempts_base + self._retries:
                        seed = int(item.spec.fingerprint()[:8], 16)
                        self._sleep(
                            backoff_delay(self._backoff, attempt, seed)
                        )
                        continue
                    self._cb.on_failed(
                        item.job_id,
                        TrialError(
                            f"job {item.job_id} failed: {exc}",
                            circuit=item.spec.circuit,
                            cause=cause,
                            attempts=attempt,
                        ),
                    )
                    return
                if item.token.cancelled:
                    # The run returned a partial report because the token
                    # tripped mid-flight; whoever cancelled decides whether
                    # that means "cancelled" or "defer to restart".
                    self._cb.on_cancelled(item.job_id)
                    return
                self._cb.on_done(item.job_id, report)
                return
        except Exception as exc:  # callback bug: isolate, don't kill the worker
            try:
                self._cb.on_failed(
                    item.job_id,
                    TrialError(
                        f"job {item.job_id} executor error: {exc}",
                        circuit=item.spec.circuit,
                        cause="exception",
                    ),
                )
            except Exception:
                pass
        finally:
            with self._lock:
                self._inflight.pop(idx, None)
