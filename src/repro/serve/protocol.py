"""Job protocol for the diagnosis daemon: specs, fingerprints, reports.

A *job* is one diagnosis request -- a circuit name, the device's datalog
text, and the knobs the CLI ``diagnose`` command would take -- submitted
over HTTP and executed asynchronously.  Three properties matter here:

- **fingerprints**: a job is identified by a content digest of its spec,
  so resubmitting the same request is idempotent (the daemon returns the
  existing job instead of queueing a duplicate) and crash recovery can
  re-enqueue a journaled job without inventing new identity;
- **canonical reports**: the report stored and served for a job strips
  the wall-clock and cache-warmth dependent ``stats`` entries
  (``seconds*``, ``sim_*``, ``trace``), so re-executing a job -- after a
  retry, a crash, or a restart -- reproduces byte-identical bytes
  whenever the job's budget is deterministic (count ceilings, not
  deadlines);
- **state machine**: ``submitted -> running -> done | failed | cancelled``,
  with every transition journaled by the store.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.errors import ServeError

#: Job lifecycle states, in transition order.
STATE_SUBMITTED = "submitted"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_CANCELLED = "cancelled"

JOB_STATES = (
    STATE_SUBMITTED,
    STATE_RUNNING,
    STATE_DONE,
    STATE_FAILED,
    STATE_CANCELLED,
)

#: States a job never leaves.
TERMINAL_STATES = frozenset({STATE_DONE, STATE_FAILED, STATE_CANCELLED})

_METHODS = ("xcover", "slat", "single")

#: The complete submission vocabulary; :meth:`JobSpec.from_dict` rejects
#: anything outside it so typos cannot silently mint a different job id.
_SPEC_KEYS = frozenset(
    {
        "circuit",
        "datalog",
        "method",
        "pattern_seed",
        "qos",
        "noise_report",
        "validate",
        "deadline_seconds",
        "max_multiplets",
        "max_expansions",
    }
)


@dataclass(frozen=True)
class JobSpec:
    """Everything that determines one diagnosis job's result."""

    circuit: str
    datalog: str
    method: str = "xcover"
    pattern_seed: int = 7
    qos: str = "standard"
    noise_report: bool = False
    validate: bool = False
    #: Explicit per-job budget overrides; when any is set they replace the
    #: QoS class's envelope entirely (mirrors the CLI budget flags).
    deadline_seconds: float | None = None
    max_multiplets: int | None = None
    max_expansions: int | None = None

    def __post_init__(self) -> None:
        if not self.circuit:
            raise ServeError("job spec needs a non-empty 'circuit'")
        if not self.datalog:
            raise ServeError("job spec needs a non-empty 'datalog'")
        if self.method not in _METHODS:
            raise ServeError(
                f"unknown method {self.method!r}; known: {', '.join(_METHODS)}"
            )
        # Validate the QoS name eagerly so a bad submission is a 400 at
        # admission, not a failed job at execution.
        from repro.core.budget import qos_class

        qos_class(self.qos)

    @property
    def shard_key(self) -> str:
        """Executor affinity key: jobs for one (circuit, test set) land on
        one worker so the ``SimContext``/kernel caches stay hot."""
        return f"{self.circuit}:{self.pattern_seed}"

    def fingerprint(self) -> str:
        """Content digest of the spec (the job's durable identity)."""
        image = (
            self.circuit,
            self.datalog,
            self.method,
            self.pattern_seed,
            self.qos,
            self.noise_report,
            self.validate,
            self.deadline_seconds,
            self.max_multiplets,
            self.max_expansions,
        )
        return hashlib.sha256(repr(image).encode()).hexdigest()[:24]

    def to_dict(self) -> dict:
        payload: dict = {
            "circuit": self.circuit,
            "datalog": self.datalog,
            "method": self.method,
            "pattern_seed": self.pattern_seed,
            "qos": self.qos,
        }
        if self.noise_report:
            payload["noise_report"] = True
        if self.validate:
            payload["validate"] = True
        if self.deadline_seconds is not None:
            payload["deadline_seconds"] = self.deadline_seconds
        if self.max_multiplets is not None:
            payload["max_multiplets"] = self.max_multiplets
        if self.max_expansions is not None:
            payload["max_expansions"] = self.max_expansions
        return payload

    @classmethod
    def from_dict(cls, payload: object) -> "JobSpec":
        """Parse a submission body; anything malformed is a :class:`ServeError`.

        Unknown keys are rejected by name rather than silently ignored: a
        typo'd field (``pattern_sed``) would otherwise fall back to its
        default and fingerprint to a *different* job id than the client
        intended -- an idempotency landmine, not a convenience.
        """
        if not isinstance(payload, dict):
            raise ServeError("job submission must be a JSON object")
        unknown = sorted(set(map(str, payload)) - _SPEC_KEYS)
        if unknown:
            raise ServeError(
                f"unknown job spec field(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(_SPEC_KEYS))})"
            )
        try:
            return cls(
                circuit=str(payload.get("circuit", "")),
                datalog=str(payload.get("datalog", "")),
                method=str(payload.get("method", "xcover")),
                pattern_seed=int(payload.get("pattern_seed", 7)),
                qos=str(payload.get("qos", "standard")),
                noise_report=bool(payload.get("noise_report", False)),
                validate=bool(payload.get("validate", False)),
                deadline_seconds=(
                    float(payload["deadline_seconds"])
                    if payload.get("deadline_seconds") is not None
                    else None
                ),
                max_multiplets=(
                    int(payload["max_multiplets"])
                    if payload.get("max_multiplets") is not None
                    else None
                ),
                max_expansions=(
                    int(payload["max_expansions"])
                    if payload.get("max_expansions") is not None
                    else None
                ),
            )
        except (TypeError, ValueError) as exc:
            raise ServeError(f"malformed job spec: {exc}") from exc


def job_id_for(spec: JobSpec) -> str:
    """Deterministic job id (``j`` + fingerprint prefix): resubmission of
    an identical spec maps to the same job."""
    return "j" + spec.fingerprint()[:16]


# -- canonical report serialization -----------------------------------------

#: ``stats`` keys that vary run-to-run without changing the diagnosis:
#: wall-clock timings, simulation-effort counters (cache-warmth
#: dependent), and the optional trace tree.
_VOLATILE_STAT_PREFIXES = ("seconds", "sim_")
_VOLATILE_STAT_KEYS = frozenset({"trace"})


def canonical_report_dict(report) -> dict:
    """A :class:`~repro.core.report.DiagnosisReport` image with every
    volatile ``stats`` entry removed."""
    payload = report.to_dict()
    stats = payload.get("stats", {})
    payload["stats"] = {
        key: value
        for key, value in stats.items()
        if key not in _VOLATILE_STAT_KEYS
        and not any(key.startswith(p) for p in _VOLATILE_STAT_PREFIXES)
    }
    return payload


def canonical_report_json(report) -> str:
    """Byte-stable JSON of a report: volatile stats stripped, keys sorted,
    compact separators.  Two executions of the same deterministic job
    produce identical strings."""
    return json.dumps(
        canonical_report_dict(report), sort_keys=True, separators=(",", ":")
    )
