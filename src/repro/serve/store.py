"""Durable job store: the daemon's crash-safe source of truth.

Layered on the campaign journal's append-only JSONL discipline
(:mod:`repro.campaign.journal`): every job submission and every state
transition is one fsync'd JSON line, so the store's in-memory image can
be reconstructed exactly by replaying the file.  ``kill -9`` at any
instant loses at most the record being written (the torn tail is dropped
on reopen), and a job whose terminal record never made it to disk is
simply still ``submitted``/``running`` on replay -- :meth:`JobStore.open`
resets such jobs to ``submitted`` and hands them back for re-execution.

Record schema (one object per line)::

    {"kind": "header", "v": 1, "store": "jobs"}
    {"kind": "job",    "v": 1, "id": "j...", "fingerprint": "...",
     "degraded": false, "spec": {...}}
    {"kind": "state",  "v": 1, "id": "j...", "state": "running",
     "attempts": 1}                       # + "report" on done,
                                          #   "error" on failed,
                                          #   "recovered" on replay resets
    {"kind": "lease",  "v": 1, "id": "j...", "op": "grant",
     "node": "w0", "attempt": 2}          # coordinator dispatch leases;
    {"kind": "lease",  "v": 1, "id": "j...", "op": "release",
     "node": "w0", "cause": "done"}       # replay keeps only unreleased
                                          # grants (the live lease table)

The lease records are the cluster coordinator's durable lease table:
a grant is journaled *before* the job is dispatched to a worker node, so
a coordinator restart knows exactly which node may still be executing
which job and can re-adopt (poll the old holder) instead of blindly
re-dispatching.  Expiry is never journaled -- it is re-armed against the
live clock on every open -- because a wall-clock deadline written before
a crash says nothing trustworthy after one.

The advisory ``fcntl`` lock taken on open makes a second daemon on the
same store path fail fast with :class:`~repro.errors.JournalError`
instead of interleaving journals.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro import chaos
from repro.campaign.journal import JsonlAppender, load_jsonl
from repro.errors import JournalError, ServeError, classify_cause
from repro.obs.metrics import record_store_compaction, record_store_error
from repro.serve.protocol import (
    JOB_STATES,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_RUNNING,
    STATE_SUBMITTED,
    TERMINAL_STATES,
    JobSpec,
    job_id_for,
)

SCHEMA_VERSION = 1


class StoredJob:
    """One job's current image (spec + mutable lifecycle state)."""

    __slots__ = (
        "job_id",
        "spec",
        "state",
        "attempts",
        "degraded",
        "recovered",
        "report",
        "error",
    )

    def __init__(self, job_id: str, spec: JobSpec, *, degraded: bool = False):
        self.job_id = job_id
        self.spec = spec
        self.state = STATE_SUBMITTED
        self.attempts = 0
        self.degraded = degraded
        #: True when this job was re-enqueued by crash recovery.
        self.recovered = False
        #: Canonical report dict (see :mod:`repro.serve.protocol`) once done.
        self.report: dict | None = None
        #: :class:`~repro.errors.TrialError`-shaped dict once failed.
        self.error: dict | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_dict(self, *, include_report: bool = True) -> dict:
        """The job as served by ``GET /jobs/<id>``."""
        payload: dict = {
            "id": self.job_id,
            "state": self.state,
            "circuit": self.spec.circuit,
            "method": self.spec.method,
            "qos": self.spec.qos,
            "attempts": self.attempts,
        }
        if self.degraded:
            payload["degraded"] = True
        if self.recovered:
            payload["recovered"] = True
        if include_report and self.report is not None:
            payload["report"] = self.report
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobStore:
    """Append-only journal + in-memory index over the daemon's jobs.

    Thread-safe: worker threads record transitions while HTTP threads
    submit and read.  Every mutation appends its journal record *before*
    updating the in-memory image, so an acknowledged transition is always
    recoverable.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = True,
        compact_bytes: int | None = None,
        compact_age_seconds: float | None = None,
        clock=time.monotonic,
    ):
        self.path = Path(path)
        self._writer = JsonlAppender(path, fsync=fsync, chaos_site="store")
        self._jobs: dict[str, StoredJob] = {}
        self._by_fingerprint: dict[str, str] = {}
        #: Durable lease table: job id -> {"node", "attempt"} for every
        #: journaled grant without a matching release (coordinator role).
        self._leases: dict[str, dict] = {}
        self._lock = threading.RLock()
        self._clock = clock
        #: Compaction triggers: journal size floor and/or store age.  Both
        #: ``None`` (the default) disables automatic compaction entirely.
        self.compact_bytes = compact_bytes
        self.compact_age_seconds = compact_age_seconds
        #: Human-readable description of the last store I/O failure that
        #: has not been followed by a successful append; ``/healthz``
        #: surfaces it and goes unhealthy while it is set.
        self.last_error: str | None = None
        self._total_records = 0  # journal lines (live + superseded)
        self._last_compact = clock()

    def _tmp_path(self) -> Path:
        return self.path.with_name(self.path.name + ".compact")

    def _append(self, record: dict) -> None:
        """Journal one record, tracking write health.

        An ``OSError`` out of the appender (disk full, dying device,
        injected chaos) is classified, counted, remembered in
        :attr:`last_error`, and re-raised as :class:`JournalError`; a
        successful append clears the error -- the store has recovered.
        """
        try:
            self._writer.append(record)
        except JournalError:
            record_store_error("append")
            raise
        except OSError as exc:
            self.last_error = (
                f"journal append failed [{classify_cause(exc)}]: {exc}"
            )
            record_store_error("append")
            raise JournalError(
                f"{self.path}: journal append failed: {exc}"
            ) from exc
        else:
            self.last_error = None
            self._total_records += 1

    # -- lifecycle -----------------------------------------------------------

    def open(self, *, recover: bool = True) -> list[StoredJob]:
        """Lock, replay, and return the jobs needing (re-)execution.

        Jobs journaled as ``submitted`` or ``running`` did not reach a
        terminal state before the previous process died; they are reset
        to ``submitted`` (with a journaled ``recovered`` marker) and
        returned for re-enqueueing, oldest first.  ``recover=False``
        (offline tooling, e.g. ``repro store compact``) replays without
        resetting, so inspection does not mutate the journal.

        A stray ``<path>.compact`` temporary means the previous process
        died mid-compaction *before* the atomic rename committed; the
        main journal is still the authority and the temporary is
        discarded.
        """
        with self._lock:
            stale = self._tmp_path()
            if stale.exists():
                try:
                    stale.unlink()
                except OSError as exc:
                    raise JournalError(
                        f"{stale}: cannot discard interrupted compaction "
                        f"temporary: {exc}"
                    ) from exc
            self._writer.open()  # takes the advisory lock, drops torn tail
            try:
                self._replay()
            except Exception:
                self._writer.close()
                raise
            if not self._jobs and self._writer.is_empty():
                self._append(
                    {"kind": "header", "v": SCHEMA_VERSION, "store": "jobs"}
                )
            recovered: list[StoredJob] = []
            if not recover:
                return recovered
            for job in self._jobs.values():
                if job.terminal:
                    continue
                job.state = STATE_SUBMITTED
                job.recovered = True
                self._append(
                    {
                        "kind": "state",
                        "v": SCHEMA_VERSION,
                        "id": job.job_id,
                        "state": STATE_SUBMITTED,
                        "recovered": True,
                    }
                )
                recovered.append(job)
            return recovered

    def close(self) -> None:
        with self._lock:
            self._writer.close()

    def probe_writable(self) -> bool:
        """Can the journal still take appends?  (The readiness check.)

        Probes the path itself rather than trusting the open handle: a
        deleted or remounted-read-only store directory must flip
        readiness even though the old descriptor keeps accepting writes.
        """
        try:
            if not self.path.parent.exists():
                return False
            with self.path.open("a", encoding="utf-8"):
                pass
            return self._writer.is_open
        except OSError as exc:
            # Classified and remembered, never silently swallowed: the
            # unreadiness cause shows up in /healthz and the metrics.
            self.last_error = (
                f"readiness probe failed [{classify_cause(exc)}]: {exc}"
            )
            record_store_error("probe")
            return False

    def _replay(self) -> None:
        records = load_jsonl(self.path)
        self._total_records = len(records)
        for lineno, payload in records:
            chaos.checkpoint("store.replay")
            kind = payload.get("kind")
            if kind == "job":
                try:
                    spec = JobSpec.from_dict(payload.get("spec"))
                    job_id = str(payload["id"])
                except (KeyError, ServeError) as exc:
                    raise JournalError(
                        f"{self.path}:{lineno}: malformed job record: {exc}"
                    ) from exc
                job = StoredJob(
                    job_id, spec, degraded=bool(payload.get("degraded", False))
                )
                self._jobs[job_id] = job
                self._by_fingerprint[spec.fingerprint()] = job_id
            elif kind == "state":
                job = self._jobs.get(str(payload.get("id", "")))
                if job is None:
                    continue  # state for a job whose record was torn away
                state = str(payload.get("state", ""))
                if state not in JOB_STATES:
                    raise JournalError(
                        f"{self.path}:{lineno}: unknown job state {state!r}"
                    )
                job.state = state
                job.attempts = int(payload.get("attempts", job.attempts))
                job.recovered = bool(payload.get("recovered", False))
                if state == STATE_DONE:
                    report = payload.get("report")
                    job.report = report if isinstance(report, dict) else None
                if state == STATE_FAILED:
                    error = payload.get("error")
                    job.error = error if isinstance(error, dict) else None
            elif kind == "lease":
                job_id = str(payload.get("id", ""))
                if job_id not in self._jobs:
                    continue  # lease for a job whose record was torn away
                op = str(payload.get("op", ""))
                if op == "grant":
                    self._leases[job_id] = {
                        "node": str(payload.get("node", "")),
                        "attempt": int(payload.get("attempt", 1)),
                    }
                elif op == "release":
                    self._leases.pop(job_id, None)
                else:
                    raise JournalError(
                        f"{self.path}:{lineno}: unknown lease op {op!r}"
                    )
            # Unknown kinds (and the header) are skipped, not fatal.

    # -- submissions ---------------------------------------------------------

    def submit(self, spec: JobSpec, *, degraded: bool = False) -> tuple[StoredJob, bool]:
        """Admit a job; returns ``(job, created)``.

        Idempotent by fingerprint: an identical spec maps onto the
        existing job (whatever its state) and nothing is journaled.
        """
        with self._lock:
            existing = self._by_fingerprint.get(spec.fingerprint())
            if existing is not None:
                return self._jobs[existing], False
            job = StoredJob(job_id_for(spec), spec, degraded=degraded)
            self._append(
                {
                    "kind": "job",
                    "v": SCHEMA_VERSION,
                    "id": job.job_id,
                    "fingerprint": spec.fingerprint(),
                    "degraded": degraded,
                    "spec": spec.to_dict(),
                }
            )
            self._jobs[job.job_id] = job
            self._by_fingerprint[spec.fingerprint()] = job.job_id
            return job, True

    # -- transitions ---------------------------------------------------------

    def _transition(self, job_id: str, state: str, **extra) -> StoredJob:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServeError(f"unknown job {job_id!r}")
            if job.terminal:
                return job  # terminal states are sticky; duplicate marks no-op
            record = {
                "kind": "state",
                "v": SCHEMA_VERSION,
                "id": job_id,
                "state": state,
            }
            record.update(extra)
            self._append(record)
            job.state = state
            if "attempts" in extra:
                job.attempts = int(extra["attempts"])
            return job

    def mark_running(self, job_id: str, attempt: int) -> StoredJob:
        return self._transition(job_id, STATE_RUNNING, attempts=attempt)

    def mark_done(self, job_id: str, report: dict) -> StoredJob:
        job = self._transition(job_id, STATE_DONE, report=report)
        if job.state == STATE_DONE:
            job.report = report
        return job

    def mark_failed(self, job_id: str, error: dict) -> StoredJob:
        job = self._transition(job_id, STATE_FAILED, error=error)
        if job.state == STATE_FAILED:
            job.error = error
        return job

    def mark_cancelled(self, job_id: str) -> StoredJob:
        return self._transition(job_id, STATE_CANCELLED)

    def mark_resubmitted(self, job_id: str) -> StoredJob:
        """A dispatched job going back to the pending pool (lease takeover)."""
        return self._transition(job_id, STATE_SUBMITTED, requeued=True)

    # -- leases (the coordinator's durable dispatch table) -------------------

    def grant_lease(self, job_id: str, node: str, *, attempt: int) -> None:
        """Journal that ``job_id`` is being dispatched to ``node``.

        Written *before* the dispatch request leaves, so a coordinator
        crash between grant and acknowledgement still knows which node
        may be executing the job -- recovery re-adopts by polling that
        node rather than guessing.
        """
        with self._lock:
            if job_id not in self._jobs:
                raise ServeError(f"unknown job {job_id!r}")
            self._append(
                {
                    "kind": "lease",
                    "v": SCHEMA_VERSION,
                    "id": job_id,
                    "op": "grant",
                    "node": node,
                    "attempt": int(attempt),
                }
            )
            self._leases[job_id] = {"node": node, "attempt": int(attempt)}

    def release_lease(self, job_id: str, cause: str) -> dict | None:
        """Journal the end of a lease (completion, takeover, cancel...).

        Returns the released image, or None when no lease was held --
        releasing twice is a harmless no-op so takeover races cannot
        corrupt the table.
        """
        with self._lock:
            image = self._leases.get(job_id)
            if image is None:
                return None
            self._append(
                {
                    "kind": "lease",
                    "v": SCHEMA_VERSION,
                    "id": job_id,
                    "op": "release",
                    "node": image["node"],
                    "cause": cause,
                }
            )
            return self._leases.pop(job_id)

    def lease_images(self) -> dict[str, dict]:
        """The live lease table (job id -> {"node", "attempt"} copies)."""
        with self._lock:
            return {job_id: dict(image) for job_id, image in self._leases.items()}

    def note_drain(self, clean: bool) -> None:
        """Checkpoint marker: the daemon drained (skipped on replay)."""
        with self._lock:
            if self._writer.is_open:
                try:
                    self._append(
                        {
                            "kind": "drain",
                            "v": SCHEMA_VERSION,
                            "clean": bool(clean),
                        }
                    )
                except JournalError:
                    pass  # best-effort marker; the drain already happened

    # -- compaction ----------------------------------------------------------

    def _snapshot_records(self) -> list[dict]:
        """The minimal journal that replays to the current in-memory image."""
        records: list[dict] = [
            {"kind": "header", "v": SCHEMA_VERSION, "store": "jobs"}
        ]
        for job in self._jobs.values():  # submission order
            records.append(
                {
                    "kind": "job",
                    "v": SCHEMA_VERSION,
                    "id": job.job_id,
                    "fingerprint": job.spec.fingerprint(),
                    "degraded": job.degraded,
                    "spec": job.spec.to_dict(),
                }
            )
            lease = self._leases.get(job.job_id)
            if lease is not None:
                # An unreleased grant is live state: compaction must keep
                # the lease table replayable, not just the job states.
                records.append(
                    {
                        "kind": "lease",
                        "v": SCHEMA_VERSION,
                        "id": job.job_id,
                        "op": "grant",
                        "node": lease["node"],
                        "attempt": lease["attempt"],
                    }
                )
            if (
                job.state == STATE_SUBMITTED
                and job.attempts == 0
                and not job.recovered
            ):
                continue  # replay default; no state record needed
            state: dict = {
                "kind": "state",
                "v": SCHEMA_VERSION,
                "id": job.job_id,
                "state": job.state,
                "attempts": job.attempts,
            }
            if job.recovered:
                state["recovered"] = True
            if job.state == STATE_DONE and job.report is not None:
                state["report"] = job.report
            if job.state == STATE_FAILED and job.error is not None:
                state["error"] = job.error
            records.append(state)
        return records

    def should_compact(self) -> bool:
        """Has a size or age trigger fired (and is there garbage to drop)?"""
        with self._lock:
            if not self._writer.is_open:
                return False
            if self.compact_bytes is None and self.compact_age_seconds is None:
                return False
            live = len(self._snapshot_records())
            if self._total_records <= live:
                return False  # nothing superseded; compaction is a no-op
            if self.compact_bytes is not None:
                try:
                    if self.path.stat().st_size >= self.compact_bytes:
                        return True
                except OSError:
                    return False
            if self.compact_age_seconds is not None:
                if (
                    self._clock() - self._last_compact
                    >= self.compact_age_seconds
                ):
                    return True
            return False

    def maybe_compact(self) -> bool:
        """Compact when a trigger fired; failures are counted, not fatal.

        A failed compaction leaves the original journal authoritative
        (that is the whole point of the write-new/fsync/rename protocol),
        so the daemon logs-by-metric and keeps serving.
        """
        if not self.should_compact():
            return False
        try:
            self.compact()
        except JournalError:
            return False
        return True

    def compact(self) -> dict:
        """Rewrite the journal as a minimal snapshot, crash-safely.

        Protocol: write the snapshot to ``<path>.compact``, flush,
        ``fsync``, then atomically ``os.replace`` it over the journal and
        fsync the directory.  The rename is the commit point -- a crash
        at *any* byte offset before it leaves the original journal
        intact (the stray temporary is discarded on the next
        :meth:`open`); a crash after it leaves the compacted journal,
        which replays to the identical image.  Returns size statistics.
        """
        with self._lock:
            if not self._writer.is_open:
                raise JournalError(f"{self.path}: store is not open")
            tmp = self._tmp_path()
            try:
                before = self.path.stat().st_size
            except OSError:
                before = 0
            records = self._snapshot_records()
            data = "".join(
                json.dumps(record, separators=(",", ":")) + "\n"
                for record in records
            )
            try:
                with tmp.open("w", encoding="utf-8") as fh:
                    chaos.checkpoint("store.compact.write", nbytes=len(data))
                    fh.write(data)
                    fh.flush()
                    chaos.checkpoint("store.compact.fsync")
                    os.fsync(fh.fileno())
            except OSError as exc:
                self._abort_compact(tmp, "write", exc)
            # Commit point: swap the new journal in under the appender.
            # The store lock is held, so no append can interleave.
            self._writer.close()
            try:
                chaos.checkpoint("store.compact.rename")
                os.replace(tmp, self.path)
            except OSError as exc:
                try:
                    self._writer.open()  # reopen the untouched original
                except JournalError:
                    pass  # the original error is the one worth reporting
                self._abort_compact(tmp, "rename", exc)
            self._fsync_dir()
            try:
                self._writer.open()
            except JournalError:
                record_store_compaction("failed")
                record_store_error("compact")
                raise
            dropped = self._total_records - len(records)
            self._total_records = len(records)
            self._last_compact = self._clock()
            try:
                after = self.path.stat().st_size
            except OSError:
                after = 0
            record_store_compaction("ok")
            return {
                "before_bytes": before,
                "after_bytes": after,
                "records": len(records),
                "dropped_records": max(0, dropped),
            }

    def _abort_compact(self, tmp: Path, stage: str, exc: OSError) -> None:
        """Clean up a failed compaction; the original journal stays live."""
        try:
            tmp.unlink()
        except OSError:
            pass  # open() discards strays; nothing more to do here
        self.last_error = (
            f"compaction {stage} failed [{classify_cause(exc)}]: {exc}"
        )
        record_store_compaction("failed")
        record_store_error("compact")
        raise JournalError(
            f"{self.path}: compaction {stage} failed: {exc}"
        ) from exc

    def _fsync_dir(self) -> None:
        """Best-effort directory fsync so the rename itself is durable."""
        try:
            fd = os.open(self.path.parent, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str) -> StoredJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[StoredJob]:
        """All jobs, submission order."""
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """Jobs per state (for ``GET /jobs`` summaries and readiness)."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts
