"""Durable job store: the daemon's crash-safe source of truth.

Layered on the campaign journal's append-only JSONL discipline
(:mod:`repro.campaign.journal`): every job submission and every state
transition is one fsync'd JSON line, so the store's in-memory image can
be reconstructed exactly by replaying the file.  ``kill -9`` at any
instant loses at most the record being written (the torn tail is dropped
on reopen), and a job whose terminal record never made it to disk is
simply still ``submitted``/``running`` on replay -- :meth:`JobStore.open`
resets such jobs to ``submitted`` and hands them back for re-execution.

Record schema (one object per line)::

    {"kind": "header", "v": 1, "store": "jobs"}
    {"kind": "job",    "v": 1, "id": "j...", "fingerprint": "...",
     "degraded": false, "spec": {...}}
    {"kind": "state",  "v": 1, "id": "j...", "state": "running",
     "attempts": 1}                       # + "report" on done,
                                          #   "error" on failed,
                                          #   "recovered" on replay resets

The advisory ``fcntl`` lock taken on open makes a second daemon on the
same store path fail fast with :class:`~repro.errors.JournalError`
instead of interleaving journals.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.campaign.journal import JsonlAppender, load_jsonl
from repro.errors import JournalError, ServeError
from repro.serve.protocol import (
    JOB_STATES,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_RUNNING,
    STATE_SUBMITTED,
    TERMINAL_STATES,
    JobSpec,
    job_id_for,
)

SCHEMA_VERSION = 1


class StoredJob:
    """One job's current image (spec + mutable lifecycle state)."""

    __slots__ = (
        "job_id",
        "spec",
        "state",
        "attempts",
        "degraded",
        "recovered",
        "report",
        "error",
    )

    def __init__(self, job_id: str, spec: JobSpec, *, degraded: bool = False):
        self.job_id = job_id
        self.spec = spec
        self.state = STATE_SUBMITTED
        self.attempts = 0
        self.degraded = degraded
        #: True when this job was re-enqueued by crash recovery.
        self.recovered = False
        #: Canonical report dict (see :mod:`repro.serve.protocol`) once done.
        self.report: dict | None = None
        #: :class:`~repro.errors.TrialError`-shaped dict once failed.
        self.error: dict | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_dict(self, *, include_report: bool = True) -> dict:
        """The job as served by ``GET /jobs/<id>``."""
        payload: dict = {
            "id": self.job_id,
            "state": self.state,
            "circuit": self.spec.circuit,
            "method": self.spec.method,
            "qos": self.spec.qos,
            "attempts": self.attempts,
        }
        if self.degraded:
            payload["degraded"] = True
        if self.recovered:
            payload["recovered"] = True
        if include_report and self.report is not None:
            payload["report"] = self.report
        if self.error is not None:
            payload["error"] = self.error
        return payload


class JobStore:
    """Append-only journal + in-memory index over the daemon's jobs.

    Thread-safe: worker threads record transitions while HTTP threads
    submit and read.  Every mutation appends its journal record *before*
    updating the in-memory image, so an acknowledged transition is always
    recoverable.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True):
        self.path = Path(path)
        self._writer = JsonlAppender(path, fsync=fsync)
        self._jobs: dict[str, StoredJob] = {}
        self._by_fingerprint: dict[str, str] = {}
        self._lock = threading.RLock()

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> list[StoredJob]:
        """Lock, replay, and return the jobs needing (re-)execution.

        Jobs journaled as ``submitted`` or ``running`` did not reach a
        terminal state before the previous process died; they are reset
        to ``submitted`` (with a journaled ``recovered`` marker) and
        returned for re-enqueueing, oldest first.
        """
        with self._lock:
            self._writer.open()  # takes the advisory lock, drops torn tail
            try:
                self._replay()
            except Exception:
                self._writer.close()
                raise
            if not self._jobs and self._writer.is_empty():
                self._writer.append(
                    {"kind": "header", "v": SCHEMA_VERSION, "store": "jobs"}
                )
            recovered: list[StoredJob] = []
            for job in self._jobs.values():
                if job.terminal:
                    continue
                job.state = STATE_SUBMITTED
                job.recovered = True
                self._writer.append(
                    {
                        "kind": "state",
                        "v": SCHEMA_VERSION,
                        "id": job.job_id,
                        "state": STATE_SUBMITTED,
                        "recovered": True,
                    }
                )
                recovered.append(job)
            return recovered

    def close(self) -> None:
        with self._lock:
            self._writer.close()

    def probe_writable(self) -> bool:
        """Can the journal still take appends?  (The readiness check.)

        Probes the path itself rather than trusting the open handle: a
        deleted or remounted-read-only store directory must flip
        readiness even though the old descriptor keeps accepting writes.
        """
        try:
            if not self.path.parent.exists():
                return False
            with self.path.open("a", encoding="utf-8"):
                pass
            return self._writer.is_open
        except OSError:
            return False

    def _replay(self) -> None:
        for lineno, payload in load_jsonl(self.path):
            kind = payload.get("kind")
            if kind == "job":
                try:
                    spec = JobSpec.from_dict(payload.get("spec"))
                    job_id = str(payload["id"])
                except (KeyError, ServeError) as exc:
                    raise JournalError(
                        f"{self.path}:{lineno}: malformed job record: {exc}"
                    ) from exc
                job = StoredJob(
                    job_id, spec, degraded=bool(payload.get("degraded", False))
                )
                self._jobs[job_id] = job
                self._by_fingerprint[spec.fingerprint()] = job_id
            elif kind == "state":
                job = self._jobs.get(str(payload.get("id", "")))
                if job is None:
                    continue  # state for a job whose record was torn away
                state = str(payload.get("state", ""))
                if state not in JOB_STATES:
                    raise JournalError(
                        f"{self.path}:{lineno}: unknown job state {state!r}"
                    )
                job.state = state
                job.attempts = int(payload.get("attempts", job.attempts))
                job.recovered = bool(payload.get("recovered", False))
                if state == STATE_DONE:
                    report = payload.get("report")
                    job.report = report if isinstance(report, dict) else None
                if state == STATE_FAILED:
                    error = payload.get("error")
                    job.error = error if isinstance(error, dict) else None
            # Unknown kinds (and the header) are skipped, not fatal.

    # -- submissions ---------------------------------------------------------

    def submit(self, spec: JobSpec, *, degraded: bool = False) -> tuple[StoredJob, bool]:
        """Admit a job; returns ``(job, created)``.

        Idempotent by fingerprint: an identical spec maps onto the
        existing job (whatever its state) and nothing is journaled.
        """
        with self._lock:
            existing = self._by_fingerprint.get(spec.fingerprint())
            if existing is not None:
                return self._jobs[existing], False
            job = StoredJob(job_id_for(spec), spec, degraded=degraded)
            self._writer.append(
                {
                    "kind": "job",
                    "v": SCHEMA_VERSION,
                    "id": job.job_id,
                    "fingerprint": spec.fingerprint(),
                    "degraded": degraded,
                    "spec": spec.to_dict(),
                }
            )
            self._jobs[job.job_id] = job
            self._by_fingerprint[spec.fingerprint()] = job.job_id
            return job, True

    # -- transitions ---------------------------------------------------------

    def _transition(self, job_id: str, state: str, **extra) -> StoredJob:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServeError(f"unknown job {job_id!r}")
            if job.terminal:
                return job  # terminal states are sticky; duplicate marks no-op
            record = {
                "kind": "state",
                "v": SCHEMA_VERSION,
                "id": job_id,
                "state": state,
            }
            record.update(extra)
            self._writer.append(record)
            job.state = state
            if "attempts" in extra:
                job.attempts = int(extra["attempts"])
            return job

    def mark_running(self, job_id: str, attempt: int) -> StoredJob:
        return self._transition(job_id, STATE_RUNNING, attempts=attempt)

    def mark_done(self, job_id: str, report: dict) -> StoredJob:
        job = self._transition(job_id, STATE_DONE, report=report)
        if job.state == STATE_DONE:
            job.report = report
        return job

    def mark_failed(self, job_id: str, error: dict) -> StoredJob:
        job = self._transition(job_id, STATE_FAILED, error=error)
        if job.state == STATE_FAILED:
            job.error = error
        return job

    def mark_cancelled(self, job_id: str) -> StoredJob:
        return self._transition(job_id, STATE_CANCELLED)

    def note_drain(self, clean: bool) -> None:
        """Checkpoint marker: the daemon drained (skipped on replay)."""
        with self._lock:
            if self._writer.is_open:
                self._writer.append(
                    {"kind": "drain", "v": SCHEMA_VERSION, "clean": bool(clean)}
                )

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str) -> StoredJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[StoredJob]:
        """All jobs, submission order."""
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """Jobs per state (for ``GET /jobs`` summaries and readiness)."""
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            return counts
