"""Simulation substrate.

- :mod:`repro.sim.patterns` -- bit-packed test pattern sets,
- :mod:`repro.sim.logicsim` -- two-valued bit-parallel simulation,
- :mod:`repro.sim.threeval` -- three-valued (0/1/X) simulation with site
  overrides (the X-injection engine of the diagnosis method),
- :mod:`repro.sim.event` -- cone-restricted incremental resimulation,
- :mod:`repro.sim.compile` -- per-netlist compiled slot-indexed kernels
  behind the three entry points above (``REPRO_SIM=interp`` selects the
  interpreted oracle path),
- :mod:`repro.sim.cache` -- the cross-stage ``SimContext`` memo (base
  values, flip signatures, resim diffs, X reach) keyed by content
  fingerprints,
- :mod:`repro.sim.faultsim` -- single-fault simulation services for ATPG,
  the SLAT baseline and candidate refinement.
"""

from repro.sim.patterns import PatternSet
from repro.sim.logicsim import simulate, simulate_outputs
from repro.sim.threeval import simulate3, x_injection_reach
from repro.sim.event import resimulate_with_overrides
from repro.sim.compile import COUNTERS, SimCounters, backend
from repro.sim.cache import SimContext, active_context, reset_sim_caches, sim_context

__all__ = [
    "PatternSet",
    "simulate",
    "simulate_outputs",
    "simulate3",
    "x_injection_reach",
    "resimulate_with_overrides",
    "COUNTERS",
    "SimCounters",
    "backend",
    "SimContext",
    "active_context",
    "reset_sim_caches",
    "sim_context",
]
