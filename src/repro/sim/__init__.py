"""Simulation substrate.

- :mod:`repro.sim.patterns` -- bit-packed test pattern sets,
- :mod:`repro.sim.logicsim` -- two-valued bit-parallel simulation,
- :mod:`repro.sim.threeval` -- three-valued (0/1/X) simulation with site
  overrides (the X-injection engine of the diagnosis method),
- :mod:`repro.sim.event` -- cone-restricted incremental resimulation,
- :mod:`repro.sim.faultsim` -- single-fault simulation services for ATPG,
  the SLAT baseline and candidate refinement.
"""

from repro.sim.patterns import PatternSet
from repro.sim.logicsim import simulate, simulate_outputs
from repro.sim.threeval import simulate3, x_injection_reach
from repro.sim.event import resimulate_with_overrides

__all__ = [
    "PatternSet",
    "simulate",
    "simulate_outputs",
    "simulate3",
    "x_injection_reach",
    "resimulate_with_overrides",
]
