"""Cross-stage simulation context cache.

Every diagnosis stage -- candidate backtrace, X-cover, per-test analysis,
refinement, the validation oracle, single-fault baselines -- keeps asking
the same questions of the same ``(netlist, patterns)`` pair: the fault-free
base values, "what changes at the outputs if I flip this site", "what can a
defect at this site reach".  A :class:`SimContext` answers each question
once and memoizes:

- ``base``: the fault-free value of every net (a ``SlotValues`` under the
  compiled backend, so cone resims skip the dict-to-list conversion),
- flip signatures: site -> per-output delta vectors of complementing the
  site's fault-free value,
- resim diffs: override-signature -> per-output delta vectors.  The key is
  the *behavioral* signature ``frozenset((site, value), ...)``, so any two
  stages (or two fault models) requesting the same injected behavior share
  one simulation,
- X reach: site -> per-output X-corruption vectors.

Contexts are registered in a bounded LRU keyed by *content* fingerprints
(netlist hash, pattern-set hash), so campaign trials that share a circuit
and test set -- even across structurally-equal netlist instances -- reuse
one context, and mutated inputs miss cleanly.

Memo hits and misses feed :data:`repro.sim.compile.COUNTERS`; budget
charging in the engines is deliberately *not* tied to memo hits so anytime
truncation behavior stays deterministic regardless of cache warmth.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Mapping

from repro.circuit.netlist import Netlist, Site
from repro.errors import SimulationError
from repro.obs.trace import trace_event
from repro.sim.compile import COUNTERS, active_kernels, base_slots, reset_kernel_cache
from repro.sim.event import resim_output_diff
from repro.sim.packed import (
    active_packed,
    resim_diff_special,
    reset_packed_cache,
)
from repro.sim.logicsim import simulate
from repro.sim.patterns import PatternSet
from repro.sim.threeval import x_injection_reach

#: Registry capacity: a campaign trial touches at most a handful of
#: contexts (full pattern set + the failing-subset of each engine).
MAX_CONTEXTS = 16

#: Per-context bound on each memo table; on overflow the table is cleared
#: (diffs are small, so this is generous for every shipped circuit).
MAX_MEMO_ENTRIES = 65536


class SimContext:
    """Memoized simulation state for one ``(netlist, patterns)`` pair."""

    __slots__ = (
        "netlist",
        "patterns",
        "mask",
        "base",
        "_flip",
        "_resim",
        "_xreach",
        "_kernels",
        "_packed",
        "_base_slots",
        "_out_pairs",
        "_valid_sites",
    )

    def __init__(self, netlist: Netlist, patterns: PatternSet):
        self.netlist = netlist
        self.patterns = patterns
        self.mask = patterns.mask
        self.base = simulate(netlist, patterns)
        self._flip: dict[Site, dict[str, int]] = {}
        self._resim: dict[frozenset, dict[str, int]] = {}
        self._xreach: dict[Site, dict[str, int]] = {}
        # The backend is captured once per context: the memo tables are
        # engine-agnostic (both backends are differentially identical), so
        # re-reading ``REPRO_SIM`` on every query would only buy dispatch
        # overhead on the hottest call path.
        self._kernels = active_kernels(netlist)
        self._packed = active_packed(netlist)
        self._valid_sites: set[Site] = set()
        if self._kernels is not None:
            program = self._kernels.program
            self._base_slots = base_slots(program, self.base)
            self._out_pairs = list(zip(netlist.outputs, program.out_slots))

    # -- memoized queries --------------------------------------------------

    def resim_diff(self, overrides: Mapping[Site, int]) -> dict[str, int]:
        """Per-output delta vectors of resimulating with ``overrides``.

        Keyed by the override *signature*, so behaviorally-equivalent
        requests (same sites forced to the same vectors, whatever stage or
        fault model produced them) are simulated once.  The returned dict
        is shared -- callers must not mutate it.
        """
        key = frozenset(overrides.items())
        diff = self._resim.get(key)
        if diff is not None:
            COUNTERS.resim_hits += 1
            return diff
        COUNTERS.resim_misses += 1
        if self._kernels is not None:
            diff = self._resim_compiled(overrides)
        else:
            diff = resim_output_diff(self.netlist, self.base, overrides, self.mask)
        if len(self._resim) >= MAX_MEMO_ENTRIES:
            self._resim.clear()
        self._resim[key] = diff
        return diff

    def _resim_compiled(self, overrides: Mapping[Site, int]) -> dict[str, int]:
        """Inline compiled cone resim against the context's own base.

        Equivalent to :func:`~repro.sim.event.resim_output_diff` (same
        validation, same counters) minus the per-call backend dispatch, and
        with site validation memoized -- the same few hundred sites recur
        across thousands of what-if queries.
        """
        netlist = self.netlist
        mask = self.mask
        kernels = self._kernels
        program = kernels.program
        slot_of = program.slot_of
        gates = netlist.gates
        valid = self._valid_sites
        base = self._base_slots
        st: dict[int, int] = {}
        pp: dict[int, int] = {}
        roots: list[str] = []
        input_slots: list[int] = []
        for site, value in overrides.items():
            if site not in valid:
                netlist.validate_site(site)
                valid.add(site)
            if value < 0 or value > mask:
                raise SimulationError(f"override for {site} exceeds pattern width")
            branch = site.branch
            if branch is None:
                net = site.net
                roots.append(net)
                slot = slot_of[net]
                st[slot] = value
                if net not in gates:
                    input_slots.append(slot)
            else:
                roots.append(branch[0])
                pp[slot_of[branch[0]] * program.stride + branch[1]] = value
        cone = netlist.fanout_cone(roots)
        COUNTERS.cone_passes += 1
        COUNTERS.gate_evals += len(cone)
        if self._packed is not None:
            input_slots.sort()
            diff = resim_diff_special(
                self._packed, base, st, pp, input_slots, cone, mask
            )
            if diff is not None:
                return diff
        slots = base.copy()
        for slot in input_slots:
            slots[slot] = st[slot]
        cone_set, _cone_order = kernels.cone_slots(cone)
        if pp:
            kernels.fn("cone2_sp")(slots, mask, cone_set, st, pp)
        else:
            kernels.fn("cone2_s")(slots, mask, cone_set, st)
        diff: dict[str, int] = {}
        for net, slot in self._out_pairs:
            delta = slots[slot] ^ base[slot]
            if delta:
                diff[net] = delta
        return diff

    def flip_signature(self, site: Site) -> dict[str, int]:
        """Output deltas of complementing ``site``'s fault-free value.

        The signature a flipped site leaves on the outputs is the unit of
        evidence in critical-path tracing, per-test analysis and candidate
        distinguishing; memoized per site.  The returned dict is shared --
        callers must not mutate it.
        """
        diff = self._flip.get(site)
        if diff is not None:
            COUNTERS.flip_hits += 1
            return diff
        COUNTERS.flip_misses += 1
        flipped = (self.base[site.net] ^ self.mask) & self.mask
        diff = self.resim_diff({site: flipped})
        if len(self._flip) >= MAX_MEMO_ENTRIES:
            self._flip.clear()
        self._flip[site] = diff
        return diff

    def x_reach(self, site: Site) -> dict[str, int]:
        """Memoized :func:`~repro.sim.threeval.x_injection_reach` at
        ``site``.  The returned dict is shared -- callers must not mutate
        it."""
        reach = self._xreach.get(site)
        if reach is not None:
            COUNTERS.xreach_hits += 1
            return reach
        COUNTERS.xreach_misses += 1
        reach = x_injection_reach(self.netlist, self.patterns, site, self.base)
        if len(self._xreach) >= MAX_MEMO_ENTRIES:
            self._xreach.clear()
        self._xreach[site] = reach
        return reach


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_CONTEXTS: OrderedDict[tuple[str, str], SimContext] = OrderedDict()


def _evict_overflow() -> None:
    """Enforce :data:`MAX_CONTEXTS` by dropping least-recently-used entries.

    Called on every insert (not only on lookup), so a campaign that never
    repeats a ``(netlist, patterns)`` key -- a multi-circuit sweep -- holds
    at most ``MAX_CONTEXTS`` contexts no matter how many trials it runs.
    """
    while len(_CONTEXTS) > MAX_CONTEXTS:
        _CONTEXTS.popitem(last=False)


def context_cache_size() -> int:
    """Number of registered contexts (bounded-growth regression hook)."""
    return len(_CONTEXTS)


def sim_context(netlist: Netlist, patterns: PatternSet) -> SimContext:
    """The shared context for ``(netlist, patterns)``, creating it on miss.

    Keys are content fingerprints: two structurally identical netlists (or
    two equal pattern sets) map to the same context, while any content
    change -- an edited gate, a different test set -- misses and builds a
    fresh one.
    """
    key = (netlist.fingerprint(), patterns.fingerprint())
    ctx = _CONTEXTS.get(key)
    if ctx is not None:
        COUNTERS.context_hits += 1
        trace_event("sim.context_cache", hit=True)
        _CONTEXTS.move_to_end(key)
        return ctx
    COUNTERS.context_misses += 1
    trace_event("sim.context_cache", hit=False, circuit=netlist.name)
    ctx = SimContext(netlist, patterns)
    _CONTEXTS[key] = ctx
    _evict_overflow()
    return ctx


def active_context(
    netlist: Netlist,
    patterns: PatternSet,
    base_values: Mapping[str, int] | None,
) -> SimContext | None:
    """The registered context *iff* it is safe to serve ``base_values``.

    Memoized answers are only valid against the context's own base vector;
    callers supplying a foreign ``base_values`` (an identity check -- a
    merely-equal dict could still be a different what-if baseline) bypass
    the memo and fall through to direct simulation.
    """
    key = (netlist.fingerprint(), patterns.fingerprint())
    ctx = _CONTEXTS.get(key)
    if ctx is None:
        return None
    if base_values is not None and base_values is not ctx.base:
        return None
    _CONTEXTS.move_to_end(key)
    return ctx


def reset_sim_caches() -> None:
    """Drop every context, kernel and counter (testing/benchmark hook)."""
    _CONTEXTS.clear()
    reset_kernel_cache()
    reset_packed_cache()
    COUNTERS.reset()
