"""Compiled bit-parallel simulation kernels.

The interpreted simulators (:mod:`repro.sim.logicsim`, :mod:`repro.sim.event`,
:mod:`repro.sim.threeval`) walk ``topo_order`` with a per-gate ``eval2`` /
``eval3`` dispatch, two dict reads per pin and a fresh input list per gate.
Diagnosis bottoms out in thousands of near-identical passes over the same
netlist, so this module trades a one-time code generation step per netlist
for straight-line evaluators:

- **Slot program.**  Nets are numbered into integer *slots* -- primary
  inputs first, then gate outputs in topological order -- and each gate
  becomes a flat ``(out_slot, kind, input_slots)`` op.  Net values live in a
  plain list indexed by slot, so a gate evaluation is a couple of list reads
  and one store.
- **Codegen.**  For each netlist a specialized Python function is emitted
  (one statement per gate, constants folded in) and compiled with ``exec``.
  Ten variants cover the engine needs: {2-valued, 3-valued} x {full pass,
  cone-restricted} x {plain, stem overrides, stem+pin overrides}.  Variants
  are generated lazily on first use.
- **Caching.**  Kernel sets are cached per netlist *content* fingerprint
  (:meth:`repro.circuit.netlist.Netlist.fingerprint`), mirroring the
  pattern-fingerprint keying of the campaign dictionary caches, so
  structurally identical netlists built independently share kernels.

Pin overrides are keyed by the integer ``out_slot * stride + pin`` (where
``stride`` is the maximum gate arity) to avoid tuple allocation in the hot
loop.  The interpreted path remains the differential-testing oracle and is
selectable at call time with ``REPRO_SIM=interp``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import Mapping

from repro.circuit.gates import GateKind
from repro.circuit.netlist import Netlist
from repro.errors import SimulationError
from repro.obs.metrics import record_kernel_compile
from repro.obs.trace import trace_event

#: Netlists above this gate count fall back to the interpreted simulators
#: (codegen time and bytecode size grow linearly with the gate count).
MAX_COMPILED_GATES = 20_000

_KERNEL_CACHE_LIMIT = 64
_CONE_SLOT_MEMO_LIMIT = 4096


# ---------------------------------------------------------------------------
# Perf counters
# ---------------------------------------------------------------------------


@dataclass
class SimCounters:
    """Global simulation effort counters.

    Counters are incremented at the dispatcher level -- *before* the
    backend split -- so the interpreted, compiled and packed paths report
    identical numbers and reports stay byte-identical across ``REPRO_SIM``
    settings.  (``kernel_compiles`` and ``packed_words`` are the only
    backend-specific counters and are never surfaced in reports.)
    ``gate_evals`` counts nets visited: a full pass adds the gate count, a
    cone pass adds the cone size.
    """

    full_passes: int = 0  #: 2-valued full-netlist passes
    cone_passes: int = 0  #: 2-valued cone-restricted resimulations
    full3_passes: int = 0  #: 3-valued full-netlist passes
    cone3_passes: int = 0  #: 3-valued cone passes (X injection)
    gate_evals: int = 0  #: nets visited across all passes
    kernel_compiles: int = 0  #: kernel variants codegen'd (compiled backend)
    packed_words: int = 0  #: 64-pattern words evaluated (packed backend)
    flip_hits: int = 0  #: flip-signature memo hits (SimContext)
    flip_misses: int = 0
    resim_hits: int = 0  #: override-signature resim memo hits (SimContext)
    resim_misses: int = 0
    xreach_hits: int = 0  #: X-reach memo hits (SimContext)
    xreach_misses: int = 0
    context_hits: int = 0  #: SimContext registry hits
    context_misses: int = 0

    def snapshot(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta(self, before: Mapping[str, int]) -> dict[str, int]:
        """Counter increments since a :meth:`snapshot`."""
        return {
            f.name: getattr(self, f.name) - before.get(f.name, 0)
            for f in fields(self)
        }

    def reset(self) -> None:
        for f in fields(self):
            setattr(self, f.name, 0)


COUNTERS = SimCounters()


# ---------------------------------------------------------------------------
# Backend selection
# ---------------------------------------------------------------------------


_BACKEND_PARSE: tuple[str | None, str] | None = None


def backend() -> str:
    """The active simulation backend: ``"packed"``, ``"compiled"`` or
    ``"interp"``.

    Read from the ``REPRO_SIM`` environment variable at every call so tests
    and the CI escape hatch can switch backends without re-importing; only
    the normalization of the raw value is cached.
    """
    global _BACKEND_PARSE
    raw = os.environ.get("REPRO_SIM")
    cached = _BACKEND_PARSE
    if cached is not None and cached[0] == raw:
        return cached[1]
    text = (raw or "compiled").strip().lower()
    if text in ("", "compiled", "compile", "kernel", "kernels"):
        resolved = "compiled"
    elif text in ("interp", "interpreted", "python"):
        resolved = "interp"
    elif text in ("packed", "ppsfp", "pack", "words"):
        resolved = "packed"
    else:
        raise SimulationError(
            f"unknown REPRO_SIM backend {raw!r} "
            "(expected 'packed', 'compiled' or 'interp')"
        )
    _BACKEND_PARSE = (raw, resolved)
    return resolved


# ---------------------------------------------------------------------------
# Slot program
# ---------------------------------------------------------------------------


class SlotProgram:
    """A netlist levelized into a flat, slot-indexed straight-line program."""

    __slots__ = (
        "fingerprint",
        "net_order",
        "slot_of",
        "n_inputs",
        "n_slots",
        "out_slots",
        "stride",
        "ops",
    )

    def __init__(self, netlist: Netlist):
        self.fingerprint = netlist.fingerprint()
        self.net_order: tuple[str, ...] = tuple(netlist.nets())
        self.slot_of: dict[str, int] = {
            net: slot for slot, net in enumerate(self.net_order)
        }
        self.n_inputs = len(netlist.inputs)
        self.n_slots = len(self.net_order)
        self.out_slots: tuple[int, ...] = tuple(
            self.slot_of[net] for net in netlist.outputs
        )
        ops: list[tuple[int, GateKind, tuple[int, ...]]] = []
        stride = 1
        for net in netlist.topo_order:
            gate = netlist.gates[net]
            srcs = tuple(self.slot_of[src] for src in gate.inputs)
            stride = max(stride, len(srcs))
            ops.append((self.slot_of[net], gate.kind, srcs))
        self.ops = tuple(ops)
        self.stride = stride

    def pin_key(self, gate_net: str, pin: int) -> int:
        """Integer pin-override key for pin ``pin`` of gate ``gate_net``."""
        return self.slot_of[gate_net] * self.stride + pin


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


def _expr2(kind: GateKind, srcs: list[str]) -> str:
    """Two-valued expression for one gate; operands are atoms <= mask."""
    if kind is GateKind.AND:
        return " & ".join(srcs)
    if kind is GateKind.NAND:
        return "(" + " & ".join(srcs) + ") ^ m"
    if kind is GateKind.OR:
        return " | ".join(srcs)
    if kind is GateKind.NOR:
        return "(" + " | ".join(srcs) + ") ^ m"
    if kind is GateKind.XOR:
        return " ^ ".join(srcs)
    if kind is GateKind.XNOR:
        return "(" + " ^ ".join(srcs) + ") ^ m"
    if kind is GateKind.BUF:
        return srcs[0]
    if kind is GateKind.NOT:
        return srcs[0] + " ^ m"
    if kind is GateKind.MUX:
        a, b, sel = srcs
        return f"(({a} & ~{sel}) | ({b} & {sel})) & m"
    if kind is GateKind.CONST0:
        return "0"
    if kind is GateKind.CONST1:
        return "m"
    raise SimulationError(f"cannot compile gate kind {kind}")


def _lines3(kind: GateKind, srcs: list[tuple[str, str]], k: int) -> list[str]:
    """Three-valued statements for one gate.

    ``srcs`` holds (ones, zeros) operand atoms, already confined to the
    mask; the emitted code maintains that invariant, which is what makes
    the per-step masking of the interpreted ``eval3`` redundant here.
    """
    on_t, zr_t = f"o[{k}]", f"z[{k}]"
    if kind is GateKind.AND or kind is GateKind.NAND:
        on = " & ".join(s for s, _ in srcs)
        zr = " | ".join(s for _, s in srcs)
        if kind is GateKind.NAND:
            on, zr = zr, on
        return [f"{on_t} = {on}", f"{zr_t} = {zr}"]
    if kind is GateKind.OR or kind is GateKind.NOR:
        on = " | ".join(s for s, _ in srcs)
        zr = " & ".join(s for _, s in srcs)
        if kind is GateKind.NOR:
            on, zr = zr, on
        return [f"{on_t} = {on}", f"{zr_t} = {zr}"]
    if kind is GateKind.XOR or kind is GateKind.XNOR:
        lines = [f"_a = {srcs[0][0]}", f"_b = {srcs[0][1]}"]
        for on_s, zr_s in srcs[1:]:
            lines.append(
                f"_a, _b = (_a & {zr_s}) | (_b & {on_s}), "
                f"(_a & {on_s}) | (_b & {zr_s})"
            )
        if kind is GateKind.XNOR:
            return lines + [f"{on_t} = _b", f"{zr_t} = _a"]
        return lines + [f"{on_t} = _a", f"{zr_t} = _b"]
    if kind is GateKind.BUF:
        return [f"{on_t} = {srcs[0][0]}", f"{zr_t} = {srcs[0][1]}"]
    if kind is GateKind.NOT:
        return [f"{on_t} = {srcs[0][1]}", f"{zr_t} = {srcs[0][0]}"]
    if kind is GateKind.MUX:
        (a1, a0), (b1, b0), (s1, s0) = srcs
        return [
            f"{on_t} = ({s0} & {a1}) | ({s1} & {b1})",
            f"{zr_t} = ({s0} & {a0}) | ({s1} & {b0})",
        ]
    if kind is GateKind.CONST0:
        return [f"{on_t} = 0", f"{zr_t} = m"]
    if kind is GateKind.CONST1:
        return [f"{on_t} = m", f"{zr_t} = 0"]
    raise SimulationError(f"cannot compile gate kind {kind}")


#: Variant name -> (three_valued, cone_guarded, stem_overrides, pin_overrides)
VARIANTS: dict[str, tuple[bool, bool, bool, bool]] = {
    "full2": (False, False, False, False),
    "full2_s": (False, False, True, False),
    "full2_sp": (False, False, True, True),
    "cone2_s": (False, True, True, False),
    "cone2_sp": (False, True, True, True),
    "full3": (True, False, False, False),
    "full3_s": (True, False, True, False),
    "full3_sp": (True, False, True, True),
    "cone3_s": (True, True, True, False),
    "cone3_sp": (True, True, True, True),
}


def emit_kernel_source(program: SlotProgram, variant: str) -> str:
    """Render the Python source of one kernel variant for ``program``."""
    three, guarded, stems, pins = VARIANTS[variant]
    args = ["o", "z"] if three else ["v"]
    args.append("m")
    if guarded:
        args.append("c")
    if stems:
        args.extend(["so", "sz"] if three else ["st"])
    if pins:
        args.extend(["po", "pz"] if three else ["pp"])
    lines = [f"def {variant}({', '.join(args)}):"]
    stride = program.stride
    for k, kind, srcs in program.ops:
        indent = "    "
        if guarded:
            lines.append(f"{indent}if {k} in c:")
            indent += "    "
        if stems:
            if three:
                lines.append(f"{indent}if {k} in so:")
                lines.append(f"{indent}    o[{k}] = so[{k}]; z[{k}] = sz[{k}]")
            else:
                lines.append(f"{indent}if {k} in st:")
                lines.append(f"{indent}    v[{k}] = st[{k}]")
            lines.append(f"{indent}else:")
            indent += "    "
        if three:
            if pins:
                operands = [
                    (
                        f"po.get({k * stride + pin}, o[{src}])",
                        f"pz.get({k * stride + pin}, z[{src}])",
                    )
                    for pin, src in enumerate(srcs)
                ]
            else:
                operands = [(f"o[{src}]", f"z[{src}]") for src in srcs]
            lines.extend(indent + line for line in _lines3(kind, operands, k))
        else:
            if pins:
                operands2 = [
                    f"pp.get({k * stride + pin}, v[{src}])"
                    for pin, src in enumerate(srcs)
                ]
            else:
                operands2 = [f"v[{src}]" for src in srcs]
            lines.append(f"{indent}v[{k}] = {_expr2(kind, operands2)}")
    if not program.ops:
        lines.append("    pass")
    return "\n".join(lines) + "\n"


class KernelSet:
    """Lazily compiled kernel variants for one netlist program."""

    __slots__ = ("program", "_fns", "_cone_memo")

    def __init__(self, program: SlotProgram):
        self.program = program
        self._fns: dict[str, object] = {}
        # fanout-cone frozenset -> (gate-slot frozenset, sorted gate slots).
        # Netlist.fanout_cone memoizes per root set and returns the same
        # frozenset object for repeated queries, so lookups here are cheap.
        self._cone_memo: dict[frozenset, tuple[frozenset, tuple[int, ...]]] = {}

    def fn(self, variant: str):
        func = self._fns.get(variant)
        if func is None:
            source = emit_kernel_source(self.program, variant)
            namespace: dict[str, object] = {}
            code = compile(
                source,
                f"<kernel:{self.program.fingerprint}:{variant}>",
                "exec",
            )
            exec(code, namespace)
            func = self._fns[variant] = namespace[variant]
            COUNTERS.kernel_compiles += 1
            trace_event("sim.kernel_compile", variant=variant)
            record_kernel_compile(variant)
        return func

    def cone_slots(self, cone: frozenset) -> tuple[frozenset, tuple[int, ...]]:
        """Gate slots of a fanout cone: (membership set, topo-sorted tuple).

        Slots are assigned inputs-first then topological, so ascending slot
        order *is* evaluation order.
        """
        entry = self._cone_memo.get(cone)
        if entry is None:
            slot_of = self.program.slot_of
            n_inputs = self.program.n_inputs
            gate_slots = sorted(
                slot for slot in map(slot_of.__getitem__, cone)
                if slot >= n_inputs
            )
            entry = (frozenset(gate_slots), tuple(gate_slots))
            if len(self._cone_memo) >= _CONE_SLOT_MEMO_LIMIT:
                self._cone_memo.clear()
            self._cone_memo[cone] = entry
        return entry


# ---------------------------------------------------------------------------
# Kernel cache
# ---------------------------------------------------------------------------

_KERNELS: dict[str, KernelSet] = {}

#: Bumped by :func:`reset_kernel_cache` so the per-instance fast path below
#: cannot outlive a reset: a stale ``netlist._kernel_set`` from before the
#: reset fails the generation check and rebuilds.  Without this, resetting
#: cleared ``_KERNELS`` but any live Netlist kept serving its old compiled
#: kernels, so ``sim_kernel_compiles`` depended on object identity instead
#: of cache state.
_KERNEL_GENERATION = 0


def kernels_for(netlist: Netlist) -> KernelSet:
    """The (cached) kernel set for ``netlist``, keyed by content hash."""
    cached = getattr(netlist, "_kernel_set", None)
    if cached is not None and cached[0] == _KERNEL_GENERATION:
        return cached[1]
    fp = netlist.fingerprint()
    kernels = _KERNELS.get(fp)
    if kernels is None:
        if len(_KERNELS) >= _KERNEL_CACHE_LIMIT:
            _KERNELS.clear()
        kernels = _KERNELS[fp] = KernelSet(SlotProgram(netlist))
    # Instance fast path; Netlist is immutable after construction.
    netlist._kernel_set = (_KERNEL_GENERATION, kernels)
    return kernels


def active_kernels(netlist: Netlist) -> KernelSet | None:
    """Kernels when a compiled backend should handle ``netlist``.

    ``None`` means: use the interpreted path (escape hatch requested via
    ``REPRO_SIM=interp``, or the netlist exceeds the codegen size cap).
    The packed backend builds on these kernels (they are its cone-pass
    fallback below the specialization threshold), so ``REPRO_SIM=packed``
    also resolves them -- the packed-over-compiled downgrade chain in
    :func:`repro.sim.packed.active_packed` relies on that.
    """
    if netlist.n_gates > MAX_COMPILED_GATES:
        return None
    if backend() == "interp":
        return None
    return kernels_for(netlist)


def reset_kernel_cache() -> None:
    """Drop every cached kernel set (testing / benchmarking hook)."""
    global _KERNEL_GENERATION
    _KERNEL_GENERATION += 1
    _KERNELS.clear()


# ---------------------------------------------------------------------------
# Slot-aware simulation results
# ---------------------------------------------------------------------------


class SlotValues(dict):
    """A ``simulate`` result dict that remembers its flat slot layout.

    Behaves exactly like the historical ``{net: bits}`` dict, but carries
    the underlying slot list so downstream cone resimulations can skip the
    O(nets) dict-to-list conversion, and caches the 3-valued lift of the
    base values for X-injection prefills.
    """

    __slots__ = ("slots", "program", "mask", "_lifted")


def make_slot_values(
    program: SlotProgram, slots: list, mask: int
) -> SlotValues:
    values = SlotValues(zip(program.net_order, slots))
    values.slots = slots
    values.program = program
    values.mask = mask
    values._lifted = None
    return values


def base_slots(program: SlotProgram, base_values: Mapping[str, int]) -> list:
    """Flat slot list of ``base_values``; O(1) when they came from the
    compiled ``simulate`` of the same netlist."""
    if (
        isinstance(base_values, SlotValues)
        and base_values.program is program
    ):
        return base_values.slots
    return [base_values[net] for net in program.net_order]


def lifted_base(
    program: SlotProgram, base_values: Mapping[str, int], mask: int
) -> tuple[list, list]:
    """Pristine (ones, zeros) slot lists of the lifted binary base values.

    Cached on :class:`SlotValues` instances; callers must copy before
    mutating (the cone kernels write in place).
    """
    if (
        isinstance(base_values, SlotValues)
        and base_values.program is program
    ):
        lifted = base_values._lifted
        if lifted is None:
            ones = base_values.slots
            lifted = base_values._lifted = (ones, [x ^ mask for x in ones])
        return lifted
    ones = [base_values[net] & mask for net in program.net_order]
    return ones, [x ^ mask for x in ones]
