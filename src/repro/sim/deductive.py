"""Deductive fault simulation (Armstrong's algorithm).

Simulates *all* single stuck-at faults in one topological pass per
pattern: each net carries the set of faults whose presence would flip it
("fault list"), and gate-level set algebra propagates those lists:

- a gate with no controlling inputs is flipped by any fault flipping an
  odd-sensitive combination of its inputs (for AND/OR: any single input,
  hence the union; for XOR: an odd number of inputs),
- a gate held by controlling inputs is flipped only by faults that flip
  *every* controlling input while flipping *no* non-controlling one
  (intersection minus union),
- a fault's own site either adds the fault (when activated) or blocks it
  (a stuck net cannot be flipped, even by an upstream error arriving
  through it).

For irregular gates (MUX) a value-resolution fallback re-evaluates the
gate per candidate fault.  Fault lists reaching a primary output are that
pattern's detections.

Scope: stem stuck-at faults (the classic formulation).  Fanout-branch
faults are serviced by the cone-resimulation engine in
:mod:`repro.sim.faultsim`; the two are cross-checked fault-for-fault in
the test suite, which is the main role of this module: a structurally
*independent* oracle for the fault-grading results everything else
depends on.  (Performance-wise the bit-parallel cone resimulation wins on
this workload -- deductive lists are per-pattern scalar -- so the
production grading path stays in ``faultsim``.)
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.circuit.gates import GateKind
from repro.circuit.netlist import Netlist, Site
from repro.errors import SimulationError
from repro.faults.models import StuckAtDefect
from repro.sim.logicsim import simulate
from repro.sim.patterns import PatternSet


def _gate_fault_list(
    kind: GateKind,
    in_values: Sequence[int],
    in_lists: Sequence[frozenset],
) -> frozenset:
    """Faults flipping the gate output, from input values and fault lists."""
    if kind in (GateKind.BUF, GateKind.NOT):
        return in_lists[0]
    if kind in (GateKind.CONST0, GateKind.CONST1):
        return frozenset()
    ctrl = kind.controlling_value
    if ctrl is not None:
        controlling = [
            lst for v, lst in zip(in_values, in_lists) if v == ctrl
        ]
        non_controlling = [
            lst for v, lst in zip(in_values, in_lists) if v != ctrl
        ]
        if not controlling:
            out: frozenset = frozenset()
            for lst in non_controlling:
                out |= lst
            return out
        flip_all = controlling[0]
        for lst in controlling[1:]:
            flip_all &= lst
        if not flip_all:
            return frozenset()
        spoil: frozenset = frozenset()
        for lst in non_controlling:
            spoil |= lst
        return flip_all - spoil
    if kind in (GateKind.XOR, GateKind.XNOR):
        # A fault flips the output iff it flips an odd number of inputs.
        counts: dict = {}
        for lst in in_lists:
            for fault in lst:
                counts[fault] = counts.get(fault, 0) + 1
        return frozenset(f for f, c in counts.items() if c % 2)
    if kind is GateKind.MUX:
        # Value-resolution fallback: re-evaluate per candidate fault.
        candidates: set = set()
        for lst in in_lists:
            candidates |= lst
        a, b, sel = in_values
        healthy = b if sel else a
        flipped: set = set()
        for fault in candidates:
            fa = a ^ (fault in in_lists[0])
            fb = b ^ (fault in in_lists[1])
            fs = sel ^ (fault in in_lists[2])
            if (fb if fs else fa) != healthy:
                flipped.add(fault)
        return frozenset(flipped)
    raise SimulationError(f"deductive simulation cannot handle {kind}")


def deductive_detects(
    netlist: Netlist,
    patterns: PatternSet,
    faults: Iterable[StuckAtDefect] | None = None,
    base_values: Mapping[str, int] | None = None,
) -> dict[StuckAtDefect, int]:
    """Per-fault detection vectors for stem stuck-at faults.

    ``faults`` defaults to both polarities on every stem.  Returns
    ``{fault: bit vector of detecting patterns}`` (undetected faults map
    to 0), matching :func:`repro.sim.faultsim.detect_vector` exactly.
    """
    if base_values is None:
        base_values = simulate(netlist, patterns)
    if faults is None:
        faults = [
            StuckAtDefect(Site(net), v)
            for net in netlist.nets()
            for v in (0, 1)
        ]
    faults = list(faults)
    for fault in faults:
        if not fault.site.is_stem:
            raise SimulationError(
                "deductive simulation handles stem faults only "
                f"(got {fault.site})"
            )
    by_net: dict[str, list[StuckAtDefect]] = {}
    for fault in faults:
        by_net.setdefault(fault.site.net, []).append(fault)

    detects: dict[StuckAtDefect, int] = {fault: 0 for fault in faults}
    for index in range(patterns.n):
        values = {net: (vec >> index) & 1 for net, vec in base_values.items()}
        lists: dict[str, frozenset] = {}
        for net in netlist.inputs:
            lists[net] = _site_list(net, values, by_net, frozenset())
        for net in netlist.topo_order:
            gate = netlist.gates[net]
            computed = _gate_fault_list(
                gate.kind,
                [values[src] for src in gate.inputs],
                [lists[src] for src in gate.inputs],
            )
            lists[net] = _site_list(net, values, by_net, computed)
        for out in netlist.outputs:
            for fault in lists[out]:
                detects[fault] |= 1 << index
    return detects


def _site_list(
    net: str,
    values: Mapping[str, int],
    by_net: Mapping[str, list[StuckAtDefect]],
    computed: frozenset,
) -> frozenset:
    """Apply local fault activation/blocking at a (possibly faulty) net."""
    local = by_net.get(net)
    if not local:
        return computed
    result = set(computed)
    for fault in local:
        if values[net] != fault.value:
            result.add(fault)  # activated here, flips this net
        else:
            result.discard(fault)  # the stuck net blocks its own fault
    return frozenset(result)


def deductive_coverage(
    netlist: Netlist,
    patterns: PatternSet,
    faults: Iterable[StuckAtDefect] | None = None,
) -> float:
    """Stuck-at coverage of ``patterns`` via one deductive pass."""
    detects = deductive_detects(netlist, patterns, faults)
    if not detects:
        return 1.0
    return sum(1 for vec in detects.values() if vec) / len(detects)
