"""Cone-restricted incremental resimulation.

Given the fault-free value of every net, re-evaluating a what-if scenario
(a set of site overrides) only requires visiting the gates in the combined
fanout cone of the overridden sites.  For localized changes -- the common
case in fault simulation, critical path tracing and candidate refinement --
this is dramatically cheaper than a full-netlist pass.
"""

from __future__ import annotations

from typing import Mapping

from repro.circuit.gates import eval2
from repro.circuit.netlist import Netlist, Site
from repro.errors import SimulationError


def resimulate_with_overrides(
    netlist: Netlist,
    base_values: Mapping[str, int],
    overrides: Mapping[Site, int],
    mask: int,
) -> dict[str, int]:
    """Resimulate the fanout cone of ``overrides`` on top of ``base_values``.

    Returns a sparse dictionary containing only the nets whose value vector
    differs from ``base_values`` (overridden sites included when they
    changed).  Reading a missing key therefore means "unchanged".
    """
    stem_over: dict[str, int] = {}
    pin_over: dict[tuple[str, int], int] = {}
    roots: list[str] = []
    for site, value in overrides.items():
        netlist.validate_site(site)
        if value < 0 or value > mask:
            raise SimulationError(f"override for {site} exceeds pattern width")
        if site.is_stem:
            stem_over[site.net] = value
            roots.append(site.net)
        else:
            pin_over[site.branch] = value
            roots.append(site.branch[0])

    cone = netlist.fanout_cone(roots)
    changed: dict[str, int] = {}

    def read(net: str) -> int:
        return changed.get(net, base_values[net])

    for net in netlist.inputs:
        if net in stem_over and stem_over[net] != base_values[net]:
            changed[net] = stem_over[net]
    for net in netlist.topo_order:
        if net not in cone:
            continue
        if net in stem_over:
            if stem_over[net] != base_values[net]:
                changed[net] = stem_over[net]
            continue
        gate = netlist.gates[net]
        ins = [
            pin_over.get((net, pin), read(src))
            for pin, src in enumerate(gate.inputs)
        ]
        out = eval2(gate.kind, ins, mask)
        if out != base_values[net]:
            changed[net] = out
    return changed


def changed_outputs(
    netlist: Netlist, changed: Mapping[str, int], base_values: Mapping[str, int], mask: int
) -> dict[str, int]:
    """Per-output difference vectors implied by a sparse ``changed`` map."""
    diff: dict[str, int] = {}
    for net in netlist.outputs:
        if net in changed:
            delta = (changed[net] ^ base_values[net]) & mask
            if delta:
                diff[net] = delta
    return diff
