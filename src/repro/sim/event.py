"""Cone-restricted incremental resimulation.

Given the fault-free value of every net, re-evaluating a what-if scenario
(a set of site overrides) only requires visiting the gates in the combined
fanout cone of the overridden sites.  For localized changes -- the common
case in fault simulation, critical path tracing and candidate refinement --
this is dramatically cheaper than a full-netlist pass.

The compiled backend evaluates the cone with a guarded straight-line kernel
over the flat slot array; when ``base_values`` came from the compiled
:func:`~repro.sim.logicsim.simulate` (a ``SlotValues``), the base slot list
is reused directly and the whole resimulation allocates one list copy.
"""

from __future__ import annotations

from typing import Mapping

from repro.circuit.gates import eval2
from repro.circuit.netlist import Netlist, Site
from repro.errors import SimulationError
from repro.sim.compile import COUNTERS, active_kernels, base_slots
from repro.sim.packed import (
    active_packed,
    resim_changed_special,
    resim_diff_special,
)


def _split_resim_overrides(
    netlist: Netlist, overrides: Mapping[Site, int], mask: int
) -> tuple[dict[str, int], dict[tuple[str, int], int], frozenset[str]]:
    """Validate overrides, split into stem/pin maps, return the fanout cone."""
    stem_over: dict[str, int] = {}
    pin_over: dict[tuple[str, int], int] = {}
    roots: list[str] = []
    for site, value in overrides.items():
        netlist.validate_site(site)
        if value < 0 or value > mask:
            raise SimulationError(f"override for {site} exceeds pattern width")
        if site.is_stem:
            stem_over[site.net] = value
            roots.append(site.net)
        else:
            pin_over[site.branch] = value
            roots.append(site.branch[0])
    return stem_over, pin_over, netlist.fanout_cone(roots)


def resimulate_with_overrides(
    netlist: Netlist,
    base_values: Mapping[str, int],
    overrides: Mapping[Site, int],
    mask: int,
) -> dict[str, int]:
    """Resimulate the fanout cone of ``overrides`` on top of ``base_values``.

    Returns a sparse dictionary containing only the nets whose value vector
    differs from ``base_values`` (overridden sites included when they
    changed).  Reading a missing key therefore means "unchanged".
    """
    stem_over, pin_over, cone = _split_resim_overrides(netlist, overrides, mask)
    COUNTERS.cone_passes += 1
    COUNTERS.gate_evals += len(cone)

    kernels = active_kernels(netlist)
    if kernels is None:
        return _resim_interp(netlist, base_values, stem_over, pin_over, cone, mask)

    program = kernels.program
    base = base_slots(program, base_values)
    slot_of = program.slot_of
    gates = netlist.gates
    # ``st`` carries input stems too: the guarded kernels only probe gate
    # slots, so the extra keys are inert there, while the packed
    # specialized kernels read the input overrides from it directly.
    st: dict[int, int] = {}
    input_slots: list[int] = []
    for net, value in stem_over.items():
        slot = slot_of[net]
        st[slot] = value
        if net not in gates:
            input_slots.append(slot)
    input_slots.sort()
    if pin_over:
        stride = program.stride
        pp = {
            slot_of[gate] * stride + pin: value
            for (gate, pin), value in pin_over.items()
        }
    else:
        pp = {}

    packed = active_packed(netlist)
    if packed is not None:
        changed = resim_changed_special(
            packed, base, st, pp, input_slots, cone, mask
        )
        if changed is not None:
            return changed

    slots = base.copy()
    changed = {}
    net_order = program.net_order
    # Overridden inputs first, in primary-input (= slot) order, matching
    # the interpreted walk's insertion order.
    for slot in input_slots:
        value = st[slot]
        slots[slot] = value
        if value != base[slot]:
            changed[net_order[slot]] = value

    cone_set, cone_order = kernels.cone_slots(cone)
    if pp:
        kernels.fn("cone2_sp")(slots, mask, cone_set, st, pp)
    else:
        kernels.fn("cone2_s")(slots, mask, cone_set, st)

    for slot in cone_order:
        value = slots[slot]
        if value != base[slot]:
            changed[net_order[slot]] = value
    return changed


def _resim_interp(
    netlist: Netlist,
    base_values: Mapping[str, int],
    stem_over: dict[str, int],
    pin_over: dict[tuple[str, int], int],
    cone: frozenset[str],
    mask: int,
) -> dict[str, int]:
    """Interpreted reference walk (differential oracle for the kernels)."""
    changed: dict[str, int] = {}

    def read(net: str) -> int:
        return changed.get(net, base_values[net])

    for net in netlist.inputs:
        if net in stem_over and stem_over[net] != base_values[net]:
            changed[net] = stem_over[net]
    for net in netlist.topo_order:
        if net not in cone:
            continue
        if net in stem_over:
            if stem_over[net] != base_values[net]:
                changed[net] = stem_over[net]
            continue
        gate = netlist.gates[net]
        ins = [
            pin_over.get((net, pin), read(src))
            for pin, src in enumerate(gate.inputs)
        ]
        out = eval2(gate.kind, ins, mask)
        if out != base_values[net]:
            changed[net] = out
    return changed


def resim_output_diff(
    netlist: Netlist,
    base_values: Mapping[str, int],
    overrides: Mapping[Site, int],
    mask: int,
) -> dict[str, int]:
    """Per-*output* difference vectors of resimulating with ``overrides``.

    Exactly ``changed_outputs(netlist, resimulate_with_overrides(...))``,
    but the compiled path skips materializing the full changed-nets map --
    the cone kernel runs on the flat slot array and only the output slots
    are compared.  This is the hot query of the cross-stage cache (flip
    signatures, per-test assignment diffs, fault-model responses).
    """
    stem_over, pin_over, cone = _split_resim_overrides(netlist, overrides, mask)
    COUNTERS.cone_passes += 1
    COUNTERS.gate_evals += len(cone)

    kernels = active_kernels(netlist)
    if kernels is None:
        changed = _resim_interp(netlist, base_values, stem_over, pin_over, cone, mask)
        return changed_outputs(netlist, changed, base_values, mask)

    program = kernels.program
    base = base_slots(program, base_values)
    slot_of = program.slot_of
    gates = netlist.gates
    st: dict[int, int] = {}
    input_slots: list[int] = []
    for net, value in stem_over.items():
        slot = slot_of[net]
        st[slot] = value
        if net not in gates:
            input_slots.append(slot)
    input_slots.sort()
    if pin_over:
        stride = program.stride
        pp = {
            slot_of[gate] * stride + pin: value
            for (gate, pin), value in pin_over.items()
        }
    else:
        pp = {}

    packed = active_packed(netlist)
    if packed is not None:
        diff = resim_diff_special(
            packed, base, st, pp, input_slots, cone, mask
        )
        if diff is not None:
            return diff

    slots = base.copy()
    for slot in input_slots:
        slots[slot] = st[slot]
    cone_set, _cone_order = kernels.cone_slots(cone)
    if pp:
        kernels.fn("cone2_sp")(slots, mask, cone_set, st, pp)
    else:
        kernels.fn("cone2_s")(slots, mask, cone_set, st)

    diff: dict[str, int] = {}
    for net, slot in zip(netlist.outputs, program.out_slots):
        delta = slots[slot] ^ base[slot]
        if delta:
            diff[net] = delta
    return diff


def changed_outputs(
    netlist: Netlist, changed: Mapping[str, int], base_values: Mapping[str, int], mask: int
) -> dict[str, int]:
    """Per-output difference vectors implied by a sparse ``changed`` map."""
    diff: dict[str, int] = {}
    for net in netlist.outputs:
        if net in changed:
            delta = (changed[net] ^ base_values[net]) & mask
            if delta:
                diff[net] = delta
    return diff
