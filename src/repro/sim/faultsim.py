"""Single-defect fault simulation services.

Used by ATPG (coverage grading, fault dropping), the SLAT baseline
(per-pattern response matching) and diagnosis candidate refinement
(validating a hypothesized fault model against the datalog).

The fast path expresses a defect as a set of *site overrides* computed from
fault-free values -- valid whenever the defect's behavior does not depend
on nets inside its own fanout cone -- and resimulates only the overridden
cone.  Context-dependent cases (e.g. a bridge whose aggressor is disturbed
by the victim) transparently fall back to the full
:class:`~repro.faults.injection.FaultyCircuit` fixpoint simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.circuit.netlist import Netlist, Site
from repro.errors import OscillationError
from repro.faults.injection import FaultyCircuit
from repro.faults.models import (
    BridgeDefect,
    BridgeKind,
    ByzantineDefect,
    Defect,
    OpenDefect,
    StuckAtDefect,
    TransitionDefect,
    TransitionKind,
)
from repro.sim.cache import active_context, sim_context
from repro.sim.event import resim_output_diff
from repro.sim.patterns import PatternSet


def _prev_shift(vec: int, mask: int) -> int:
    return ((vec << 1) | (vec & 1)) & mask


def single_defect_overrides(
    netlist: Netlist,
    patterns: PatternSet,
    defect: Defect,
    base_values: Mapping[str, int],
) -> dict[Site, int] | None:
    """Site-override encoding of ``defect``, or ``None`` if context-dependent.

    The encoding assumes every net the defect *reads* keeps its fault-free
    value, which holds exactly when those nets are outside the defect's own
    fanout cone.
    """
    mask = patterns.mask
    if isinstance(defect, (StuckAtDefect, OpenDefect)):
        forced = defect.value if isinstance(defect, StuckAtDefect) else defect.float_value
        return {defect.site: mask if forced else 0}
    if isinstance(defect, TransitionDefect):
        v = base_values[defect.site.net]
        prev = _prev_shift(v, mask)
        faulty = (v & prev) if defect.kind is TransitionKind.SLOW_TO_RISE else (v | prev)
        return {defect.site: faulty}
    if isinstance(defect, ByzantineDefect):
        v = base_values[defect.site.net]
        return {defect.site: v ^ (defect.flip_vector(patterns.n) & mask)}
    if isinstance(defect, BridgeDefect):
        victim_cone = netlist.fanout_cone([defect.victim])
        if defect.aggressor in victim_cone:
            return None
        a = base_values[defect.aggressor]
        v = base_values[defect.victim]
        if defect.kind is BridgeKind.DOMINANT:
            return {Site(defect.victim): a}
        if defect.victim in netlist.fanout_cone([defect.aggressor]):
            return None
        merged = (v & a) if defect.kind is BridgeKind.WIRED_AND else (v | a)
        return {Site(defect.victim): merged, Site(defect.aggressor): merged}
    return None


def defect_output_diff(
    netlist: Netlist,
    patterns: PatternSet,
    defect: Defect,
    base_values: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Per-output bit vectors of patterns where the defect flips the output.

    Only outputs with at least one differing pattern appear.
    """
    if base_values is None:
        base_values = sim_context(netlist, patterns).base
    mask = patterns.mask
    overrides = single_defect_overrides(netlist, patterns, defect, base_values)
    if overrides is not None:
        ctx = active_context(netlist, patterns, base_values)
        if ctx is not None:
            return dict(ctx.resim_diff(overrides))
        return resim_output_diff(netlist, base_values, overrides, mask)
    faulty = FaultyCircuit(netlist, [defect]).simulate_outputs(patterns)
    diff: dict[str, int] = {}
    for net in netlist.outputs:
        delta = (faulty[net] ^ base_values[net]) & mask
        if delta:
            diff[net] = delta
    return diff


def detect_vector(
    netlist: Netlist,
    patterns: PatternSet,
    defect: Defect,
    base_values: Mapping[str, int] | None = None,
) -> int:
    """Bit vector of patterns that detect ``defect`` on any output."""
    vec = 0
    for delta in defect_output_diff(netlist, patterns, defect, base_values).values():
        vec |= delta
    return vec


@dataclass
class FaultCoverageResult:
    """Outcome of grading a pattern set against a fault list."""

    detected: list[Defect] = field(default_factory=list)
    undetected: list[Defect] = field(default_factory=list)
    unsimulable: list[Defect] = field(default_factory=list)
    detect_bits: dict[Defect, int] = field(default_factory=dict)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0

    @property
    def n_faults(self) -> int:
        return len(self.detected) + len(self.undetected) + len(self.unsimulable)


def fault_coverage(
    netlist: Netlist,
    patterns: PatternSet,
    faults: Iterable[Defect],
    base_values: Mapping[str, int] | None = None,
) -> FaultCoverageResult:
    """Grade ``patterns`` against ``faults`` (serial, bit-parallel per fault).

    Defects whose injected circuit oscillates are reported separately as
    ``unsimulable`` rather than silently dropped.
    """
    if base_values is None:
        base_values = sim_context(netlist, patterns).base
    result = FaultCoverageResult()
    for fault in faults:
        try:
            vec = detect_vector(netlist, patterns, fault, base_values)
        except OscillationError:
            result.unsimulable.append(fault)
            continue
        result.detect_bits[fault] = vec
        if vec:
            result.detected.append(fault)
        else:
            result.undetected.append(fault)
    return result


def effective_pattern_order(
    netlist: Netlist,
    patterns: PatternSet,
    faults: Sequence[Defect],
) -> list[int]:
    """Greedy pattern ranking by marginal fault detection (for compaction).

    Returns pattern indices ordered so that prefixes maximize coverage;
    patterns detecting nothing new are omitted.
    """
    grading = fault_coverage(netlist, patterns, faults)
    remaining = dict(grading.detect_bits)
    remaining = {f: v for f, v in remaining.items() if v}
    order: list[int] = []
    while remaining:
        counts: dict[int, int] = {}
        for vec in remaining.values():
            while vec:
                low = vec & -vec
                idx = low.bit_length() - 1
                counts[idx] = counts.get(idx, 0) + 1
                vec ^= low
        best = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]
        order.append(best)
        bit = 1 << best
        remaining = {f: v for f, v in remaining.items() if not (v & bit)}
    return order
