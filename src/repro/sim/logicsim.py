"""Two-valued bit-parallel logic simulation.

One topological pass over the netlist evaluates every pattern of a
:class:`~repro.sim.patterns.PatternSet` simultaneously (bit *i* of each
net's value integer is the value under pattern *i*).
"""

from __future__ import annotations

from typing import Mapping

from repro.circuit.gates import eval2
from repro.circuit.netlist import Netlist, Site
from repro.errors import SimulationError
from repro.sim.patterns import PatternSet


def _check_inputs(netlist: Netlist, patterns: PatternSet) -> None:
    if tuple(patterns.inputs) != netlist.inputs:
        raise SimulationError(
            f"pattern inputs {patterns.inputs} do not match circuit inputs "
            f"{netlist.inputs}"
        )


def simulate(
    netlist: Netlist,
    patterns: PatternSet,
    overrides: Mapping[Site, int] | None = None,
) -> dict[str, int]:
    """Simulate and return the value vector of *every* net.

    ``overrides`` forcibly replaces site values: a stem override replaces
    the net's driven value for all its readers (and for output observation),
    a branch override replaces the value seen by one specific gate pin only.
    Overrides are the primitive both fault injection and what-if analysis
    are built on.
    """
    _check_inputs(netlist, patterns)
    mask = patterns.mask
    stem_over: dict[str, int] = {}
    pin_over: dict[tuple[str, int], int] = {}
    for site, value in (overrides or {}).items():
        netlist.validate_site(site)
        if value < 0 or value > mask:
            raise SimulationError(f"override for {site} exceeds pattern width")
        if site.is_stem:
            stem_over[site.net] = value
        else:
            pin_over[site.branch] = value

    values: dict[str, int] = {}
    for net in netlist.inputs:
        values[net] = stem_over.get(net, patterns.bits[net])
    for net in netlist.topo_order:
        gate = netlist.gates[net]
        ins = [
            pin_over.get((net, pin), values[src])
            for pin, src in enumerate(gate.inputs)
        ]
        out = eval2(gate.kind, ins, mask)
        values[net] = stem_over.get(net, out)
    return values


def simulate_outputs(
    netlist: Netlist,
    patterns: PatternSet,
    overrides: Mapping[Site, int] | None = None,
) -> dict[str, int]:
    """Primary-output response vectors only."""
    values = simulate(netlist, patterns, overrides)
    return {net: values[net] for net in netlist.outputs}


def response_signature(outputs: Mapping[str, int], output_order: tuple[str, ...]) -> tuple[int, ...]:
    """Canonical hashable form of an output response."""
    return tuple(outputs[net] for net in output_order)


def mismatched_outputs(
    golden: Mapping[str, int], observed: Mapping[str, int], mask: int
) -> dict[str, int]:
    """Per-output bit vectors of pattern positions where responses differ."""
    diff: dict[str, int] = {}
    for net, gold in golden.items():
        delta = (gold ^ observed[net]) & mask
        if delta:
            diff[net] = delta
    return diff
