"""Two-valued bit-parallel logic simulation.

One topological pass over the netlist evaluates every pattern of a
:class:`~repro.sim.patterns.PatternSet` simultaneously (bit *i* of each
net's value integer is the value under pattern *i*).

Two backends share this entry point: the compiled slot-indexed kernels
(:mod:`repro.sim.compile`, the default) and the interpreted walk kept as
the differential-testing oracle (``REPRO_SIM=interp``).  Both produce
identical value dicts in identical iteration order.
"""

from __future__ import annotations

from typing import Mapping

from repro.circuit.gates import eval2
from repro.circuit.netlist import Netlist, Site
from repro.errors import SimulationError
from repro.sim.compile import (
    COUNTERS,
    active_kernels,
    make_slot_values,
)
from repro.sim.packed import active_packed, packed_simulate
from repro.sim.patterns import PatternSet


def _check_inputs(netlist: Netlist, patterns: PatternSet) -> None:
    if tuple(patterns.inputs) != netlist.inputs:
        raise SimulationError(
            f"pattern inputs {patterns.inputs} do not match circuit inputs "
            f"{netlist.inputs}"
        )


def _split_overrides(
    netlist: Netlist,
    overrides: Mapping[Site, int] | None,
    mask: int,
) -> tuple[dict[str, int], dict[tuple[str, int], int]]:
    """Validate and split overrides into stem and pin maps."""
    stem_over: dict[str, int] = {}
    pin_over: dict[tuple[str, int], int] = {}
    for site, value in (overrides or {}).items():
        netlist.validate_site(site)
        if value < 0 or value > mask:
            raise SimulationError(f"override for {site} exceeds pattern width")
        if site.is_stem:
            stem_over[site.net] = value
        else:
            pin_over[site.branch] = value
    return stem_over, pin_over


def simulate(
    netlist: Netlist,
    patterns: PatternSet,
    overrides: Mapping[Site, int] | None = None,
) -> dict[str, int]:
    """Simulate and return the value vector of *every* net.

    ``overrides`` forcibly replaces site values: a stem override replaces
    the net's driven value for all its readers (and for output observation),
    a branch override replaces the value seen by one specific gate pin only.
    Overrides are the primitive both fault injection and what-if analysis
    are built on.
    """
    _check_inputs(netlist, patterns)
    mask = patterns.mask
    stem_over, pin_over = _split_overrides(netlist, overrides, mask)
    COUNTERS.full_passes += 1
    COUNTERS.gate_evals += netlist.n_gates

    kernels = active_kernels(netlist)
    if kernels is None:
        return _simulate_interp(netlist, patterns, stem_over, pin_over, mask)
    packed = active_packed(netlist)
    if packed is not None:
        return packed_simulate(
            packed, netlist, patterns, stem_over, pin_over, mask
        )

    program = kernels.program
    bits = patterns.bits
    slots = [0] * program.n_slots
    if stem_over:
        for slot, net in enumerate(netlist.inputs):
            slots[slot] = stem_over.get(net, bits[net])
    else:
        for slot, net in enumerate(netlist.inputs):
            slots[slot] = bits[net]
    gates = netlist.gates
    slot_of = program.slot_of
    st = {
        slot_of[net]: value
        for net, value in stem_over.items()
        if net in gates
    }
    if pin_over:
        stride = program.stride
        pp = {
            slot_of[gate] * stride + pin: value
            for (gate, pin), value in pin_over.items()
        }
        kernels.fn("full2_sp")(slots, mask, st, pp)
    elif st:
        kernels.fn("full2_s")(slots, mask, st)
    else:
        kernels.fn("full2")(slots, mask)
    return make_slot_values(program, slots, mask)


def _simulate_interp(
    netlist: Netlist,
    patterns: PatternSet,
    stem_over: dict[str, int],
    pin_over: dict[tuple[str, int], int],
    mask: int,
) -> dict[str, int]:
    """Interpreted reference walk (differential oracle for the kernels)."""
    values: dict[str, int] = {}
    bits = patterns.bits
    for net in netlist.inputs:
        values[net] = stem_over.get(net, bits[net])
    gates = netlist.gates
    if not stem_over and not pin_over:
        # Hot path: no overrides means no per-gate dict probes and no
        # intermediate input list (eval2 folds the map lazily).
        getval = values.__getitem__
        for net in netlist.topo_order:
            gate = gates[net]
            values[net] = eval2(gate.kind, map(getval, gate.inputs), mask)
        return values
    if not pin_over:
        getval = values.__getitem__
        for net in netlist.topo_order:
            if net in stem_over:
                values[net] = stem_over[net]
                continue
            gate = gates[net]
            values[net] = eval2(gate.kind, map(getval, gate.inputs), mask)
        return values
    for net in netlist.topo_order:
        gate = gates[net]
        ins = [
            pin_over.get((net, pin), values[src])
            for pin, src in enumerate(gate.inputs)
        ]
        out = eval2(gate.kind, ins, mask)
        values[net] = stem_over.get(net, out)
    return values


def simulate_outputs(
    netlist: Netlist,
    patterns: PatternSet,
    overrides: Mapping[Site, int] | None = None,
) -> dict[str, int]:
    """Primary-output response vectors only."""
    values = simulate(netlist, patterns, overrides)
    return {net: values[net] for net in netlist.outputs}


def response_signature(outputs: Mapping[str, int], output_order: tuple[str, ...]) -> tuple[int, ...]:
    """Canonical hashable form of an output response."""
    return tuple(outputs[net] for net in output_order)


def mismatched_outputs(
    golden: Mapping[str, int], observed: Mapping[str, int], mask: int
) -> dict[str, int]:
    """Per-output bit vectors of pattern positions where responses differ.

    Raises :class:`SimulationError` when ``observed`` lacks an output that
    ``golden`` has (a truncated or mislabeled tester response).
    """
    diff: dict[str, int] = {}
    for net, gold in golden.items():
        seen = observed.get(net)
        if seen is None:
            raise SimulationError(
                f"observed response is missing output {net!r}"
            )
        delta = (gold ^ seen) & mask
        if delta:
            diff[net] = delta
    return diff
