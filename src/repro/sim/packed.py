"""Bit-packed pattern-parallel (PPSFP) simulation backend.

Classic parallel-pattern single-fault simulation: the pattern set is packed
into 64-bit machine words -- bit *i* of word *w* is pattern ``64*w + i`` --
and the generated kernels evaluate one whole word per statement.  Three
valued 01/X logic uses two words per net, the ``(ones, zeros)`` planes of
:mod:`repro.sim.threeval`; a net is ``X`` for a pattern exactly when both
planes have the bit set.  A ragged pattern count keeps the *tail-mask
invariant*: every value word of word index ``w`` stays confined to
``word_masks(n)[w]``, so the last word's unused high bits are provably zero
everywhere (kernels re-mask at every inverting gate exactly like the
compiled backend does with the full-width mask).

Where the speed comes from
--------------------------

The compiled backend (:mod:`repro.sim.compile`) already evaluates all
patterns per statement -- on one arbitrary-precision int per net.  Packing
therefore wins not by widening the ALU but by removing interpreter-level
overhead the big-int kernels cannot avoid:

- **Full passes** run locals-only word kernels: input words are unpacked
  into function locals once, every gate is a pure ``_k = _a & _b`` over
  ``LOAD_FAST`` operands (no ``v[k]`` list indexing), and the result tuple
  comes back in one ``BUILD_TUPLE``.  With <= 64 patterns a full pass is a
  single call; wider sets loop words and re-join per slot (past a few words
  the join cost approaches the compiled big-int pass -- the crossover is
  documented in ``docs/architecture.md``).
- **Cone passes** (resimulation, X-injection reach) are where diagnosis
  spends its time, and the guarded compiled kernels pay an ``if k in c``
  probe for *every* gate of the netlist plus an O(slots) base-list copy per
  call.  Hot cones (seen :data:`_SPECIALIZE_AFTER` times) get a
  *specialized* straight-line kernel containing only the cone's gates,
  reading frontier values directly from the shared base slot list and
  returning only the cone slots -- no guard walk, no copy.  These operate
  on the full-width packed integers directly (they are already
  pattern-parallel; chunking a sparse cone pass into words would only add
  join overhead).  Cold cones fall through to the guarded compiled kernels
  with bit-identical results.

Backend semantics
-----------------

``REPRO_SIM=packed`` enables this backend for netlists up to
:data:`MAX_PACKED_GATES` gates; above that it downgrades to the compiled
kernels (then to the interpreter above
:data:`repro.sim.compile.MAX_COMPILED_GATES`), emitting one
``sim.packed_downgrade`` trace event per netlist fingerprint.  All value
dicts, iteration orders, dispatcher-level :data:`~repro.sim.compile.COUNTERS`
and diagnosis reports are byte-identical across the three backends; the
only packed-specific counter is ``packed_words`` (never surfaced in
reports, like ``kernel_compiles``).
"""

from __future__ import annotations

from typing import Mapping

from repro.circuit.gates import TV, GateKind
from repro.circuit.netlist import Netlist
from repro.errors import SimulationError
from repro.obs.metrics import record_kernel_compile
from repro.obs.trace import trace_event
from repro.sim.compile import (
    COUNTERS,
    MAX_COMPILED_GATES,
    VARIANTS,
    KernelSet,
    SlotProgram,
    SlotValues,
    _expr2,
    backend,
    kernels_for,
    lifted_base,
)
from repro.sim.patterns import PatternSet

#: Word width of the packed representation (patterns per word).
WORD = 64
WORD_MASK = (1 << WORD) - 1

#: Netlists above this gate count downgrade to the compiled backend (the
#: locals-style kernels return one local per slot in a single tuple; past a
#: few thousand slots codegen size and frame width stop paying for
#: themselves before the compiled kernels do).
MAX_PACKED_GATES = 4000

#: A fanout cone must recur this many times before a specialized
#: straight-line kernel is generated for it; colder cones use the guarded
#: compiled kernels (identical results, no codegen spend).
_SPECIALIZE_AFTER = 2

#: Cones larger than this never specialize (codegen time would dwarf the
#: guard-walk savings of the handful of repeats big cones get).
_MAX_SPECIAL_GATES = 1500

_SPECIAL_KERNEL_LIMIT = 512
_CONE_USE_LIMIT = 8192
_PACKED_CACHE_LIMIT = 64


# ---------------------------------------------------------------------------
# Word representation
# ---------------------------------------------------------------------------


def word_count(n: int) -> int:
    """Words needed for ``n`` patterns (at least one, so masks exist)."""
    return (n + WORD - 1) // WORD if n else 1


def word_masks(n: int) -> tuple[int, ...]:
    """Per-word valid-bit masks for ``n`` patterns; the last one is the
    tail mask of a ragged pattern count."""
    if n <= 0:
        return (0,)
    full, tail = divmod(n, WORD)
    masks = [WORD_MASK] * full
    if tail:
        masks.append((1 << tail) - 1)
    return tuple(masks)


def split_vector(vec: int, masks: tuple[int, ...]) -> tuple[int, ...]:
    """Split a full-width pattern vector into per-word values.

    Each word is confined to its mask, preserving the tail-mask invariant
    for arbitrary (already width-checked) caller vectors.
    """
    return tuple((vec >> (WORD * w)) & m for w, m in enumerate(masks))


def join_words(words) -> int:
    """Inverse of :func:`split_vector`: concatenate words little-endian."""
    if len(words) == 1:
        return words[0]
    return int.from_bytes(
        b"".join(w.to_bytes(8, "little") for w in words), "little"
    )


class PackedPatterns:
    """Word-major packed view of one :class:`~repro.sim.patterns.PatternSet`.

    ``in_words[w]`` is the tuple of input values for word ``w`` (input-slot
    order); ``lifted[w]`` adds the zeros plane for 3-valued passes.  Cached
    on the pattern-set instance (pattern sets are immutable).
    """

    __slots__ = ("n", "n_words", "masks", "in_words", "_lifted")

    def __init__(self, patterns: PatternSet):
        self.n = patterns.n
        self.masks = word_masks(patterns.n)
        self.n_words = len(self.masks)
        bits = patterns.bits
        # Pattern bits are already <= the global mask, so the per-word
        # shift-and-trim below preserves the tail-mask invariant.
        self.in_words: tuple[tuple[int, ...], ...] = tuple(
            tuple((bits[net] >> (WORD * w)) & WORD_MASK for net in patterns.inputs)
            for w in range(self.n_words)
        )
        self._lifted: tuple | None = None

    @property
    def lifted(self) -> tuple:
        """Per-word ``(ones, zeros)`` input planes of the binary patterns."""
        lifted = self._lifted
        if lifted is None:
            lifted = self._lifted = tuple(
                (words, tuple(x ^ m for x in words))
                for words, m in zip(self.in_words, self.masks)
            )
        return lifted


def packed_patterns(patterns: PatternSet) -> PackedPatterns:
    """The (instance-cached) packed view of ``patterns``."""
    cached = getattr(patterns, "_packed_view", None)
    if cached is None:
        cached = patterns._packed_view = PackedPatterns(patterns)
    return cached


class PackedValues(SlotValues):
    """A ``simulate`` result that also remembers its per-word planes.

    Downstream consumers see the exact ``{net: bits}`` dict (and the
    ``SlotValues`` slot list) the other backends produce; the extra fields
    let later packed passes reuse the word decomposition without
    re-splitting.
    """

    __slots__ = ("words", "word_masks")


def _make_packed_values(
    program: SlotProgram,
    slots: list,
    mask: int,
    words: list,
    masks: tuple[int, ...],
) -> PackedValues:
    values = PackedValues(zip(program.net_order, slots))
    values.slots = slots
    values.program = program
    values.mask = mask
    values._lifted = None
    values.words = words
    values.word_masks = masks
    return values


def _mask_words(mask: int) -> int:
    """Word count implied by a full-width pattern mask (``2**n - 1``)."""
    return word_count(mask.bit_length())


# ---------------------------------------------------------------------------
# Codegen: locals-style full-pass word kernels
# ---------------------------------------------------------------------------


def _locals3(kind: GateKind, srcs: list[tuple[str, str]], k: int) -> list[str]:
    """Three-valued statements targeting locals ``_o{k}`` / ``_z{k}``.

    Mirrors :func:`repro.sim.compile._lines3` (same truth tables, same
    mask-confinement invariant) with local-variable targets instead of
    plane-list stores.
    """
    on_t, zr_t = f"_o{k}", f"_z{k}"
    if kind is GateKind.AND or kind is GateKind.NAND:
        on = " & ".join(s for s, _ in srcs)
        zr = " | ".join(s for _, s in srcs)
        if kind is GateKind.NAND:
            on, zr = zr, on
        return [f"{on_t} = {on}", f"{zr_t} = {zr}"]
    if kind is GateKind.OR or kind is GateKind.NOR:
        on = " | ".join(s for s, _ in srcs)
        zr = " & ".join(s for _, s in srcs)
        if kind is GateKind.NOR:
            on, zr = zr, on
        return [f"{on_t} = {on}", f"{zr_t} = {zr}"]
    if kind is GateKind.XOR or kind is GateKind.XNOR:
        if len(srcs) == 1:  # degenerate: XOR is a buffer, XNOR an inverter
            on_s, zr_s = srcs[0]
            if kind is GateKind.XNOR:
                on_s, zr_s = zr_s, on_s
            return [f"{on_t} = {on_s}", f"{zr_t} = {zr_s}"]
        (a_on, a_zr), (b_on, b_zr) = srcs[0], srcs[1]
        on = f"({a_on} & {b_zr}) | ({a_zr} & {b_on})"
        zr = f"({a_on} & {b_on}) | ({a_zr} & {b_zr})"
        if len(srcs) == 2:  # direct form: no accumulator round-trips
            if kind is GateKind.XNOR:
                on, zr = zr, on
            return [f"{on_t} = {on}", f"{zr_t} = {zr}"]
        lines = [f"_xa = {on}", f"_xb = {zr}"]
        for on_s, zr_s in srcs[2:]:
            lines.append(
                f"_xa, _xb = (_xa & {zr_s}) | (_xb & {on_s}), "
                f"(_xa & {on_s}) | (_xb & {zr_s})"
            )
        if kind is GateKind.XNOR:
            return lines + [f"{on_t} = _xb", f"{zr_t} = _xa"]
        return lines + [f"{on_t} = _xa", f"{zr_t} = _xb"]
    if kind is GateKind.BUF:
        return [f"{on_t} = {srcs[0][0]}", f"{zr_t} = {srcs[0][1]}"]
    if kind is GateKind.NOT:
        return [f"{on_t} = {srcs[0][1]}", f"{zr_t} = {srcs[0][0]}"]
    if kind is GateKind.MUX:
        (a1, a0), (b1, b0), (s1, s0) = srcs
        return [
            f"{on_t} = ({s0} & {a1}) | ({s1} & {b1})",
            f"{zr_t} = ({s0} & {a0}) | ({s1} & {b0})",
        ]
    if kind is GateKind.CONST0:
        return [f"{on_t} = 0", f"{zr_t} = m"]
    if kind is GateKind.CONST1:
        return [f"{on_t} = m", f"{zr_t} = 0"]
    raise SimulationError(f"cannot compile gate kind {kind}")


#: Gate kinds whose operand order cannot change the value -- their CSE
#: keys are operand-sorted so reordered duplicate gates still collapse.
_COMMUTATIVE = frozenset(
    (
        GateKind.AND,
        GateKind.NAND,
        GateKind.OR,
        GateKind.NOR,
        GateKind.XOR,
        GateKind.XNOR,
    )
)


def emit_packed_source(program: SlotProgram, variant: str) -> str:
    """Render a locals-style full-pass word kernel for ``variant``.

    Only the six ``full*`` variants exist in packed form; the cone-guarded
    variants are served by the compiled kernels (see
    :meth:`PackedKernels.fn`).

    The plain (override-free) variants are pure dataflow, so the emitter
    optimizes: duplicate gates collapse onto one local through a name map,
    BUF/CONST (and, three-valued, NOT -- a plane swap) cost nothing, and
    MUX select inverses are hoisted into shared locals.  The override
    variants skip all of this -- any gate slot can be individually forced,
    so every slot needs its own assignment.
    """
    three, guarded, stems, pins = VARIANTS[variant]
    if guarded:
        raise SimulationError(
            f"variant {variant!r} is cone-guarded; packed codegen only "
            "emits full-pass kernels"
        )
    stride = program.stride
    ni = program.n_inputs
    ns = program.n_slots
    name = "p" + variant
    if three:
        args = ["vo", "vz", "m"]
        if stems:
            args += ["so", "sz"]
        if pins:
            args += ["po", "pz"]
    else:
        args = ["v", "m"]
        if stems:
            args.append("st")
        if pins:
            args.append("pp")
    lines = [f"def {name}({', '.join(args)}):"]
    if three:
        if ni:
            lines.append(
                "    (" + ", ".join(f"_o{i}" for i in range(ni)) + ",) = vo"
            )
            lines.append(
                "    (" + ", ".join(f"_z{i}" for i in range(ni)) + ",) = vz"
            )
        if not stems and not pins:
            nm3 = {i: (f"_o{i}", f"_z{i}") for i in range(ni)}
            seen3: dict = {}
            for k, kind, srcs in program.ops:
                ops3 = [nm3[src] for src in srcs]
                if kind is GateKind.BUF:
                    nm3[k] = ops3[0]
                    continue
                if kind is GateKind.NOT:
                    nm3[k] = (ops3[0][1], ops3[0][0])
                    continue
                if kind is GateKind.CONST0:
                    nm3[k] = ("0", "m")
                    continue
                if kind is GateKind.CONST1:
                    nm3[k] = ("m", "0")
                    continue
                key = (kind,) + tuple(
                    sorted(ops3) if kind in _COMMUTATIVE else ops3
                )
                prev = seen3.get(key)
                if prev is not None:
                    nm3[k] = prev
                    continue
                body = _locals3(kind, ops3, k)
                nm3[k] = seen3[key] = (f"_o{k}", f"_z{k}")
                lines.extend("    " + line for line in body)
            if ns:
                ons = ", ".join(nm3[i][0] for i in range(ns))
                zrs = ", ".join(nm3[i][1] for i in range(ns))
                lines.append(f"    return ({ons},), ({zrs},)")
            else:
                lines.append("    return (), ()")
            return "\n".join(lines) + "\n"
        for k, kind, srcs in program.ops:
            if pins:
                operands = [
                    (
                        f"po.get({k * stride + pin}, _o{src})",
                        f"pz.get({k * stride + pin}, _z{src})",
                    )
                    for pin, src in enumerate(srcs)
                ]
            else:
                operands = [(f"_o{src}", f"_z{src}") for src in srcs]
            body = _locals3(kind, operands, k)
            if stems:
                lines.append(f"    if {k} in so:")
                lines.append(f"        _o{k} = so[{k}]; _z{k} = sz[{k}]")
                lines.append("    else:")
                lines.extend("        " + line for line in body)
            else:
                lines.extend("    " + line for line in body)
        if ns:
            ons = ", ".join(f"_o{i}" for i in range(ns))
            zrs = ", ".join(f"_z{i}" for i in range(ns))
            lines.append(f"    return ({ons},), ({zrs},)")
        else:
            lines.append("    return (), ()")
    else:
        if ni:
            lines.append(
                "    (" + ", ".join(f"_{i}" for i in range(ni)) + ",) = v"
            )
        if not stems and not pins:
            nm = {i: f"_{i}" for i in range(ni)}
            seen: dict = {}
            for k, kind, srcs in program.ops:
                ops2 = [nm[src] for src in srcs]
                if kind is GateKind.BUF:
                    nm[k] = ops2[0]
                    continue
                if kind is GateKind.CONST0:
                    nm[k] = "0"
                    continue
                if kind is GateKind.CONST1:
                    nm[k] = "m"
                    continue
                if kind is GateKind.NOT:
                    # Shares the inverse pool with MUX select inverses.
                    key = ("inv", ops2[0])
                    expr = f"{ops2[0]} ^ m"
                elif kind is GateKind.MUX:
                    a, b, sel = ops2
                    nsel = seen.get(("inv", sel))
                    if nsel is None:
                        nsel = f"_n{k}"
                        seen[("inv", sel)] = nsel
                        lines.append(f"    {nsel} = {sel} ^ m")
                    # Operands are mask-confined, so ``sel ^ m`` is ``~sel``
                    # under the mask and no trailing ``& m`` is needed.
                    expr = f"({a} & {nsel}) | ({b} & {sel})"
                    key = (kind, a, b, sel)
                else:
                    expr = _expr2(kind, ops2)
                    key = (kind,) + tuple(
                        sorted(ops2) if kind in _COMMUTATIVE else ops2
                    )
                prev = seen.get(key)
                if prev is not None:
                    nm[k] = prev
                    continue
                nm[k] = seen[key] = f"_{k}"
                lines.append(f"    _{k} = {expr}")
            if ns:
                lines.append(
                    "    return (" + ", ".join(nm[i] for i in range(ns)) + ",)"
                )
            else:
                lines.append("    return ()")
            return "\n".join(lines) + "\n"
        for k, kind, srcs in program.ops:
            if pins:
                operands2 = [
                    f"pp.get({k * stride + pin}, _{src})"
                    for pin, src in enumerate(srcs)
                ]
            else:
                operands2 = [f"_{src}" for src in srcs]
            expr = _expr2(kind, operands2)
            if stems:
                lines.append(f"    _{k} = st[{k}] if {k} in st else ({expr})")
            else:
                lines.append(f"    _{k} = {expr}")
        if ns:
            lines.append(
                "    return (" + ", ".join(f"_{i}" for i in range(ns)) + ",)"
            )
        else:
            lines.append("    return ()")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Codegen: specialized straight-line cone kernels
# ---------------------------------------------------------------------------


class _ResimKernel:
    __slots__ = ("fn", "gate_slots", "outs")

    def __init__(self, fn, gate_slots, outs):
        self.fn = fn
        self.gate_slots = gate_slots
        self.outs = outs


class _XReachKernel:
    __slots__ = ("fn", "out_nets")

    def __init__(self, fn, out_nets):
        self.fn = fn
        self.out_nets = out_nets


def _emit_resim_source(
    program: SlotProgram,
    ops_by_slot: dict,
    gate_slots: tuple[int, ...],
    stems: tuple[int, ...],
    pins: tuple[int, ...],
    inputs: tuple[int, ...],
) -> str:
    """Unguarded 2-valued cone kernel for one override shape.

    ``b`` is the shared (never copied) base slot list, ``st`` maps slot ->
    override for both gate stems and input stems, ``pp`` maps pin keys.
    Sources inside the cone (or overridden inputs) read the local computed
    upstream -- ascending slot order is evaluation order -- everything else
    reads the base list directly.
    """
    stride = program.stride
    pin_set = set(pins)
    local = set(gate_slots)
    local.update(inputs)
    lines = ["def rk(b, m, st, pp):"]
    nm: dict[int, str] = {}
    for slot in inputs:
        lines.append(f"    _{slot} = st[{slot}]")
        nm[slot] = f"_{slot}"
    stem_set = set(stems)
    seen: dict = {}
    for k in gate_slots:
        if k in stem_set:
            lines.append(f"    _{k} = st[{k}]")
            nm[k] = f"_{k}"
            continue
        kind, srcs = ops_by_slot[k]
        operands = []
        for pin, src in enumerate(srcs):
            key = k * stride + pin
            if key in pin_set:
                operands.append(f"pp[{key}]")
            elif src in local:
                operands.append(nm[src])
            else:
                operands.append(f"b[{src}]")
        # Same strength reduction as the plain full-pass emitter: the
        # override shape is baked in, so non-overridden gates are pure
        # dataflow -- duplicates collapse, BUF/CONST are free renames.
        if kind is GateKind.BUF:
            nm[k] = operands[0]
            continue
        if kind is GateKind.CONST0:
            nm[k] = "0"
            continue
        if kind is GateKind.CONST1:
            nm[k] = "m"
            continue
        if kind is GateKind.NOT:
            ckey = ("inv", operands[0])
            expr = f"{operands[0]} ^ m"
        elif kind is GateKind.MUX:
            a_s, b_s, sel = operands
            nsel = seen.get(("inv", sel))
            if nsel is None:
                nsel = f"_n{k}"
                seen[("inv", sel)] = nsel
                lines.append(f"    {nsel} = {sel} ^ m")
            expr = f"({a_s} & {nsel}) | ({b_s} & {sel})"
            ckey = (kind, a_s, b_s, sel)
        else:
            expr = _expr2(kind, operands)
            ckey = (kind,) + tuple(
                sorted(operands) if kind in _COMMUTATIVE else operands
            )
        prev = seen.get(ckey)
        if prev is not None:
            nm[k] = prev
            continue
        nm[k] = seen[ckey] = f"_{k}"
        lines.append(f"    _{k} = {expr}")
    if gate_slots:
        lines.append(
            "    return (" + ", ".join(nm[k] for k in gate_slots) + ",)"
        )
    else:
        lines.append("    return ()")
    return "\n".join(lines) + "\n"


def _emit_xreach_source(
    program: SlotProgram,
    ops_by_slot: dict,
    gate_slots: tuple[int, ...],
    cone_set: frozenset,
    entry_slot: int,
    pin_key: int | None,
    out_slots: tuple[int, ...],
) -> str:
    """Unguarded 3-valued X-injection kernel for one (cone, entry) pair.

    Frontier nets (cone sources outside the cone) are lifted from the
    binary base list at first use; the injected entry is baked in as the
    all-X constant ``(m, m)``.
    """
    stride = program.stride
    lines = ["def xk(bo, bz, m):"]
    nm: dict[int, tuple[str, str]] = {}
    if pin_key is None:
        nm[entry_slot] = ("m", "m")  # all-X injection, baked as literals
    seen: dict = {}
    for k in gate_slots:
        if pin_key is None and k == entry_slot:
            continue
        kind, srcs = ops_by_slot[k]
        operands = []
        for pin, src in enumerate(srcs):
            if pin_key is not None and k * stride + pin == pin_key:
                operands.append(("m", "m"))
                continue
            pair = nm.get(src)
            if pair is None:
                # Frontier net (cone gates are always computed upstream --
                # ascending slot order): read the pre-lifted base planes.
                pair = nm[src] = (f"bo[{src}]", f"bz[{src}]")
            operands.append(pair)
        # Plane-level strength reduction: NOT is a plane swap, BUF/CONST
        # are renames, duplicate gates collapse onto one plane pair.
        if kind is GateKind.BUF:
            nm[k] = operands[0]
            continue
        if kind is GateKind.NOT:
            nm[k] = (operands[0][1], operands[0][0])
            continue
        if kind is GateKind.CONST0:
            nm[k] = ("0", "m")
            continue
        if kind is GateKind.CONST1:
            nm[k] = ("m", "0")
            continue
        ckey = (kind,) + tuple(
            sorted(operands) if kind in _COMMUTATIVE else operands
        )
        prev = seen.get(ckey)
        if prev is not None:
            nm[k] = prev
            continue
        lines.extend("    " + line for line in _locals3(kind, operands, k))
        nm[k] = seen[ckey] = (f"_o{k}", f"_z{k}")
    if out_slots:
        lines.append(
            "    return ("
            + ", ".join(f"{nm[s][0]} & {nm[s][1]}" for s in out_slots)
            + ",)"
        )
    else:
        lines.append("    return ()")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Kernel sets
# ---------------------------------------------------------------------------


class PackedKernels:
    """Packed kernel set for one netlist, layered over the compiled one.

    - ``fn(variant)`` serves the full-pass variants as locals-style word
      kernels and transparently delegates the four cone-guarded names to
      the compiled :class:`~repro.sim.compile.KernelSet` (the packed
      drivers call those per word), covering the full variant matrix.
    - Specialized cone kernels are generated per override *shape* once a
      cone has recurred :data:`_SPECIALIZE_AFTER` times; below the
      threshold the resim/X-reach drivers return ``None`` and the caller
      falls through to the guarded compiled path.
    """

    __slots__ = ("program", "kernels", "_fns", "_special", "_uses", "_ops")

    def __init__(self, kernels: KernelSet):
        self.program = kernels.program
        self.kernels = kernels
        self._fns: dict[str, object] = {}
        self._special: dict[tuple, object] = {}
        self._uses: dict[frozenset, int] = {}
        self._ops: dict[int, tuple] | None = None

    def fn(self, variant: str):
        if VARIANTS[variant][1]:
            return self.kernels.fn(variant)
        func = self._fns.get(variant)
        if func is None:
            name = "p" + variant
            source = emit_packed_source(self.program, variant)
            namespace: dict[str, object] = {}
            code = compile(
                source,
                f"<packed:{self.program.fingerprint}:{variant}>",
                "exec",
            )
            exec(code, namespace)
            func = self._fns[variant] = namespace[name]
            COUNTERS.kernel_compiles += 1
            trace_event("sim.kernel_compile", variant=name)
            record_kernel_compile(name)
        return func

    # -- specialization machinery -----------------------------------------

    def _ops_by_slot(self) -> dict[int, tuple]:
        ops = self._ops
        if ops is None:
            ops = self._ops = {
                k: (kind, srcs) for k, kind, srcs in self.program.ops
            }
        return ops

    def _cone_hot(self, cone: frozenset) -> bool:
        """Count a use of ``cone``; True once specialization amortizes."""
        uses = self._uses
        count = uses.get(cone, 0) + 1
        if count == 1 and len(uses) >= _CONE_USE_LIMIT:
            uses.clear()
        uses[cone] = count
        return count >= _SPECIALIZE_AFTER

    def _store(self, key: tuple, entry):
        if len(self._special) >= _SPECIAL_KERNEL_LIMIT:
            self._special.clear()
        self._special[key] = entry
        return entry

    def _compile_special(self, source: str, tag: str, name: str):
        namespace: dict[str, object] = {}
        code = compile(
            source, f"<packed:{self.program.fingerprint}:{tag}>", "exec"
        )
        exec(code, namespace)
        COUNTERS.kernel_compiles += 1
        trace_event("sim.packed_specialize", kind=tag)
        record_kernel_compile(f"packed_{name}")
        return namespace[name]

    def resim_special(
        self,
        cone: frozenset,
        stems: tuple[int, ...],
        pins: tuple[int, ...],
        inputs: tuple[int, ...],
    ) -> _ResimKernel | None:
        """Specialized cone resim kernel for one override shape, or ``None``
        below the specialization threshold / above the size cap."""
        key = ("r", cone, stems, pins, inputs)
        entry = self._special.get(key)
        if entry is not None:
            return entry if entry is not False else None
        if not self._cone_hot(cone):
            return None
        cone_set, gate_slots = self.kernels.cone_slots(cone)
        if len(gate_slots) > _MAX_SPECIAL_GATES:
            self._store(key, False)
            return None
        source = _emit_resim_source(
            self.program, self._ops_by_slot(), gate_slots, stems, pins, inputs
        )
        fn = self._compile_special(source, "resim", "rk")
        gate_pos = {slot: pos for pos, slot in enumerate(gate_slots)}
        input_set = set(inputs)
        net_order = self.program.net_order
        outs = []
        for slot in self.program.out_slots:
            pos = gate_pos.get(slot)
            if pos is not None:
                outs.append((net_order[slot], slot, pos))
            elif slot in input_set:
                outs.append((net_order[slot], slot, None))
        return self._store(
            key, _ResimKernel(fn, gate_slots, tuple(outs))
        )

    def xreach_special(
        self, cone: frozenset, entry_slot: int, pin_key: int | None
    ) -> _XReachKernel | None:
        """Specialized X-injection kernel for ``(cone, entry)``, or ``None``
        below the specialization threshold / above the size cap."""
        key = ("x", cone, entry_slot, pin_key)
        entry = self._special.get(key)
        if entry is not None:
            return entry if entry is not False else None
        if not self._cone_hot(cone):
            return None
        cone_set, gate_slots = self.kernels.cone_slots(cone)
        if len(gate_slots) > _MAX_SPECIAL_GATES:
            self._store(key, False)
            return None
        out_slots = tuple(
            slot
            for slot in self.program.out_slots
            if slot in cone_set or slot == entry_slot
        )
        source = _emit_xreach_source(
            self.program,
            self._ops_by_slot(),
            gate_slots,
            cone_set,
            entry_slot,
            pin_key,
            out_slots,
        )
        fn = self._compile_special(source, "xreach", "xk")
        net_order = self.program.net_order
        out_nets = tuple(net_order[slot] for slot in out_slots)
        return self._store(key, _XReachKernel(fn, out_nets))


# ---------------------------------------------------------------------------
# Packed kernel cache + backend gate
# ---------------------------------------------------------------------------

_PACKED: dict[str, PackedKernels] = {}

#: Netlist fingerprints whose size downgrade has already been traced.
_DOWNGRADED: set[str] = set()


def packed_kernels_for(netlist: Netlist) -> PackedKernels:
    """The (cached) packed kernel set for ``netlist``.

    Layered on :func:`repro.sim.compile.kernels_for`: the identity check on
    the wrapped compiled set ties invalidation to the compiled cache's
    generation, so a kernel-cache reset transparently rebuilds the packed
    set too.
    """
    kernels = kernels_for(netlist)
    cached = getattr(netlist, "_packed_set", None)
    if cached is not None and cached.kernels is kernels:
        return cached
    fp = kernels.program.fingerprint
    packed = _PACKED.get(fp)
    if packed is None or packed.kernels is not kernels:
        if len(_PACKED) >= _PACKED_CACHE_LIMIT:
            _PACKED.clear()
        packed = _PACKED[fp] = PackedKernels(kernels)
    netlist._packed_set = packed
    return packed


def active_packed(netlist: Netlist) -> PackedKernels | None:
    """Packed kernels when the packed backend should handle ``netlist``.

    ``None`` means another backend is selected *or* the netlist exceeds
    :data:`MAX_PACKED_GATES` -- in the latter case the engines fall back to
    the compiled kernels (which :func:`~repro.sim.compile.active_kernels`
    still serves under ``REPRO_SIM=packed``), and past
    :data:`~repro.sim.compile.MAX_COMPILED_GATES` to the interpreter.  The
    downgrade is traced once per netlist fingerprint.
    """
    if backend() != "packed":
        return None
    if netlist.n_gates > MAX_PACKED_GATES:
        fp = netlist.fingerprint()
        if fp not in _DOWNGRADED:
            _DOWNGRADED.add(fp)
            fallback = (
                "compiled"
                if netlist.n_gates <= MAX_COMPILED_GATES
                else "interp"
            )
            trace_event(
                "sim.packed_downgrade",
                circuit=netlist.name,
                n_gates=netlist.n_gates,
                fallback=fallback,
            )
        return None
    return packed_kernels_for(netlist)


def reset_packed_cache() -> None:
    """Drop every packed kernel set (testing / benchmarking hook)."""
    _PACKED.clear()
    _DOWNGRADED.clear()


# ---------------------------------------------------------------------------
# Full-pass drivers
# ---------------------------------------------------------------------------


def packed_simulate(
    packed: PackedKernels,
    netlist: Netlist,
    patterns: PatternSet,
    stem_over: dict[str, int],
    pin_over: dict[tuple[str, int], int],
    mask: int,
) -> PackedValues:
    """Word-wise 2-valued full pass; result dict identical to the other
    backends (a :class:`PackedValues`, so it is also a ``SlotValues``)."""
    program = packed.program
    pw = packed_patterns(patterns)
    masks = pw.masks
    n_words = pw.n_words
    COUNTERS.packed_words += n_words
    gates = netlist.gates
    slot_of = program.slot_of
    bits = patterns.bits
    st = {
        slot_of[net]: value
        for net, value in stem_over.items()
        if net in gates
    }
    pp: dict[int, int] | None = None
    if pin_over:
        stride = program.stride
        pp = {
            slot_of[gate] * stride + pin: value
            for (gate, pin), value in pin_over.items()
        }
        fn = packed.fn("full2_sp")
    elif st:
        fn = packed.fn("full2_s")
    else:
        fn = packed.fn("full2")

    word_results: list[tuple[int, ...]] = []
    for w, wmask in enumerate(masks):
        if stem_over:
            shift = WORD * w
            vin = tuple(
                (stem_over.get(net, bits[net]) >> shift) & wmask
                for net in netlist.inputs
            )
        else:
            vin = pw.in_words[w]
        if pp is not None:
            if n_words == 1:
                st_w, pp_w = st, pp
            else:
                shift = WORD * w
                st_w = {k: (v >> shift) & wmask for k, v in st.items()}
                pp_w = {k: (v >> shift) & wmask for k, v in pp.items()}
            word_results.append(fn(vin, wmask, st_w, pp_w))
        elif st:
            if n_words == 1:
                st_w = st
            else:
                shift = WORD * w
                st_w = {k: (v >> shift) & wmask for k, v in st.items()}
            word_results.append(fn(vin, wmask, st_w))
        else:
            word_results.append(fn(vin, wmask))

    if n_words == 1:
        slots = list(word_results[0])
    else:
        slots = [
            join_words([word_results[w][s] for w in range(n_words)])
            for s in range(program.n_slots)
        ]
    return _make_packed_values(program, slots, mask, word_results, masks)


def packed_simulate3(
    packed: PackedKernels,
    netlist: Netlist,
    patterns: PatternSet,
    stem_over: dict[str, TV],
    pin_over: dict[tuple[str, int], TV],
    mask: int,
) -> dict[str, TV]:
    """Word-wise 3-valued full pass; same dict contents and iteration order
    as the compiled and interpreted paths (overridden stems return the
    caller's original vectors verbatim)."""
    program = packed.program
    pw = packed_patterns(patterns)
    masks = pw.masks
    n_words = pw.n_words
    COUNTERS.packed_words += n_words
    gates = netlist.gates
    slot_of = program.slot_of
    bits = patterns.bits
    inputs = netlist.inputs
    so: dict[int, TV] = {}
    for net, tv in stem_over.items():
        if net in gates:
            so[slot_of[net]] = tv
    po: dict[int, TV] | None = None
    if pin_over:
        stride = program.stride
        po = {
            slot_of[gate] * stride + pin: tv
            for (gate, pin), tv in pin_over.items()
        }
        fn = packed.fn("full3_sp")
    elif so:
        fn = packed.fn("full3_s")
    else:
        fn = packed.fn("full3")

    input_over = any(net not in gates for net in stem_over)
    word_results: list[tuple[tuple[int, ...], tuple[int, ...]]] = []
    lifted = pw.lifted
    for w, wmask in enumerate(masks):
        shift = WORD * w
        if input_over:
            vo_l, vz_l = [], []
            for net in inputs:
                tv = stem_over.get(net)
                if tv is None:
                    b = (bits[net] >> shift) & wmask
                    vo_l.append(b)
                    vz_l.append(b ^ wmask)
                else:
                    vo_l.append((tv[0] >> shift) & wmask)
                    vz_l.append((tv[1] >> shift) & wmask)
            vo, vz = tuple(vo_l), tuple(vz_l)
        else:
            vo, vz = lifted[w]
        if po is not None:
            so_w = {k: (tv[0] >> shift) & wmask for k, tv in so.items()}
            sz_w = {k: (tv[1] >> shift) & wmask for k, tv in so.items()}
            po_w = {k: (tv[0] >> shift) & wmask for k, tv in po.items()}
            pz_w = {k: (tv[1] >> shift) & wmask for k, tv in po.items()}
            word_results.append(fn(vo, vz, wmask, so_w, sz_w, po_w, pz_w))
        elif so:
            so_w = {k: (tv[0] >> shift) & wmask for k, tv in so.items()}
            sz_w = {k: (tv[1] >> shift) & wmask for k, tv in so.items()}
            word_results.append(fn(vo, vz, wmask, so_w, sz_w))
        else:
            word_results.append(fn(vo, vz, wmask))

    values: dict[str, TV] = {}
    if n_words == 1:
        ones, zeros = word_results[0]
        for slot, net in enumerate(program.net_order):
            values[net] = (ones[slot], zeros[slot])
    else:
        for slot, net in enumerate(program.net_order):
            values[net] = (
                join_words([word_results[w][0][slot] for w in range(n_words)]),
                join_words([word_results[w][1][slot] for w in range(n_words)]),
            )
    # Overridden nets return the caller's original (possibly unmasked)
    # vectors, as the other backends do.
    for net, tv in stem_over.items():
        values[net] = tv
    return values


# ---------------------------------------------------------------------------
# Cone-pass drivers (specialized kernels over full-width packed ints)
# ---------------------------------------------------------------------------


def resim_changed_special(
    packed: PackedKernels,
    base: list,
    st: dict[int, int],
    pp: dict[int, int],
    input_slots: list[int],
    cone: frozenset,
    mask: int,
) -> dict[str, int] | None:
    """Sparse changed-net map via a specialized cone kernel.

    ``st`` carries both gate-stem and input-stem overrides keyed by slot;
    ``input_slots`` must be ascending.  Returns ``None`` when the cone is
    not specialized (yet), leaving the guarded compiled path to serve the
    call with identical results.
    """
    n_inputs = packed.program.n_inputs
    stems = tuple(s for s in sorted(st) if s >= n_inputs)
    entry = packed.resim_special(
        cone, stems, tuple(sorted(pp)), tuple(input_slots)
    )
    if entry is None:
        return None
    COUNTERS.packed_words += _mask_words(mask)
    result = entry.fn(base, mask, st, pp)
    changed: dict[str, int] = {}
    net_order = packed.program.net_order
    for slot in input_slots:
        value = st[slot]
        if value != base[slot]:
            changed[net_order[slot]] = value
    for value, slot in zip(result, entry.gate_slots):
        if value != base[slot]:
            changed[net_order[slot]] = value
    return changed


def resim_diff_special(
    packed: PackedKernels,
    base: list,
    st: dict[int, int],
    pp: dict[int, int],
    input_slots: list[int],
    cone: frozenset,
    mask: int,
) -> dict[str, int] | None:
    """Per-output delta vectors via a specialized cone kernel (or ``None``
    when unspecialized; see :func:`resim_changed_special`)."""
    n_inputs = packed.program.n_inputs
    stems = tuple(s for s in sorted(st) if s >= n_inputs)
    entry = packed.resim_special(
        cone, stems, tuple(sorted(pp)), tuple(input_slots)
    )
    if entry is None:
        return None
    COUNTERS.packed_words += _mask_words(mask)
    result = entry.fn(base, mask, st, pp)
    diff: dict[str, int] = {}
    for net, slot, pos in entry.outs:
        value = result[pos] if pos is not None else st[slot]
        delta = value ^ base[slot]
        if delta:
            diff[net] = delta
    return diff


def x_reach_special(
    packed: PackedKernels,
    netlist: Netlist,
    base_values: Mapping[str, int],
    cone: frozenset,
    entry_net: str,
    pin_target: tuple[str, int] | None,
    mask: int,
) -> dict[str, int] | None:
    """Per-output X reach via a specialized injection kernel (or ``None``
    when the (cone, entry) pair is not specialized)."""
    program = packed.program
    entry_slot = program.slot_of[entry_net]
    pin_key = (
        None
        if pin_target is None
        else entry_slot * program.stride + pin_target[1]
    )
    entry = packed.xreach_special(cone, entry_slot, pin_key)
    if entry is None:
        return None
    # Cached on SlotValues instances, so warm calls pay two list reads per
    # frontier net instead of a lift.
    base_on, base_zr = lifted_base(program, base_values, mask)
    COUNTERS.packed_words += _mask_words(mask)
    result = entry.fn(base_on, base_zr, mask)
    reach: dict[str, int] = {}
    for net, xm in zip(entry.out_nets, result):
        if xm:
            reach[net] = xm
    # A primary output that *is* the injected stem is trivially corrupted.
    if pin_target is None and entry_net in netlist.outputs:
        reach[entry_net] = mask
    return reach
