"""Bit-packed test pattern sets.

A :class:`PatternSet` stores, for each primary input, one arbitrary-size
integer whose bit *i* is that input's value under pattern *i*.  All
simulators in the package operate directly on this packed form, so a single
pass over the netlist evaluates the complete test set.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Mapping, Sequence

from repro._rng import make_rng
from repro.circuit.netlist import Netlist
from repro.errors import SimulationError


class PatternSet:
    """An ordered set of input assignments for a fixed input list."""

    def __init__(self, inputs: Sequence[str], n: int, bits: Mapping[str, int]):
        self.inputs: tuple[str, ...] = tuple(inputs)
        self.n = int(n)
        if self.n < 0:
            raise SimulationError("pattern count must be non-negative")
        self.mask = (1 << self.n) - 1
        self.bits: dict[str, int] = {}
        for name in self.inputs:
            value = bits.get(name, 0)
            if value < 0 or value > self.mask:
                raise SimulationError(
                    f"input {name!r}: bit vector {value:#x} exceeds {self.n} patterns"
                )
            self.bits[name] = value
        extra = set(bits) - set(self.inputs)
        if extra:
            raise SimulationError(f"bit vectors for unknown inputs: {sorted(extra)}")
        self._fingerprint: str | None = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_vectors(
        cls, inputs: Sequence[str], vectors: Iterable[Mapping[str, int] | Sequence[int]]
    ) -> "PatternSet":
        """Build from per-pattern assignments (mappings or ordered tuples)."""
        inputs = tuple(inputs)
        bits = {name: 0 for name in inputs}
        n = 0
        for vec in vectors:
            if isinstance(vec, Mapping):
                row = [vec[name] for name in inputs]
            else:
                if len(vec) != len(inputs):
                    raise SimulationError(
                        f"vector has {len(vec)} values for {len(inputs)} inputs"
                    )
                row = list(vec)
            for name, value in zip(inputs, row):
                if value not in (0, 1):
                    raise SimulationError(f"input {name!r}: non-binary value {value!r}")
                bits[name] |= value << n
            n += 1
        return cls(inputs, n, bits)

    @classmethod
    def random(
        cls,
        netlist_or_inputs: Netlist | Sequence[str],
        n: int,
        seed: int | random.Random | None = None,
    ) -> "PatternSet":
        """``n`` uniformly random patterns."""
        inputs = _input_list(netlist_or_inputs)
        rng = make_rng(seed)
        mask = (1 << n) - 1
        bits = {name: rng.getrandbits(n) & mask if n else 0 for name in inputs}
        return cls(inputs, n, bits)

    @classmethod
    def exhaustive(cls, netlist_or_inputs: Netlist | Sequence[str]) -> "PatternSet":
        """All ``2**k`` input combinations (counter order)."""
        inputs = _input_list(netlist_or_inputs)
        k = len(inputs)
        if k > 22:
            raise SimulationError(f"refusing exhaustive set for {k} inputs")
        n = 1 << k
        bits: dict[str, int] = {}
        for idx, name in enumerate(inputs):
            # Input idx toggles with period 2**(idx+1): blocks of 2**idx ones.
            vec = 0
            period = 1 << (idx + 1)
            ones = (1 << (1 << idx)) - 1
            for base in range(1 << idx, n, period):
                vec |= ones << base
            bits[name] = vec
        return cls(inputs, n, bits)

    # -- accessors -----------------------------------------------------------

    def pattern(self, i: int) -> dict[str, int]:
        """Pattern *i* as an input->value mapping."""
        if not 0 <= i < self.n:
            raise IndexError(f"pattern index {i} out of range 0..{self.n - 1}")
        return {name: (self.bits[name] >> i) & 1 for name in self.inputs}

    def as_tuple(self, i: int) -> tuple[int, ...]:
        if not 0 <= i < self.n:
            raise IndexError(f"pattern index {i} out of range 0..{self.n - 1}")
        return tuple((self.bits[name] >> i) & 1 for name in self.inputs)

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[dict[str, int]]:
        return (self.pattern(i) for i in range(self.n))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PatternSet):
            return NotImplemented
        return (
            self.inputs == other.inputs and self.n == other.n and self.bits == other.bits
        )

    def __repr__(self) -> str:
        return f"PatternSet({len(self.inputs)} inputs, {self.n} patterns)"

    def fingerprint(self) -> str:
        """Stable content digest over inputs, count and every bit vector.

        Two pattern sets of equal length but different content hash
        differently, so caches keyed by fingerprint never collide the way
        ``(name, n)`` keys can.
        """
        if self._fingerprint is None:
            import hashlib

            h = hashlib.sha256()
            h.update(repr((self.inputs, self.n)).encode())
            for name in self.inputs:
                h.update(self.bits[name].to_bytes((self.n + 7) // 8 or 1, "little"))
            self._fingerprint = h.hexdigest()[:16]
        return self._fingerprint

    # -- manipulation ----------------------------------------------------------

    def subset(self, indices: Sequence[int]) -> "PatternSet":
        """A new set containing ``indices`` in the given order."""
        bits = {name: 0 for name in self.inputs}
        for new_i, old_i in enumerate(indices):
            if not 0 <= old_i < self.n:
                raise IndexError(f"pattern index {old_i} out of range")
            for name in self.inputs:
                bits[name] |= ((self.bits[name] >> old_i) & 1) << new_i
        return PatternSet(self.inputs, len(indices), bits)

    def concat(self, other: "PatternSet") -> "PatternSet":
        if self.inputs != other.inputs:
            raise SimulationError("cannot concat pattern sets with different inputs")
        bits = {
            name: self.bits[name] | (other.bits[name] << self.n) for name in self.inputs
        }
        return PatternSet(self.inputs, self.n + other.n, bits)

    def dedup(self) -> "PatternSet":
        """Remove repeated patterns, keeping first occurrences in order."""
        seen: set[tuple[int, ...]] = set()
        keep: list[int] = []
        for i in range(self.n):
            row = self.as_tuple(i)
            if row not in seen:
                seen.add(row)
                keep.append(i)
        return self.subset(keep)


def _input_list(netlist_or_inputs: Netlist | Sequence[str]) -> tuple[str, ...]:
    if isinstance(netlist_or_inputs, Netlist):
        return netlist_or_inputs.inputs
    return tuple(netlist_or_inputs)
