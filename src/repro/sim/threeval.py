"""Three-valued (0/1/X) bit-parallel simulation and X injection.

This module is the analytical engine behind the assumption-free diagnosis:
forcing ``X`` at a candidate defect site and three-valued-simulating
over-approximates *every* possible faulty behavior at that site (stuck-at,
bridge, delayed, intermittent, byzantine...).  An output that stays binary
under the X injection provably cannot be corrupted by any defect at that
site for that pattern -- the pruning theorem the candidate envelope rests
on.

The compiled backend stores the ``(ones, zeros)`` planes in two flat slot
arrays.  Override vectors are confined to the pattern mask before being
handed to the kernels (the interpreted walk instead re-masks at every
downstream gate -- the resulting values are identical because every gate
evaluation masks its output); the returned dict still carries the caller's
original override objects, exactly like the interpreted path.
"""

from __future__ import annotations

from typing import Mapping

from repro.circuit.gates import TV, eval3, tv_all_x, tv_const, tv_xmask
from repro.circuit.netlist import Netlist, Site
from repro.errors import SimulationError
from repro.sim.compile import COUNTERS, active_kernels, lifted_base
from repro.sim.logicsim import simulate
from repro.sim.packed import active_packed, packed_simulate3, x_reach_special
from repro.sim.patterns import PatternSet


def simulate3(
    netlist: Netlist,
    patterns: PatternSet,
    overrides: Mapping[Site, TV] | None = None,
) -> dict[str, TV]:
    """Full three-valued simulation with site overrides.

    Each override replaces a stem or branch value with an arbitrary
    three-valued vector ``(ones, zeros)``; binary input patterns are lifted
    automatically.  Returns the three-valued value of every net.
    """
    if tuple(patterns.inputs) != netlist.inputs:
        raise SimulationError("pattern inputs do not match circuit inputs")
    mask = patterns.mask
    stem_over: dict[str, TV] = {}
    pin_over: dict[tuple[str, int], TV] = {}
    for site, value in (overrides or {}).items():
        netlist.validate_site(site)
        if site.is_stem:
            stem_over[site.net] = value
        else:
            pin_over[site.branch] = value
    COUNTERS.full3_passes += 1
    COUNTERS.gate_evals += netlist.n_gates

    kernels = active_kernels(netlist)
    if kernels is None:
        return _simulate3_interp(netlist, patterns, stem_over, pin_over, mask)
    packed = active_packed(netlist)
    if packed is not None:
        return packed_simulate3(
            packed, netlist, patterns, stem_over, pin_over, mask
        )

    program = kernels.program
    bits = patterns.bits
    ones = [0] * program.n_slots
    zeros = [0] * program.n_slots
    for slot, net in enumerate(netlist.inputs):
        tv = stem_over.get(net)
        if tv is None:
            b = bits[net] & mask
            ones[slot] = b
            zeros[slot] = b ^ mask
        else:
            ones[slot] = tv[0] & mask
            zeros[slot] = tv[1] & mask
    gates = netlist.gates
    slot_of = program.slot_of
    so: dict[int, int] = {}
    sz: dict[int, int] = {}
    for net, tv in stem_over.items():
        if net in gates:
            slot = slot_of[net]
            so[slot] = tv[0] & mask
            sz[slot] = tv[1] & mask
    if pin_over:
        stride = program.stride
        po: dict[int, int] = {}
        pz: dict[int, int] = {}
        for (gate, pin), tv in pin_over.items():
            key = slot_of[gate] * stride + pin
            po[key] = tv[0] & mask
            pz[key] = tv[1] & mask
        kernels.fn("full3_sp")(ones, zeros, mask, so, sz, po, pz)
    elif so:
        kernels.fn("full3_s")(ones, zeros, mask, so, sz)
    else:
        kernels.fn("full3")(ones, zeros, mask)

    values: dict[str, TV] = {}
    for slot, net in enumerate(program.net_order):
        values[net] = (ones[slot], zeros[slot])
    # Overridden nets return the caller's original (possibly unmasked)
    # vectors, as the interpreted walk does.
    for net, tv in stem_over.items():
        values[net] = tv
    return values


def _simulate3_interp(
    netlist: Netlist,
    patterns: PatternSet,
    stem_over: dict[str, TV],
    pin_over: dict[tuple[str, int], TV],
    mask: int,
) -> dict[str, TV]:
    """Interpreted reference walk (differential oracle for the kernels)."""
    values: dict[str, TV] = {}
    for net in netlist.inputs:
        values[net] = stem_over.get(net, tv_const(patterns.bits[net], mask))
    for net in netlist.topo_order:
        gate = netlist.gates[net]
        ins = [
            pin_over.get((net, pin), values[src])
            for pin, src in enumerate(gate.inputs)
        ]
        out = eval3(gate.kind, ins, mask)
        values[net] = stem_over.get(net, out)
    return values


def x_injection_reach(
    netlist: Netlist,
    patterns: PatternSet,
    site: Site,
    base_values: Mapping[str, int] | None = None,
) -> dict[str, int]:
    """Per-output X reach of forcing ``X`` at ``site`` for every pattern.

    Returns ``{output net: bit vector}`` where bit *i* set means "a defect
    at ``site`` may corrupt this output under pattern *i*".  Only outputs
    with a non-zero vector are present.

    The simulation is restricted to the fanout cone of the injection point;
    everything outside the cone provably keeps its fault-free binary value
    (X-monotonicity), so ``base_values`` (from a prior fault-free
    :func:`~repro.sim.logicsim.simulate`) supplies those directly.  This
    cone restriction is what makes per-site X analysis cheap enough to run
    for every candidate site of every failing pattern.
    """
    netlist.validate_site(site)
    if base_values is None:
        base_values = simulate(netlist, patterns)
    mask = patterns.mask

    if site.is_stem:
        cone = netlist.fanout_cone([site.net])
        entry_net = site.net
        pin_target: tuple[str, int] | None = None
    else:
        gate_name, pin = site.branch
        cone = netlist.fanout_cone([gate_name])
        entry_net = gate_name
        pin_target = (gate_name, pin)
    COUNTERS.cone3_passes += 1
    COUNTERS.gate_evals += len(cone)

    kernels = active_kernels(netlist)
    if kernels is None:
        return _x_reach_interp(
            netlist, base_values, cone, entry_net, pin_target, mask
        )
    packed = active_packed(netlist)
    if packed is not None:
        reach = x_reach_special(
            packed, netlist, base_values, cone, entry_net, pin_target, mask
        )
        if reach is not None:
            return reach

    program = kernels.program
    base_on, base_zr = lifted_base(program, base_values, mask)
    ones = base_on.copy()
    zeros = base_zr.copy()
    cone_set, _ = kernels.cone_slots(cone)
    slot_of = program.slot_of
    so: dict[int, int] = {}
    sz: dict[int, int] = {}
    if pin_target is None:
        slot = slot_of[entry_net]
        if slot < program.n_inputs:
            ones[slot] = mask
            zeros[slot] = mask
        else:
            so[slot] = mask
            sz[slot] = mask
        kernels.fn("cone3_s")(ones, zeros, mask, cone_set, so, sz)
    else:
        key = slot_of[entry_net] * program.stride + pin_target[1]
        kernels.fn("cone3_sp")(
            ones, zeros, mask, cone_set, so, sz, {key: mask}, {key: mask}
        )

    reach: dict[str, int] = {}
    for out_net in netlist.outputs:
        slot = slot_of[out_net]
        xm = ones[slot] & zeros[slot]
        if xm:
            reach[out_net] = xm
    # A primary output that *is* the injected stem is trivially corrupted.
    if pin_target is None and entry_net in netlist.outputs:
        reach[entry_net] = mask
    return reach


def _x_reach_interp(
    netlist: Netlist,
    base_values: Mapping[str, int],
    cone: frozenset[str],
    entry_net: str,
    pin_target: tuple[str, int] | None,
    mask: int,
) -> dict[str, int]:
    """Interpreted reference walk (differential oracle for the kernels)."""
    all_x = tv_all_x(mask)
    values3: dict[str, TV] = {}

    def read(net: str) -> TV:
        tv = values3.get(net)
        if tv is None:
            tv = tv_const(base_values[net], mask)
        return tv

    if pin_target is None and netlist.is_input(entry_net):
        values3[entry_net] = all_x

    for net in netlist.topo_order:
        if net not in cone:
            continue
        if pin_target is None and net == entry_net:
            values3[net] = all_x
            continue
        gate = netlist.gates[net]
        ins = [
            all_x if pin_target == (net, pin_idx) else read(src)
            for pin_idx, src in enumerate(gate.inputs)
        ]
        values3[net] = eval3(gate.kind, ins, mask)

    reach: dict[str, int] = {}
    for out_net in netlist.outputs:
        tv = values3.get(out_net)
        if tv is None:
            continue
        xm = tv_xmask(tv) & mask
        if xm:
            reach[out_net] = xm
    # A primary output that *is* the injected stem is trivially corrupted.
    if pin_target is None and entry_net in netlist.outputs:
        reach[entry_net] = mask
    return reach
