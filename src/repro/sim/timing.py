"""Unit-delay timing analysis and small-delay defect capture.

Two layers:

**Static timing** -- every gate costs one unit delay; :func:`arrival_times`
is the longest input-to-net path, :func:`propagation_depths` the longest
net-to-output path, and their sum (plus a defect's extra delay) against
the clock period decides whether a small-delay defect *can* be captured.

**Dynamic (per-pattern-pair) timing** -- :func:`timed_capture` computes,
for each consecutive launch/capture pattern pair, the *transition arrival
time* of every net under the actual stimulus: a net that does not switch
is stable (arrival 0); a switching gate output arrives one unit after the
latest switching input that participates in the change.  A
:class:`~repro.faults.models` small-delay defect adds its delta at its
site; any output whose transition arrives after the clock period captures
its previous-cycle value.  This gives the classic small-delay behavior:
the same defect is caught by long sensitized paths and escapes through
short ones -- a *pattern-dependent* faulty behavior that still satisfies
the per-test flip/pin exactness criterion, so the unchanged diagnosis
applies.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.circuit.netlist import Netlist, Site
from repro.errors import SimulationError
from repro.sim.logicsim import simulate
from repro.sim.patterns import PatternSet


def arrival_times(netlist: Netlist, gate_delay: float = 1.0) -> dict[str, float]:
    """Static longest input-to-net arrival time (topological pass)."""
    arrival: dict[str, float] = {net: 0.0 for net in netlist.inputs}
    for net in netlist.topo_order:
        gate = netlist.gates[net]
        arrival[net] = gate_delay + max(
            (arrival[src] for src in gate.inputs), default=0.0
        )
    return arrival


def propagation_depths(netlist: Netlist, gate_delay: float = 1.0) -> dict[str, float]:
    """Static longest net-to-primary-output path delay (reverse pass)."""
    depth: dict[str, float] = {net: float("-inf") for net in netlist.nets()}
    for out in netlist.outputs:
        depth[out] = max(depth[out], 0.0)
    for net in reversed(netlist.topo_order):
        gate = netlist.gates[net]
        if depth[net] == float("-inf"):
            continue
        for src in gate.inputs:
            depth[src] = max(depth[src], depth[net] + gate_delay)
    return {net: (0.0 if d == float("-inf") else d) for net, d in depth.items()}


def static_slack(
    netlist: Netlist, site: Site, period: float, gate_delay: float = 1.0
) -> float:
    """Worst-path slack through ``site``'s net for the given clock period."""
    arrival = arrival_times(netlist, gate_delay)
    depth = propagation_depths(netlist, gate_delay)
    return period - (arrival[site.net] + depth[site.net])


@dataclass(frozen=True)
class SmallDelayDefect:
    """Extra propagation delay at one site (in gate-delay units).

    Unlike :class:`~repro.faults.models.TransitionDefect` (gross delay,
    always one full cycle late), a small-delay defect only corrupts
    captures whose *actually sensitized* path through the site, plus
    ``delta``, exceeds the clock period -- evaluated per pattern pair by
    :func:`timed_capture`.
    """

    site: Site
    delta: float

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise SimulationError("small-delay delta must be positive")

    def ground_truth_sites(self) -> tuple[Site, ...]:
        return (self.site,)

    @property
    def family(self) -> str:
        return "smalldelay"

    def __str__(self) -> str:
        return f"{self.site} +{self.delta:g}d"


def timed_capture(
    netlist: Netlist,
    patterns: PatternSet,
    period: float,
    defects: tuple[SmallDelayDefect, ...] | list[SmallDelayDefect] = (),
    gate_delay: float = 1.0,
) -> dict[str, int]:
    """Per-output captured values under launch/capture timing.

    Consecutive patterns form launch/capture pairs (the convention shared
    with :class:`~repro.faults.models.TransitionDefect`).  For each
    capture, nets that switch get transition arrival times (one
    ``gate_delay`` after their latest switching cause, plus any defect
    delta at their site).  An output whose final transition arrives after
    ``period`` captures its *pre-late-wave* value: the circuit evaluated
    with the defect sites held at their launch values -- all on-time
    events have settled, only the wave originating at the slow sites is
    missing.  Pattern 0 has no launch and captures cleanly.
    """
    if period <= 0:
        raise SimulationError("clock period must be positive")
    extra: dict[str, float] = {}
    for defect in defects:
        netlist.validate_site(defect.site)
        if not defect.site.is_stem:
            raise SimulationError(
                "timed capture models stem small-delay defects "
                f"(got branch site {defect.site})"
            )
        extra[defect.site.net] = extra.get(defect.site.net, 0.0) + defect.delta

    base = simulate(netlist, patterns)
    # Pre-late-wave view: defect sites pinned at their previous-pattern
    # (launch) values -- what the outputs show until the slow wave lands.
    stale_base = base
    if extra:
        prev_shift = {
            net: (((base[net] << 1) | (base[net] & 1)) & patterns.mask)
            for net in extra
        }
        stale_base = simulate(
            netlist,
            patterns,
            {Site(net): prev_shift[net] for net in extra},
        )

    captured = {out: 0 for out in netlist.outputs}
    for index in range(patterns.n):
        now = {net: (vec >> index) & 1 for net, vec in base.items()}
        if index == 0:
            for out in netlist.outputs:
                captured[out] |= now[out] << 0
            continue
        prev = {net: (vec >> (index - 1)) & 1 for net, vec in base.items()}
        arrival: dict[str, float] = {}
        for net in netlist.inputs:
            arrival[net] = (
                extra.get(net, 0.0) if now[net] != prev[net] else 0.0
            )
        for net in netlist.topo_order:
            gate = netlist.gates[net]
            if now[net] == prev[net]:
                arrival[net] = 0.0
                continue
            switching = [
                arrival[src]
                for src in gate.inputs
                if now[src] != prev[src]
            ]
            latest = max(switching, default=0.0)
            arrival[net] = latest + gate_delay + extra.get(net, 0.0)
        for out in netlist.outputs:
            if arrival[out] > period:
                value = (stale_base[out] >> index) & 1
            else:
                value = now[out]
            captured[out] |= value << index
    return captured


def healthy_max_arrival(
    netlist: Netlist, patterns: PatternSet, gate_delay: float = 1.0
) -> float:
    """Largest dynamic transition arrival of the healthy circuit.

    The tightest clock period at which the fault-free circuit still
    captures correctly under this pattern sequence (pattern-dependent, so
    possibly below the static critical path).
    """
    base = simulate(netlist, patterns)
    worst = 0.0
    for index in range(1, patterns.n):
        now = {net: (vec >> index) & 1 for net, vec in base.items()}
        prev = {net: (vec >> (index - 1)) & 1 for net, vec in base.items()}
        arrival: dict[str, float] = {
            net: 0.0 for net in netlist.inputs
        }
        for net in netlist.topo_order:
            gate = netlist.gates[net]
            if now[net] == prev[net]:
                arrival[net] = 0.0
                continue
            arrival[net] = gate_delay + max(
                (arrival[src] for src in gate.inputs if now[src] != prev[src]),
                default=0.0,
            )
        worst = max(worst, max(arrival[out] for out in netlist.outputs))
    return worst


def apply_delay_test(
    netlist: Netlist,
    patterns: PatternSet,
    defects: list[SmallDelayDefect],
    period: float | None = None,
    gate_delay: float = 1.0,
):
    """Timing-aware analogue of :func:`repro.tester.harness.apply_test`.

    ``period`` defaults to the circuit's static critical path (zero-slack
    clocking) -- the tightest clock the healthy circuit still passes at.
    Returns a :class:`~repro.tester.harness.TestResult`.
    """
    from repro.sim.logicsim import mismatched_outputs, simulate_outputs
    from repro.tester.datalog import Datalog
    from repro.tester.harness import TestResult

    if period is None:
        period = max(arrival_times(netlist, gate_delay).values())
    golden = simulate_outputs(netlist, patterns)
    needed = healthy_max_arrival(netlist, patterns, gate_delay)
    if period < needed:
        raise SimulationError(
            f"clock period {period} is too fast for the healthy circuit "
            f"(needs {needed})"
        )
    faulty = timed_capture(netlist, patterns, period, tuple(defects), gate_delay)
    diff = mismatched_outputs(golden, faulty, patterns.mask)
    datalog = Datalog.from_output_diff(netlist.name, patterns.n, diff)
    return TestResult(
        datalog=datalog,
        golden_outputs=golden,
        faulty_outputs=faulty,
        defects=tuple(defects),
    )
