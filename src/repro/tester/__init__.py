"""Tester-side services: datalog capture, test application, noise.

The :class:`~repro.tester.datalog.Datalog` is the interface artifact
between manufacturing test and diagnosis -- exactly the information a
full-response ATE datalog carries: for each applied pattern, which outputs
mismatched the expected response.  :mod:`repro.tester.noise` adds the
fault-injection side of that interface: seeded corruption models and the
quarantining ingestion sanitizer that turns an untrusted raw log into a
tiered :class:`~repro.tester.datalog.Datalog`.
"""

from repro.tester.datalog import Datalog, FailRecord
from repro.tester.harness import apply_test, TestResult
from repro.tester.noise import (
    ComposedNoise,
    DropNoise,
    DuplicateNoise,
    FlipNoise,
    IngestReport,
    NoiseModel,
    RawLog,
    RawRecord,
    SanitizedLog,
    TruncateNoise,
    XMaskNoise,
    apply_noise,
    ingest_text,
    parse_noise_spec,
    parse_raw_text,
    sanitize,
)

__all__ = [
    "Datalog",
    "FailRecord",
    "apply_test",
    "TestResult",
    "ComposedNoise",
    "DropNoise",
    "DuplicateNoise",
    "FlipNoise",
    "IngestReport",
    "NoiseModel",
    "RawLog",
    "RawRecord",
    "SanitizedLog",
    "TruncateNoise",
    "XMaskNoise",
    "apply_noise",
    "ingest_text",
    "parse_noise_spec",
    "parse_raw_text",
    "sanitize",
]
