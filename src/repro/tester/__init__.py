"""Tester-side services: datalog capture and test application.

The :class:`~repro.tester.datalog.Datalog` is the interface artifact
between manufacturing test and diagnosis -- exactly the information a
full-response ATE datalog carries: for each applied pattern, which outputs
mismatched the expected response.
"""

from repro.tester.datalog import Datalog, FailRecord
from repro.tester.harness import apply_test, TestResult

__all__ = ["Datalog", "FailRecord", "apply_test", "TestResult"]
