"""Output response compaction (space compaction).

Industrial test responses are rarely observed output-by-output: an XOR
space compactor (or MISR) squeezes hundreds of scan channels into a few
tester pins.  Compaction is lossy for diagnosis -- failing outputs are
only known up to XOR parity groups, and two errors in one group can alias
(cancel) entirely.

Because the compactor is itself combinational logic, this module models
it exactly by *appending it to the netlist*: the compacted circuit's
outputs are the compactor pins, and the entire diagnosis stack (X-cover,
per-test analysis, covering, refinement) runs unchanged on it -- the
information loss shows up as wider candidate envelopes and aliased
patterns, which is precisely the effect the compaction experiment
(Figure 5) quantifies.
"""

from __future__ import annotations

from repro._rng import make_rng
from repro.circuit.gates import Gate, GateKind
from repro.circuit.netlist import Netlist
from repro.errors import NetlistError


def attach_compactor(
    netlist: Netlist,
    n_signatures: int,
    seed: int | None = None,
    name: str | None = None,
) -> Netlist:
    """Return ``netlist`` with an XOR space compactor on its outputs.

    The original outputs are dealt into ``n_signatures`` parity groups
    (seeded random assignment, balanced) and each group is XOR-reduced
    into one new primary output ``sig<i>``.  With ``n_signatures >= the
    output count`` the circuit is returned unchanged (no compaction).
    """
    if n_signatures < 1:
        raise NetlistError("a compactor needs at least one signature output")
    outputs = list(netlist.outputs)
    if n_signatures >= len(outputs):
        return netlist
    rng = make_rng(seed)
    shuffled = outputs[:]
    rng.shuffle(shuffled)
    groups: list[list[str]] = [[] for _ in range(n_signatures)]
    for index, out in enumerate(shuffled):
        groups[index % n_signatures].append(out)

    gates = list(netlist.gates.values())
    new_outputs: list[str] = []
    fresh = 0

    def xor_tree(nets: list[str], result_name: str) -> str:
        nonlocal fresh
        layer = list(nets)
        while len(layer) > 1:
            nxt: list[str] = []
            for i in range(0, len(layer) - 1, 2):
                last = len(layer) <= 2
                if last:
                    out_name = result_name
                else:
                    fresh += 1
                    out_name = f"_cmp{fresh}"
                gates.append(Gate(out_name, GateKind.XOR, (layer[i], layer[i + 1])))
                nxt.append(out_name)
            if len(layer) % 2:
                nxt.append(layer[-1])
            layer = nxt
        if layer[0] != result_name:
            gates.append(Gate(result_name, GateKind.BUF, (layer[0],)))
        return result_name

    for index, group in enumerate(groups):
        new_outputs.append(xor_tree(group, f"sig{index}"))

    return Netlist(
        name or f"{netlist.name}_cmp{n_signatures}",
        netlist.inputs,
        new_outputs,
        gates,
    )


def compaction_ratio(original: Netlist, compacted: Netlist) -> float:
    """Observability reduction factor (original outputs per signature)."""
    return len(original.outputs) / len(compacted.outputs)
