"""The tester datalog: observed pass/fail evidence per pattern.

A datalog records, for every applied test pattern, the set of primary
(scan) outputs whose captured value mismatched the expected fault-free
response.  It is the *only* information diagnosis may use about the
failing device -- no assumptions are made about why any pattern failed.

The text serialization is deliberately simple and line-oriented, similar
in spirit to STIL/ATE fail logs::

    # datalog circuit=alu8 patterns=96
    fail 3: r0 r4
    fail 17: carry
    xmask 21: r2

Evidence comes in three confidence tiers.  ``fail`` records are hard-fail
evidence; every strobe of an observed pattern not named by a ``fail`` or
``xmask`` line is hard-pass evidence; ``xmask`` records mark strobes whose
captured value is *unknown* (compactor X-masking, or contradictions
quarantined by the ingestion sanitizer in :mod:`repro.tester.noise`) --
they are neither corroborating nor exculpatory, exactly like the patterns
beyond an ATE-truncated log's observed window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.errors import DatalogError


@dataclass(frozen=True, order=True)
class FailRecord:
    """One failing pattern and its failing outputs."""

    pattern_index: int
    failing_outputs: frozenset[str]

    def __post_init__(self) -> None:
        if not self.failing_outputs:
            raise DatalogError(
                f"pattern {self.pattern_index}: a fail record needs >=1 output"
            )


class Datalog:
    """Immutable pass/fail evidence for one device under one test set."""

    def __init__(
        self,
        circuit_name: str,
        n_patterns: int,
        records: Iterable[FailRecord],
        n_observed: int | None = None,
        x_atoms: Iterable[tuple[int, str]] = (),
    ):
        """``n_observed`` marks how far the fail log extends: patterns at
        index >= n_observed were applied but their results never logged
        (ATE truncation), so they are neither failing nor passing
        evidence.  Defaults to the full test set.

        ``x_atoms`` is the unobserved-X confidence tier: (pattern, output)
        strobes whose captured value is unknown -- masked by a compactor,
        or quarantined as contradictory by the ingestion sanitizer.  An X
        strobe is neither failing nor passing evidence and must be
        disjoint from the fail records."""
        self.circuit_name = circuit_name
        self.n_patterns = n_patterns
        self.n_observed = n_patterns if n_observed is None else n_observed
        if not 0 <= self.n_observed <= n_patterns:
            raise DatalogError(
                f"n_observed {self.n_observed} outside 0..{n_patterns}"
            )
        recs = sorted(records)
        seen: set[int] = set()
        for rec in recs:
            if not 0 <= rec.pattern_index < self.n_observed:
                raise DatalogError(
                    f"fail record index {rec.pattern_index} outside the "
                    f"observed window of {self.n_observed} patterns"
                )
            if rec.pattern_index in seen:
                raise DatalogError(f"duplicate fail record {rec.pattern_index}")
            seen.add(rec.pattern_index)
        self.records: tuple[FailRecord, ...] = tuple(recs)
        self._by_index: dict[int, frozenset[str]] = {
            rec.pattern_index: rec.failing_outputs for rec in self.records
        }
        # X strobes beyond the observed window are redundant (the whole
        # suffix is already unobserved) and are normalized away.
        self.x_atoms: frozenset[tuple[int, str]] = frozenset(
            (idx, out) for idx, out in x_atoms if idx < self.n_observed
        )
        self._fail_vectors: dict[str, int] | None = None
        self._fail_x_vectors: dict[str, int] | None = None
        for idx, out in self.x_atoms:
            if idx < 0:
                raise DatalogError(f"X-masked strobe index {idx} is negative")
            if out in self._by_index.get(idx, frozenset()):
                raise DatalogError(
                    f"strobe ({idx}, {out!r}) is both failing and X-masked; "
                    "contradictions must be quarantined before construction"
                )

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_output_diff(
        cls, circuit_name: str, n_patterns: int, diff: Mapping[str, int]
    ) -> "Datalog":
        """Build from per-output mismatch bit vectors (simulation side)."""
        per_pattern: dict[int, set[str]] = {}
        for out, vec in diff.items():
            v = vec
            while v:
                low = v & -v
                idx = low.bit_length() - 1
                per_pattern.setdefault(idx, set()).add(out)
                v ^= low
        records = [
            FailRecord(idx, frozenset(outs)) for idx, outs in per_pattern.items()
        ]
        return cls(circuit_name, n_patterns, records)

    # -- queries ------------------------------------------------------------------

    @property
    def failing_indices(self) -> tuple[int, ...]:
        return tuple(rec.pattern_index for rec in self.records)

    @property
    def passing_indices(self) -> tuple[int, ...]:
        """Patterns with *observed* passing results (truncation-aware)."""
        failing = set(self._by_index)
        return tuple(i for i in range(self.n_observed) if i not in failing)

    @property
    def unobserved_indices(self) -> tuple[int, ...]:
        """Patterns applied but never logged (beyond the truncation point)."""
        return tuple(range(self.n_observed, self.n_patterns))

    @property
    def is_passing_device(self) -> bool:
        return not self.records

    def failing_outputs_of(self, pattern_index: int) -> frozenset[str]:
        """Failing outputs of a pattern (empty set when it passed)."""
        return self._by_index.get(pattern_index, frozenset())

    def x_outputs_of(self, pattern_index: int) -> frozenset[str]:
        """Outputs whose capture is unknown (X tier) for a pattern."""
        return frozenset(
            out for idx, out in self.x_atoms if idx == pattern_index
        )

    @property
    def n_x_atoms(self) -> int:
        return len(self.x_atoms)

    def fail_atoms(self) -> set[tuple[int, str]]:
        """All observed (pattern, output) failure atoms."""
        return {
            (rec.pattern_index, out)
            for rec in self.records
            for out in rec.failing_outputs
        }

    @property
    def n_fail_atoms(self) -> int:
        return sum(len(rec.failing_outputs) for rec in self.records)

    def fail_vectors(self) -> dict[str, int]:
        """Per-output failing bit vectors on the packed *work axis*.

        Bit ``j`` of ``fail_vectors()[out]`` is set iff the ``j``-th
        failing record (``records[j]``) fails output ``out``.  This is the
        transposed evidence representation the bit-parallel exact matcher
        in :mod:`repro.core.pertest` consumes; it is built once per
        datalog (datalogs are immutable) and shared -- callers must not
        mutate the returned dict.
        """
        vecs = self._fail_vectors
        if vecs is None:
            vecs = {}
            for pos, rec in enumerate(self.records):
                bit = 1 << pos
                for out in sorted(rec.failing_outputs):
                    vecs[out] = vecs.get(out, 0) | bit
            self._fail_vectors = vecs
        return vecs

    def fail_x_vectors(self) -> dict[str, int]:
        """X-tier strobes of *failing* patterns on the packed work axis.

        Same axis as :meth:`fail_vectors` (bit ``j`` = the ``j``-th failing
        record); X strobes of passing patterns carry no per-test evidence
        and are omitted.  Shared and cached like :meth:`fail_vectors`.
        """
        vecs = self._fail_x_vectors
        if vecs is None:
            pos_of = {
                rec.pattern_index: pos for pos, rec in enumerate(self.records)
            }
            vecs = {}
            for idx, out in sorted(self.x_atoms):
                pos = pos_of.get(idx)
                if pos is not None:
                    vecs[out] = vecs.get(out, 0) | (1 << pos)
            self._fail_x_vectors = vecs
        return vecs

    def observed_diff(self, output_order: Sequence[str]) -> dict[str, int]:
        """Inverse of :meth:`from_output_diff`: per-output mismatch vectors."""
        diff = {out: 0 for out in output_order}
        for rec in self.records:
            for out in rec.failing_outputs:
                if out not in diff:
                    raise DatalogError(f"datalog names unknown output {out!r}")
                diff[out] |= 1 << rec.pattern_index
        return {out: vec for out, vec in diff.items() if vec}

    # -- tester realism ----------------------------------------------------------

    def truncate(
        self,
        max_failing_patterns: int | None = None,
        max_fail_atoms: int | None = None,
    ) -> "Datalog":
        """Simulate ATE fail-log truncation.

        Production testers stop logging after a configured number of
        failing cycles and/or failing bits to bound test time; diagnosis
        then works from a *prefix* of the evidence.  Records are kept in
        pattern order; a record that would exceed ``max_fail_atoms`` is
        dropped whole (testers truncate at capture granularity).
        """
        records: list[FailRecord] = []
        atoms = 0
        cutoff = self.n_observed
        for record in self.records:
            if (
                max_failing_patterns is not None
                and len(records) >= max_failing_patterns
            ) or (
                max_fail_atoms is not None
                and atoms + len(record.failing_outputs) > max_fail_atoms
            ):
                # The tester stops logging right before this record: later
                # patterns were applied but their results are unknown.
                cutoff = record.pattern_index
                break
            records.append(record)
            atoms += len(record.failing_outputs)
        return Datalog(
            self.circuit_name,
            self.n_patterns,
            records,
            n_observed=cutoff,
            x_atoms={(idx, out) for idx, out in self.x_atoms if idx < cutoff},
        )

    # -- serialization -----------------------------------------------------------

    def to_text(self) -> str:
        header = f"# datalog circuit={self.circuit_name} patterns={self.n_patterns}"
        if self.n_observed != self.n_patterns:
            header += f" observed={self.n_observed}"
        lines = [header]
        for rec in self.records:
            outs = " ".join(sorted(rec.failing_outputs))
            lines.append(f"fail {rec.pattern_index}: {outs}")
        x_by_index: dict[int, list[str]] = {}
        for idx, out in self.x_atoms:
            x_by_index.setdefault(idx, []).append(out)
        for idx in sorted(x_by_index):
            lines.append(f"xmask {idx}: {' '.join(sorted(x_by_index[idx]))}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text: str) -> "Datalog":
        """Parse the line-oriented serialization (strict).

        Every malformed construct raises :class:`DatalogError` carrying
        the offending line number -- a truncated or corrupted fail log
        must never surface as an arbitrary ``ValueError``/``KeyError``
        deep inside diagnosis.  Strict also means *semantically* clean:
        duplicate (pattern, output) strobe tokens, repeated records for
        one pattern, and out-of-order pattern indices (testers log in
        application order -- a non-monotonic log is corrupted or spliced)
        are all rejected with file/line context.  Suspect real-world logs
        go through :func:`repro.tester.noise.ingest_text`, which
        quarantines these anomalies instead of raising.
        """
        circuit_name = "unknown"
        n_patterns: int | None = None
        n_observed: int | None = None
        records: list[FailRecord] = []
        x_atoms: set[tuple[int, str]] = set()
        seen_lines: dict[tuple[str, int], int] = {}
        last_index: dict[str, int] = {}
        for lineno, raw in enumerate(text.splitlines(), start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                for token in line[1:].split():
                    for key in ("patterns", "observed"):
                        if token.startswith(f"{key}="):
                            value = token.split("=", 1)[1]
                            try:
                                parsed = int(value)
                            except ValueError:
                                raise DatalogError(
                                    f"line {lineno}: bad {key}= value {value!r}"
                                ) from None
                            if parsed < 0:
                                raise DatalogError(
                                    f"line {lineno}: {key}= must be >= 0, "
                                    f"got {parsed}"
                                )
                            if key == "patterns":
                                n_patterns = parsed
                            else:
                                n_observed = parsed
                    if token.startswith("circuit="):
                        circuit_name = token.split("=", 1)[1]
                continue
            kind, index, outs = cls._parse_record_line(line, lineno)
            prev_line = seen_lines.get((kind, index))
            if prev_line is not None:
                raise DatalogError(
                    f"line {lineno}: duplicate {kind} record for pattern "
                    f"{index} (first logged at line {prev_line}); "
                    "contradictory re-strobes must go through the "
                    "ingestion quarantine"
                )
            seen_lines[(kind, index)] = lineno
            prev_index = last_index.get(kind)
            if prev_index is not None and index < prev_index:
                raise DatalogError(
                    f"line {lineno}: pattern index {index} out of order "
                    f"(previous {kind} record was {prev_index}); testers "
                    "log in application order, so this log is corrupted "
                    "or spliced"
                )
            last_index[kind] = index
            if kind == "fail":
                try:
                    records.append(FailRecord(index, outs))
                except DatalogError as exc:
                    raise DatalogError(f"line {lineno}: {exc}") from None
            else:
                x_atoms.update((index, out) for out in outs)
        if n_patterns is None:
            n_patterns = max(
                max((r.pattern_index for r in records), default=-1),
                max((idx for idx, _out in x_atoms), default=-1),
            ) + 1
        return cls(
            circuit_name,
            n_patterns,
            records,
            n_observed=n_observed,
            x_atoms=x_atoms,
        )

    @staticmethod
    def _parse_record_line(
        line: str, lineno: int
    ) -> tuple[str, int, frozenset[str]]:
        """Parse one ``fail``/``xmask`` record line, strictly."""
        if line.startswith("fail "):
            kind, body = "fail", line[5:]
        elif line.startswith("xmask "):
            kind, body = "xmask", line[6:]
        else:
            raise DatalogError(f"line {lineno}: unrecognized {line!r}")
        head, sep, tail = body.partition(":")
        if not sep:
            raise DatalogError(
                f"line {lineno}: {kind} record is missing ':' separator"
            )
        try:
            index = int(head.strip())
        except ValueError:
            raise DatalogError(f"line {lineno}: bad pattern index") from None
        if index < 0:
            raise DatalogError(
                f"line {lineno}: pattern index must be >= 0, got {index}"
            )
        tokens = tail.split()
        duplicated = sorted({out for out in tokens if tokens.count(out) > 1})
        if duplicated:
            raise DatalogError(
                f"line {lineno}: duplicate strobe token(s) {duplicated} in "
                f"{kind} record for pattern {index}"
            )
        return kind, index, frozenset(tokens)

    def validate_for(self, netlist, n_patterns: int | None = None) -> None:
        """Check this datalog is consistent with a circuit (and test set).

        Raises :class:`DatalogError` naming the first inconsistency: a
        circuit-name mismatch, a failing output the circuit does not
        drive, or a pattern budget that does not match the test set the
        diagnosis will simulate.
        """
        if self.circuit_name not in ("unknown", netlist.name):
            raise DatalogError(
                f"datalog was captured on circuit {self.circuit_name!r}, "
                f"not {netlist.name!r}"
            )
        known = set(netlist.outputs)
        for rec in self.records:
            unknown = rec.failing_outputs - known
            if unknown:
                raise DatalogError(
                    f"pattern {rec.pattern_index}: failing output(s) "
                    f"{sorted(unknown)} not driven by circuit {netlist.name!r}"
                )
        for idx, out in sorted(self.x_atoms):
            if out not in known:
                raise DatalogError(
                    f"pattern {idx}: X-masked output {out!r} not driven "
                    f"by circuit {netlist.name!r}"
                )
        if n_patterns is not None and self.n_patterns != n_patterns:
            raise DatalogError(
                f"datalog covers {self.n_patterns} patterns but the test "
                f"set has {n_patterns}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Datalog):
            return NotImplemented
        return (
            self.circuit_name == other.circuit_name
            and self.n_patterns == other.n_patterns
            and self.n_observed == other.n_observed
            and self.records == other.records
            and self.x_atoms == other.x_atoms
        )

    def __repr__(self) -> str:
        x_note = f", {len(self.x_atoms)} X strobes" if self.x_atoms else ""
        return (
            f"Datalog({self.circuit_name!r}, {len(self.records)} failing / "
            f"{self.n_patterns} patterns, {self.n_fail_atoms} fail atoms"
            f"{x_note})"
        )
