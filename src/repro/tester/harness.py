"""Test application harness: golden vs defective device comparison.

This is the simulated stand-in for the production tester: it applies a
pattern set to a :class:`~repro.faults.injection.FaultyCircuit` (the
"silicon"), compares full responses against the fault-free circuit, and
emits the :class:`~repro.tester.datalog.Datalog` that diagnosis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.circuit.netlist import Netlist
from repro.faults.injection import FaultyCircuit
from repro.faults.models import Defect
from repro.sim.logicsim import mismatched_outputs, simulate_outputs
from repro.sim.patterns import PatternSet
from repro.tester.datalog import Datalog


@dataclass
class TestResult:
    """Everything the tester observed (plus simulation-side ground truth)."""

    datalog: Datalog
    golden_outputs: dict[str, int]
    faulty_outputs: dict[str, int]
    defects: tuple[Defect, ...]

    @property
    def device_fails(self) -> bool:
        return not self.datalog.is_passing_device


def apply_test(
    netlist: Netlist,
    patterns: PatternSet,
    defects: Sequence[Defect],
) -> TestResult:
    """Apply ``patterns`` to a device carrying ``defects``; log failures.

    Raises :class:`~repro.errors.OscillationError` if the defect
    combination has no stable two-valued behavior (a ringing short).
    """
    golden = simulate_outputs(netlist, patterns)
    dut = FaultyCircuit(netlist, defects)
    faulty = dut.simulate_outputs(patterns)
    diff = mismatched_outputs(golden, faulty, patterns.mask)
    datalog = Datalog.from_output_diff(netlist.name, patterns.n, diff)
    return TestResult(
        datalog=datalog,
        golden_outputs=golden,
        faulty_outputs=faulty,
        defects=tuple(defects),
    )
