"""Test application harness: golden vs defective device comparison.

This is the simulated stand-in for the production tester: it applies a
pattern set to a :class:`~repro.faults.injection.FaultyCircuit` (the
"silicon"), compares full responses against the fault-free circuit, and
emits the :class:`~repro.tester.datalog.Datalog` that diagnosis consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.circuit.netlist import Netlist
from repro.faults.injection import FaultyCircuit
from repro.faults.models import Defect
from repro.sim.logicsim import mismatched_outputs, simulate_outputs
from repro.sim.patterns import PatternSet
from repro.tester.datalog import Datalog

if TYPE_CHECKING:
    from repro.tester.noise import IngestReport, NoiseModel, RawLog


@dataclass
class TestResult:
    """Everything the tester observed (plus simulation-side ground truth)."""

    datalog: Datalog
    golden_outputs: dict[str, int]
    faulty_outputs: dict[str, int]
    defects: tuple[Defect, ...]
    #: True when two-valued simulation oscillated and the response was
    #: recovered by the three-valued fallback (X bits carry no evidence).
    oscillation_fallback: bool = False
    #: Number of (pattern, output) atoms masked to X by the fallback.
    x_atoms: int = 0
    #: Present only under injected datalog noise: the corrupted raw log as
    #: the "tester" emitted it (``datalog`` is then its sanitized form).
    raw: "RawLog | None" = None
    #: Ingestion anomaly counters from sanitizing ``raw`` (noise runs only).
    ingest: "IngestReport | None" = None

    @property
    def device_fails(self) -> bool:
        return not self.datalog.is_passing_device


def apply_test(
    netlist: Netlist,
    patterns: PatternSet,
    defects: Sequence[Defect],
    on_oscillation: str = "raise",
    noise: "NoiseModel | None" = None,
    noise_seed: int = 0,
) -> TestResult:
    """Apply ``patterns`` to a device carrying ``defects``; log failures.

    ``on_oscillation`` selects what happens when the defect combination has
    no stable two-valued behavior (a ringing short):

    - ``"raise"`` (default): raise
      :class:`~repro.errors.OscillationError`, the historical behavior;
    - ``"fallback"``: degrade to three-valued simulation -- oscillating
      bits resolve to ``X``, an X-valued capture is neither pass nor fail
      evidence, and the result records how much evidence was masked
      (``oscillation_fallback`` / ``x_atoms``).

    ``noise`` (with ``noise_seed``) injects datalog corruption between
    capture and ingestion, exactly where real tester noise lives: the
    clean datalog is corrupted into a raw log, re-ingested through the
    quarantining sanitizer (:mod:`repro.tester.noise`), and the result
    carries the sanitized datalog plus the ``raw`` log and its ``ingest``
    anomaly report.  With ``noise=None`` (the default) nothing changes.
    """
    if on_oscillation not in ("raise", "fallback"):
        raise ValueError(
            f"on_oscillation must be 'raise' or 'fallback', got {on_oscillation!r}"
        )
    golden = simulate_outputs(netlist, patterns)
    dut = FaultyCircuit(netlist, defects)
    fallback = False
    x_atoms = 0
    if on_oscillation == "fallback":
        faulty, xmasks = dut.simulate_outputs_with_x(patterns)
        diff = mismatched_outputs(golden, faulty, patterns.mask)
        if xmasks:
            fallback = True
            # An X capture mismatches nothing: strip masked bits from the
            # evidence instead of logging a mid-oscillation read as a fail.
            for out, xm in xmasks.items():
                x_atoms += bin(xm & patterns.mask).count("1")
                if out in diff:
                    kept = diff[out] & ~xm
                    if kept:
                        diff[out] = kept
                    else:
                        del diff[out]
    else:
        faulty = dut.simulate_outputs(patterns)
        diff = mismatched_outputs(golden, faulty, patterns.mask)
    datalog = Datalog.from_output_diff(netlist.name, patterns.n, diff)
    raw = None
    ingest = None
    if noise is not None:
        from repro.tester.noise import apply_noise, sanitize

        raw = apply_noise(datalog, netlist.outputs, noise, noise_seed)
        sanitized = sanitize(raw)
        datalog = sanitized.datalog
        ingest = sanitized.report
    return TestResult(
        datalog=datalog,
        golden_outputs=golden,
        faulty_outputs=faulty,
        defects=tuple(defects),
        oscillation_fallback=fallback,
        x_atoms=x_atoms,
        raw=raw,
        ingest=ingest,
    )
