"""Tester-data noise models and the quarantining ingestion sanitizer.

The diagnosis makes no assumptions about *failing-pattern* behavior, but
the historical front end silently assumed the fail log itself was
pristine: every strobe observed, no intermittent flips, no truncation, no
compactor masking, no contradictory re-strobes.  Real ATE data violates
all of these.  This module closes the gap from both sides:

- **Noise models** (:class:`FlipNoise`, :class:`DropNoise`,
  :class:`TruncateNoise`, :class:`XMaskNoise`, :class:`DuplicateNoise`,
  composable via :class:`ComposedNoise` / :func:`parse_noise_spec`)
  corrupt a clean :class:`~repro.tester.datalog.Datalog` into a
  :class:`RawLog` the way production testers actually do, seeded and
  deterministic so every fault-injection experiment is reproducible.

- **The sanitizer** (:func:`sanitize` / :func:`ingest_text`) ingests a
  possibly-contradictory raw log, detects each anomaly class, and
  *quarantines* suspect evidence into per-strobe confidence tiers instead
  of raising: strobes every record agrees on stay hard evidence, disputed
  strobes are demoted to the unobserved-X tier
  (:attr:`~repro.tester.datalog.Datalog.x_atoms`), and every demotion is
  counted in an :class:`IngestReport`.  Diagnosis then degrades
  gracefully -- an X strobe is neither corroborating nor exculpatory
  under the three-valued semantics of :mod:`repro.sim.threeval` -- rather
  than chasing phantom defects or vindicating real ones away.

Noise that flips a strobe *consistently* (e.g. a pass->fail flip on a
pattern the log mentions nowhere else) is indistinguishable from real
silicon behavior and cannot be quarantined here; the post-diagnosis
oracle (:mod:`repro.core.oracle`) is the backstop that catches its
downstream effects.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro._rng import make_rng, spawn
from repro.errors import DatalogError
from repro.tester.datalog import Datalog, FailRecord

Atom = tuple[int, str]


# -- the raw (pre-sanitization) log -------------------------------------------


@dataclass(frozen=True)
class RawRecord:
    """One logged strobe record, exactly as the tester emitted it.

    Unlike :class:`~repro.tester.datalog.FailRecord`, a raw record makes
    no consistency promises: outputs keep file order and duplicates, the
    same pattern may be recorded many times, and ``kind`` distinguishes
    ``fail`` strobes from compactor ``xmask`` annotations.
    """

    kind: str  #: "fail" or "xmask"
    pattern_index: int
    outputs: tuple[str, ...]


@dataclass
class RawLog:
    """A tester fail log before sanitization -- possibly contradictory.

    ``outputs`` is the strobe universe (the circuit's observable outputs)
    when known; noise models that invent new fail strobes need it and
    raise a clear error when it is missing (a log parsed from text alone
    does not carry it).
    """

    circuit_name: str
    n_patterns: int
    n_observed: int | None = None
    outputs: tuple[str, ...] = ()
    records: list[RawRecord] = field(default_factory=list)

    @classmethod
    def from_datalog(
        cls, datalog: Datalog, outputs: Sequence[str] = ()
    ) -> "RawLog":
        """Lift a clean datalog into raw form (one record per pattern)."""
        records = [
            RawRecord("fail", rec.pattern_index, tuple(sorted(rec.failing_outputs)))
            for rec in datalog.records
        ]
        x_by_index: dict[int, list[str]] = {}
        for idx, out in sorted(datalog.x_atoms):
            x_by_index.setdefault(idx, []).append(out)
        records.extend(
            RawRecord("xmask", idx, tuple(outs)) for idx, outs in x_by_index.items()
        )
        return cls(
            circuit_name=datalog.circuit_name,
            n_patterns=datalog.n_patterns,
            n_observed=(
                None
                if datalog.n_observed == datalog.n_patterns
                else datalog.n_observed
            ),
            outputs=tuple(outputs),
            records=records,
        )

    @property
    def observed_window(self) -> int:
        if self.n_observed is None:
            return self.n_patterns
        return max(0, min(self.n_observed, self.n_patterns))

    def fail_atoms(self) -> set[Atom]:
        """Every (pattern, output) strobe some record claims failing."""
        return {
            (rec.pattern_index, out)
            for rec in self.records
            if rec.kind == "fail"
            for out in rec.outputs
        }

    def fail_outputs_of(self, pattern_index: int) -> set[str]:
        """Union of failing outputs over every record of one pattern."""
        return {
            out
            for rec in self.records
            if rec.kind == "fail" and rec.pattern_index == pattern_index
            for out in rec.outputs
        }

    def to_text(self) -> str:
        """Serialize records verbatim -- duplicates and disorder survive."""
        header = f"# datalog circuit={self.circuit_name} patterns={self.n_patterns}"
        if self.n_observed is not None and self.n_observed != self.n_patterns:
            header += f" observed={self.n_observed}"
        lines = [header]
        for rec in self.records:
            lines.append(f"{rec.kind} {rec.pattern_index}: {' '.join(rec.outputs)}")
        return "\n".join(lines) + "\n"


# -- noise models -------------------------------------------------------------


class NoiseModel:
    """One corruption mechanism; subclasses are pure and seeded.

    ``corrupt`` never mutates its input: every application returns a new
    :class:`RawLog`, so models compose and a single corrupted log can be
    compared against its clean original.
    """

    name: str = "noise"

    def spec(self) -> str:
        """The ``name:rate`` string :func:`parse_noise_spec` accepts."""
        raise NotImplementedError

    def corrupt(self, raw: RawLog, rng: random.Random) -> RawLog:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec()!r})"


def _check_rate(name: str, rate: float, upper: float = 1.0) -> float:
    if not 0.0 <= rate <= upper:
        raise DatalogError(
            f"noise model {name!r}: rate {rate} outside 0..{upper}"
        )
    return rate


@dataclass(repr=False)
class FlipNoise(NoiseModel):
    """Intermittent pass<->fail strobe flips at a per-strobe rate.

    A fail->pass flip silently erases evidence (the strobe read clean on
    this application); a pass->fail flip appends a *new* fail record for
    the pattern -- on a pattern that already has one, the re-strobe
    contradicts it and the sanitizer will quarantine the disagreement.
    Needs the strobe universe (``raw.outputs``).
    """

    rate: float
    name = "flip"

    def __post_init__(self) -> None:
        _check_rate(self.name, self.rate)

    def spec(self) -> str:
        return f"flip:{self.rate:g}"

    def corrupt(self, raw: RawLog, rng: random.Random) -> RawLog:
        if not raw.outputs:
            raise DatalogError(
                "flip noise needs the output strobe universe; build the "
                "RawLog with RawLog.from_datalog(datalog, netlist.outputs)"
            )
        window = raw.observed_window
        masked = {
            (rec.pattern_index, out)
            for rec in raw.records
            if rec.kind == "xmask"
            for out in rec.outputs
        }
        failing = raw.fail_atoms()
        flipped: set[Atom] = set()
        for idx in range(window):
            for out in raw.outputs:
                if (idx, out) in masked:
                    continue  # a masked strobe has no read to flip
                if rng.random() < self.rate:
                    flipped.add((idx, out))
        records: list[RawRecord] = []
        for rec in raw.records:
            if rec.kind != "fail":
                records.append(rec)
                continue
            kept = tuple(
                out
                for out in rec.outputs
                if (rec.pattern_index, out) not in flipped
            )
            if kept:
                records.append(RawRecord("fail", rec.pattern_index, kept))
        additions: dict[int, list[str]] = {}
        for idx, out in sorted(flipped - failing):
            additions.setdefault(idx, []).append(out)
        records.extend(
            RawRecord("fail", idx, tuple(outs))
            for idx, outs in additions.items()
        )
        return RawLog(
            raw.circuit_name, raw.n_patterns, raw.n_observed, raw.outputs, records
        )


@dataclass(repr=False)
class DropNoise(NoiseModel):
    """Whole failing records lost at a per-record rate (missed logging)."""

    rate: float
    name = "drop"

    def __post_init__(self) -> None:
        _check_rate(self.name, self.rate)

    def spec(self) -> str:
        return f"drop:{self.rate:g}"

    def corrupt(self, raw: RawLog, rng: random.Random) -> RawLog:
        records = [
            rec
            for rec in raw.records
            if rec.kind != "fail" or rng.random() >= self.rate
        ]
        return RawLog(
            raw.circuit_name, raw.n_patterns, raw.n_observed, raw.outputs, records
        )


@dataclass(repr=False)
class TruncateNoise(NoiseModel):
    """ATE truncation: only the first ``fraction`` of the window is logged."""

    fraction: float
    name = "trunc"

    def __post_init__(self) -> None:
        _check_rate(self.name, self.fraction)

    def spec(self) -> str:
        return f"trunc:{self.fraction:g}"

    def corrupt(self, raw: RawLog, rng: random.Random) -> RawLog:
        del rng  # the cut point is a deterministic function of the fraction
        window = raw.observed_window
        cut = int(round(window * self.fraction))
        records = [rec for rec in raw.records if rec.pattern_index < cut]
        return RawLog(
            raw.circuit_name, raw.n_patterns, cut, raw.outputs, records
        )


@dataclass(repr=False)
class XMaskNoise(NoiseModel):
    """Compactor X-masking: strobes unreadable at a per-strobe rate.

    A masked strobe that was failing loses its fail evidence (the
    compactor never saw it) and gains an explicit ``xmask`` record, the
    way masked scan cells are annotated in production fail logs.
    Needs the strobe universe.
    """

    rate: float
    name = "xmask"

    def __post_init__(self) -> None:
        _check_rate(self.name, self.rate)

    def spec(self) -> str:
        return f"xmask:{self.rate:g}"

    def corrupt(self, raw: RawLog, rng: random.Random) -> RawLog:
        if not raw.outputs:
            raise DatalogError(
                "xmask noise needs the output strobe universe; build the "
                "RawLog with RawLog.from_datalog(datalog, netlist.outputs)"
            )
        window = raw.observed_window
        masked: set[Atom] = set()
        for idx in range(window):
            for out in raw.outputs:
                if rng.random() < self.rate:
                    masked.add((idx, out))
        records: list[RawRecord] = []
        for rec in raw.records:
            if rec.kind != "fail":
                records.append(rec)
                continue
            kept = tuple(
                out
                for out in rec.outputs
                if (rec.pattern_index, out) not in masked
            )
            if kept:
                records.append(RawRecord("fail", rec.pattern_index, kept))
        additions: dict[int, list[str]] = {}
        for idx, out in sorted(masked):
            additions.setdefault(idx, []).append(out)
        records.extend(
            RawRecord("xmask", idx, tuple(outs))
            for idx, outs in additions.items()
        )
        return RawLog(
            raw.circuit_name, raw.n_patterns, raw.n_observed, raw.outputs, records
        )


@dataclass(repr=False)
class DuplicateNoise(NoiseModel):
    """Contradictory re-strobes: failing records logged twice, differing.

    Models retest appends and datalog splicing: with probability ``rate``
    a failing record gains a second record for the same pattern whose
    output set disagrees (one strobe dropped, or one spurious strobe
    added when the universe is known).  The disagreement is exactly what
    the sanitizer's contradiction quarantine exists to catch.
    """

    rate: float
    name = "dup"

    def __post_init__(self) -> None:
        _check_rate(self.name, self.rate)

    def spec(self) -> str:
        return f"dup:{self.rate:g}"

    def corrupt(self, raw: RawLog, rng: random.Random) -> RawLog:
        records = list(raw.records)
        for rec in raw.records:
            if rec.kind != "fail" or rng.random() >= self.rate:
                continue
            outs = list(rec.outputs)
            extras = [out for out in raw.outputs if out not in rec.outputs]
            if len(outs) > 1 and (not extras or rng.random() < 0.5):
                outs.remove(outs[rng.randrange(len(outs))])
            elif extras:
                outs.append(extras[rng.randrange(len(extras))])
            records.append(RawRecord("fail", rec.pattern_index, tuple(outs)))
        return RawLog(
            raw.circuit_name, raw.n_patterns, raw.n_observed, raw.outputs, records
        )


@dataclass(repr=False)
class ComposedNoise(NoiseModel):
    """Sequential composition; each stage gets an independent child RNG.

    Stage RNGs are derived via :func:`repro._rng.spawn` keyed by stage
    position and spec, so ``flip:0.02+drop:0.1`` corrupts identically run
    to run, and a stage's draws do not depend on how many random numbers
    an earlier stage happened to consume.
    """

    models: tuple[NoiseModel, ...]
    name = "composed"

    def spec(self) -> str:
        return "+".join(m.spec() for m in self.models)

    def corrupt(self, raw: RawLog, rng: random.Random) -> RawLog:
        for position, model in enumerate(self.models):
            stage_rng = spawn(rng, f"{position}:{model.spec()}")
            raw = model.corrupt(raw, stage_rng)
        return raw


_MODEL_FACTORIES = {
    "flip": FlipNoise,
    "drop": DropNoise,
    "trunc": TruncateNoise,
    "xmask": XMaskNoise,
    "dup": DuplicateNoise,
}


def parse_noise_spec(spec: str) -> NoiseModel:
    """Parse ``"flip:0.05"`` / ``"flip:0.02+dup:0.1"`` into a noise model."""
    stages: list[NoiseModel] = []
    for part in spec.split("+"):
        name, sep, value = part.strip().partition(":")
        if not sep or not name:
            raise DatalogError(
                f"bad noise spec {part!r}: expected MODEL:RATE "
                f"(models: {', '.join(sorted(_MODEL_FACTORIES))})"
            )
        factory = _MODEL_FACTORIES.get(name)
        if factory is None:
            raise DatalogError(
                f"unknown noise model {name!r}; "
                f"known: {', '.join(sorted(_MODEL_FACTORIES))}"
            )
        try:
            rate = float(value)
        except ValueError:
            raise DatalogError(
                f"bad noise rate {value!r} for model {name!r}"
            ) from None
        stages.append(factory(rate))
    if not stages:
        raise DatalogError(f"empty noise spec {spec!r}")
    if len(stages) == 1:
        return stages[0]
    return ComposedNoise(tuple(stages))


def apply_noise(
    datalog: Datalog,
    outputs: Sequence[str],
    model: NoiseModel,
    seed: int,
) -> RawLog:
    """Corrupt a clean datalog deterministically: one seed, one raw log."""
    raw = RawLog.from_datalog(datalog, outputs)
    return model.corrupt(raw, make_rng(seed))


# -- the ingestion sanitizer --------------------------------------------------


@dataclass
class IngestReport:
    """Counters per anomaly class from one sanitized ingestion."""

    #: identical re-strobes of one pattern, silently deduplicated
    duplicate_records: int = 0
    #: patterns whose re-strobes disagreed (the contradiction quarantine)
    contradictory_records: int = 0
    #: fail strobes demoted to the X tier because records disputed them
    quarantined_atoms: int = 0
    #: strobes explicitly X-masked by the log (compactor annotations)
    masked_atoms: int = 0
    #: repeated output tokens inside a single record line
    duplicate_strobe_tokens: int = 0
    #: records at indices outside the pattern budget, dropped
    out_of_range_records: int = 0
    #: records beyond the declared observed window, dropped as unobserved
    beyond_window_records: int = 0
    #: record lines too malformed to parse at all, dropped
    malformed_lines: int = 0
    #: patterns beyond the observed window (ATE truncation size)
    truncated_patterns: int = 0
    warnings: list[str] = field(default_factory=list)

    @property
    def quarantined(self) -> int:
        """Total strobes the sanitizer refused to treat as hard evidence."""
        return self.quarantined_atoms + self.masked_atoms

    @property
    def anomalies(self) -> int:
        """Total detected anomalies of every class (0 == pristine log)."""
        return (
            self.duplicate_records
            + self.contradictory_records
            + self.quarantined_atoms
            + self.masked_atoms
            + self.duplicate_strobe_tokens
            + self.out_of_range_records
            + self.beyond_window_records
            + self.malformed_lines
        )

    def warn(self, message: str, cap: int = 20) -> None:
        """Record a human-readable warning (bounded; floods summarize)."""
        if len(self.warnings) < cap:
            self.warnings.append(message)
        elif len(self.warnings) == cap:
            self.warnings.append("... further warnings suppressed")

    def to_dict(self) -> dict:
        return {
            "duplicate_records": self.duplicate_records,
            "contradictory_records": self.contradictory_records,
            "quarantined_atoms": self.quarantined_atoms,
            "masked_atoms": self.masked_atoms,
            "duplicate_strobe_tokens": self.duplicate_strobe_tokens,
            "out_of_range_records": self.out_of_range_records,
            "beyond_window_records": self.beyond_window_records,
            "malformed_lines": self.malformed_lines,
            "truncated_patterns": self.truncated_patterns,
            "warnings": list(self.warnings),
        }

    def describe(self) -> str:
        counters = {
            key: value
            for key, value in self.to_dict().items()
            if key != "warnings" and value
        }
        if not counters:
            return "ingestion clean: no anomalies detected"
        body = ", ".join(f"{key}={value}" for key, value in counters.items())
        return f"ingestion anomalies: {body}"


@dataclass
class SanitizedLog:
    """Outcome of one quarantining ingestion."""

    #: hard evidence only; disputed/masked strobes live in ``datalog.x_atoms``
    datalog: Datalog
    report: IngestReport
    raw: RawLog

    @property
    def clean(self) -> bool:
        return self.report.anomalies == 0


def sanitize(raw: RawLog, report: IngestReport | None = None) -> SanitizedLog:
    """Quarantining ingestion: raw records -> tiered :class:`Datalog`.

    Never raises on *semantic* anomalies.  Each detected class is counted
    on the :class:`IngestReport`; contradictory strobes -- outputs that
    some record of a pattern claims failing and another omits -- are
    demoted to the unobserved-X tier (soft-fail), where the three-valued
    diagnosis semantics treat them as evidence-free.  Strobes every
    record agrees on stay hard-fail; explicit ``xmask`` annotations join
    the X tier.  A pristine raw log sanitizes to exactly the strict-parse
    datalog (the machinery is inert on clean data).
    """
    report = report or IngestReport()
    n_patterns = raw.n_patterns
    window = raw.observed_window
    report.truncated_patterns = n_patterns - window

    by_pattern: dict[int, list[frozenset[str]]] = {}
    masked: set[Atom] = set()
    for rec in raw.records:
        idx = rec.pattern_index
        if idx < 0 or idx >= n_patterns:
            report.out_of_range_records += 1
            report.warn(
                f"pattern {idx}: record outside the {n_patterns}-pattern "
                "budget, dropped"
            )
            continue
        if idx >= window:
            report.beyond_window_records += 1
            report.warn(
                f"pattern {idx}: record beyond the observed window of "
                f"{window} patterns, treated as unobserved"
            )
            continue
        tokens = list(rec.outputs)
        repeated = len(tokens) - len(set(tokens))
        if repeated:
            report.duplicate_strobe_tokens += repeated
            report.warn(
                f"pattern {idx}: {repeated} repeated strobe token(s) "
                "within one record"
            )
        outs = frozenset(tokens)
        if rec.kind == "xmask":
            masked.update((idx, out) for out in outs)
        else:
            by_pattern.setdefault(idx, []).append(outs)

    hard_records: list[FailRecord] = []
    soft: set[Atom] = set()
    for idx, claims in sorted(by_pattern.items()):
        agreed = frozenset.intersection(*claims)
        union = frozenset.union(*claims)
        if len(claims) > 1:
            if all(claim == claims[0] for claim in claims[1:]):
                report.duplicate_records += len(claims) - 1
                report.warn(
                    f"pattern {idx}: {len(claims)} identical records, "
                    "deduplicated"
                )
            else:
                report.contradictory_records += 1
                disputed = union - agreed
                report.quarantined_atoms += len(disputed)
                report.warn(
                    f"pattern {idx}: {len(claims)} contradictory records; "
                    f"{len(disputed)} disputed strobe(s) quarantined to X"
                )
                soft.update((idx, out) for out in disputed)
        # A strobe both failing and X-masked is itself a contradiction:
        # the mask wins (the read was not trustworthy), the fail claim is
        # quarantined.
        masked_here = {out for out in agreed if (idx, out) in masked}
        if masked_here:
            report.quarantined_atoms += len(masked_here)
            report.warn(
                f"pattern {idx}: {len(masked_here)} strobe(s) both failing "
                "and X-masked; mask wins, fail claim quarantined"
            )
            agreed -= masked_here
        if agreed:
            hard_records.append(FailRecord(idx, agreed))
    report.masked_atoms = len(masked)
    # Soft (disputed) strobes that also carry an explicit mask are already
    # X; count them once.
    x_atoms = soft | masked

    datalog = Datalog(
        raw.circuit_name,
        n_patterns,
        hard_records,
        n_observed=window,
        x_atoms=x_atoms,
    )
    return SanitizedLog(datalog=datalog, report=report, raw=raw)


def parse_raw_text(text: str, report: IngestReport | None = None) -> RawLog:
    """Tolerant parse of the datalog text format into a :class:`RawLog`.

    Unlike :meth:`Datalog.from_text`, semantic anomalies (duplicates,
    disorder, out-of-window indices) survive into the raw records for the
    sanitizer to judge, and syntactically hopeless lines are counted and
    skipped (``malformed_lines``) instead of raising.  Only a header too
    broken to size the log raises.
    """
    report = report or IngestReport()
    circuit_name = "unknown"
    n_patterns: int | None = None
    n_observed: int | None = None
    records: list[RawRecord] = []
    for lineno, rawline in enumerate(text.splitlines(), start=1):
        line = rawline.strip()
        if not line:
            continue
        if line.startswith("#"):
            for token in line[1:].split():
                for key in ("patterns", "observed"):
                    if token.startswith(f"{key}="):
                        value = token.split("=", 1)[1]
                        try:
                            parsed = int(value)
                        except ValueError:
                            raise DatalogError(
                                f"line {lineno}: bad {key}= value {value!r}"
                            ) from None
                        if parsed < 0:
                            raise DatalogError(
                                f"line {lineno}: {key}= must be >= 0, "
                                f"got {parsed}"
                            )
                        if key == "patterns":
                            n_patterns = parsed
                        else:
                            n_observed = parsed
                if token.startswith("circuit="):
                    circuit_name = token.split("=", 1)[1]
            continue
        if line.startswith("fail "):
            kind, body = "fail", line[5:]
        elif line.startswith("xmask "):
            kind, body = "xmask", line[6:]
        else:
            report.malformed_lines += 1
            report.warn(f"line {lineno}: unrecognized {line!r}, skipped")
            continue
        head, sep, tail = body.partition(":")
        try:
            index = int(head.strip())
        except ValueError:
            sep = ""
        if not sep:
            report.malformed_lines += 1
            report.warn(f"line {lineno}: malformed {kind} record, skipped")
            continue
        records.append(RawRecord(kind, index, tuple(tail.split())))
    if n_patterns is None:
        n_patterns = max(
            (rec.pattern_index for rec in records), default=-1
        ) + 1
    return RawLog(
        circuit_name=circuit_name,
        n_patterns=n_patterns,
        n_observed=n_observed,
        records=records,
    )


def ingest_text(text: str) -> SanitizedLog:
    """Tolerant parse + quarantine in one step (the CLI ingestion path)."""
    report = IngestReport()
    raw = parse_raw_text(text, report)
    return sanitize(raw, report)


__all__ = [
    "RawRecord",
    "RawLog",
    "NoiseModel",
    "FlipNoise",
    "DropNoise",
    "TruncateNoise",
    "XMaskNoise",
    "DuplicateNoise",
    "ComposedNoise",
    "parse_noise_spec",
    "apply_noise",
    "IngestReport",
    "SanitizedLog",
    "sanitize",
    "parse_raw_text",
    "ingest_text",
]
