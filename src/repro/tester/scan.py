"""Scan-chain coordinates: mapping logical outputs to tester space.

Real ATE fail logs do not name netlist outputs -- they report
``(cycle, chain, bit position)`` tuples for the scan cells that captured a
wrong value.  This module models that translation layer:

- :class:`ScanChainConfig` assigns every primary (pseudo) output of the
  combinational core to a position on one of N scan chains,
- :class:`ScanFail` is one tester-coordinate failure observation,
- :func:`to_tester_log` / :func:`from_tester_log` convert between the
  logical :class:`~repro.tester.datalog.Datalog` and the tester-side
  representation (text format included),

so the diagnosis flow can consume genuine tester-shaped input.  With one
capture per pattern, ``cycle`` equals the pattern index; the unload order
along the chain is position 0 first (closest to scan-out).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.circuit.netlist import Netlist
from repro.errors import DatalogError
from repro.tester.datalog import Datalog, FailRecord


@dataclass(frozen=True, order=True)
class ScanCell:
    """One scan cell: which chain it sits on and where."""

    chain: int
    position: int


@dataclass(frozen=True, order=True)
class ScanFail:
    """One tester failure observation in scan coordinates."""

    cycle: int  #: capture cycle == pattern index (one capture per pattern)
    chain: int
    position: int


class ScanChainConfig:
    """Assignment of the core's outputs onto scan chains.

    The default layout deals outputs onto ``n_chains`` chains round-robin
    in output-list order -- the balanced stitching a DFT tool would
    produce.  Custom layouts can be passed as an explicit mapping.
    """

    def __init__(
        self,
        netlist: Netlist,
        n_chains: int = 1,
        mapping: dict[str, ScanCell] | None = None,
    ):
        if n_chains < 1:
            raise DatalogError("a scan configuration needs >= 1 chain")
        self.netlist = netlist
        if mapping is None:
            mapping = {}
            counters = [0] * n_chains
            for index, out in enumerate(netlist.outputs):
                chain = index % n_chains
                mapping[out] = ScanCell(chain, counters[chain])
                counters[chain] += 1
        else:
            missing = set(netlist.outputs) - set(mapping)
            if missing:
                raise DatalogError(f"outputs without a scan cell: {sorted(missing)}")
            seen: set[ScanCell] = set()
            for cell in mapping.values():
                if cell in seen:
                    raise DatalogError(f"scan cell {cell} assigned twice")
                seen.add(cell)
        self.cell_of: dict[str, ScanCell] = dict(mapping)
        self.output_of: dict[ScanCell, str] = {
            cell: out for out, cell in self.cell_of.items()
        }
        self.n_chains = 1 + max(cell.chain for cell in self.cell_of.values())

    def chain_length(self, chain: int) -> int:
        return sum(1 for cell in self.cell_of.values() if cell.chain == chain)


def to_tester_log(config: ScanChainConfig, datalog: Datalog) -> list[ScanFail]:
    """Translate a logical datalog into tester-coordinate failures."""
    fails: list[ScanFail] = []
    for record in datalog.records:
        for out in record.failing_outputs:
            cell = config.cell_of.get(out)
            if cell is None:
                raise DatalogError(f"output {out!r} has no scan cell")
            fails.append(ScanFail(record.pattern_index, cell.chain, cell.position))
    fails.sort()
    return fails


def from_tester_log(
    config: ScanChainConfig,
    fails: Iterable[ScanFail],
    n_patterns: int,
    circuit_name: str | None = None,
) -> Datalog:
    """Translate tester-coordinate failures back into a logical datalog."""
    per_pattern: dict[int, set[str]] = {}
    for fail in fails:
        out = config.output_of.get(ScanCell(fail.chain, fail.position))
        if out is None:
            raise DatalogError(
                f"no scan cell at chain {fail.chain} position {fail.position}"
            )
        per_pattern.setdefault(fail.cycle, set()).add(out)
    records = [
        FailRecord(cycle, frozenset(outs)) for cycle, outs in per_pattern.items()
    ]
    return Datalog(
        circuit_name or config.netlist.name, n_patterns, records
    )


def format_tester_log(fails: Sequence[ScanFail]) -> str:
    """STIL-flavored plain-text rendering: one observation per line."""
    lines = ["# cycle chain position"]
    lines += [f"{f.cycle} {f.chain} {f.position}" for f in fails]
    return "\n".join(lines) + "\n"


def parse_tester_log(text: str) -> list[ScanFail]:
    fails: list[ScanFail] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) != 3:
            raise DatalogError(f"line {lineno}: expected 'cycle chain position'")
        try:
            cycle, chain, position = (int(p) for p in parts)
        except ValueError:
            raise DatalogError(f"line {lineno}: non-integer field") from None
        fails.append(ScanFail(cycle, chain, position))
    return fails
