"""Shared fixtures and reference implementations for the test suite.

The deliberately naive :func:`naive_simulate` is the oracle all
bit-parallel simulators are checked against: it evaluates one pattern at a
time with straightforward Python semantics and no packing tricks.
"""

from __future__ import annotations

import pytest

from repro.circuit.builder import NetlistBuilder
from repro.circuit.gates import GateKind
from repro.circuit.generators import c17, ripple_carry_adder
from repro.circuit.netlist import Netlist, Site
from repro.sim.patterns import PatternSet


def naive_gate_eval(kind: GateKind, ins: list[int]) -> int:
    """Scalar reference semantics for every gate kind."""
    if kind is GateKind.AND:
        return int(all(ins))
    if kind is GateKind.NAND:
        return int(not all(ins))
    if kind is GateKind.OR:
        return int(any(ins))
    if kind is GateKind.NOR:
        return int(not any(ins))
    if kind is GateKind.XOR:
        return sum(ins) % 2
    if kind is GateKind.XNOR:
        return (sum(ins) + 1) % 2
    if kind is GateKind.BUF:
        return ins[0]
    if kind is GateKind.NOT:
        return 1 - ins[0]
    if kind is GateKind.MUX:
        a, b, sel = ins
        return b if sel else a
    if kind is GateKind.CONST0:
        return 0
    if kind is GateKind.CONST1:
        return 1
    raise AssertionError(f"unhandled kind {kind}")


def naive_simulate(netlist: Netlist, assignment: dict[str, int]) -> dict[str, int]:
    """One-pattern reference simulation."""
    values = dict(assignment)
    for net in netlist.topo_order:
        gate = netlist.gates[net]
        values[net] = naive_gate_eval(gate.kind, [values[s] for s in gate.inputs])
    return values


def naive_simulate_patterns(netlist: Netlist, patterns: PatternSet) -> dict[str, int]:
    """Bit-packed result assembled from per-pattern naive simulation."""
    packed = {net: 0 for net in netlist.nets()}
    for i in range(patterns.n):
        values = naive_simulate(netlist, patterns.pattern(i))
        for net, v in values.items():
            packed[net] |= v << i
    return packed


@pytest.fixture
def c17_netlist() -> Netlist:
    return c17()


@pytest.fixture
def rca4() -> Netlist:
    return ripple_carry_adder(4)


@pytest.fixture
def tiny_and() -> Netlist:
    """z = (a AND b) OR c -- used by many behavioral unit tests."""
    b = NetlistBuilder("tiny")
    a, bb, c = b.inputs("a", "b", "c")
    ab = b.and_(a, bb, name="ab")
    b.output(b.or_(ab, c, name="z"))
    return b.build()


@pytest.fixture
def fanout_circuit() -> Netlist:
    """One stem with two reconvergent branches (stem analysis exercises)."""
    b = NetlistBuilder("fanout")
    a, c = b.inputs("a", "c")
    stem = b.not_(a, name="stem")
    left = b.and_(stem, c, name="left")
    right = b.or_(stem, c, name="right")
    b.output(b.xor(left, right, name="z"))
    return b.build()


def all_patterns(netlist: Netlist) -> PatternSet:
    return PatternSet.exhaustive(netlist)


def site_by_name(netlist: Netlist, text: str) -> Site:
    site = Site.parse(text)
    netlist.validate_site(site)
    return site


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow-examples",
        action="store_true",
        default=False,
        help="also smoke-test the campaign-heavy examples",
    )
