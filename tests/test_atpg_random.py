"""Random+compaction ATPG flow and transition test generation."""

import pytest

from repro.atpg.random_gen import generate_stuck_at_tests
from repro.atpg.transition import generate_transition_tests
from repro.circuit.generators import c17, parity_tree, ripple_carry_adder
from repro.circuit.netlist import Site
from repro.faults.collapse import collapse_stuck_at
from repro.faults.models import TransitionDefect, TransitionKind
from repro.sim.faultsim import detect_vector, fault_coverage


@pytest.mark.parametrize("make", [c17, lambda: ripple_carry_adder(4), lambda: parity_tree(8)])
def test_full_coverage_on_small_circuits(make):
    netlist = make()
    report = generate_stuck_at_tests(netlist, seed=3)
    assert report.coverage == 1.0
    assert report.n_aborted == 0
    # Re-grade independently.
    targets = collapse_stuck_at(netlist).representatives
    final = fault_coverage(netlist, report.patterns, targets)
    assert len(final.undetected) == report.n_untestable


def test_compaction_keeps_coverage():
    netlist = ripple_carry_adder(6)
    compact = generate_stuck_at_tests(netlist, seed=5, compact=True)
    loose = generate_stuck_at_tests(netlist, seed=5, compact=False)
    assert compact.coverage == pytest.approx(loose.coverage)
    assert compact.patterns.n <= loose.patterns.n


def test_deterministic_for_seed():
    a = generate_stuck_at_tests(c17(), seed=9)
    b = generate_stuck_at_tests(c17(), seed=9)
    assert a.patterns == b.patterns


def test_report_accounting():
    report = generate_stuck_at_tests(c17(), seed=1)
    assert report.n_faults == len(collapse_stuck_at(c17()).representatives)
    assert report.n_detected + report.n_untestable + report.n_aborted >= report.n_detected
    assert 0 < report.collapse_ratio <= 1.0


class TestTransitionAtpg:
    def test_pairs_detect_their_targets(self):
        netlist = c17()
        sites = [Site(net) for net in list(netlist.nets())[:6]]
        report = generate_transition_tests(netlist, sites, seed=4)
        assert report.patterns.n % 2 == 0
        assert report.coverage > 0.5
        # Every covered target must actually be detected by the pattern set
        # under the consecutive-pair delay semantics.
        detected = 0
        for site in sites:
            for kind in TransitionKind:
                vec = detect_vector(netlist, report.patterns, TransitionDefect(site, kind))
                detected += bool(vec)
        assert detected >= report.n_covered

    def test_default_sites_all_stems(self):
        netlist = c17()
        report = generate_transition_tests(netlist, seed=4)
        assert report.n_targets == 2 * netlist.n_nets
