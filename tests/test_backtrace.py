"""Structural candidate extraction and critical path tracing."""

import pytest

from repro.circuit.generators import random_dag
from repro.circuit.netlist import Site
from repro.core.backtrace import candidate_sites, cpt_trace, flip_criticality
from repro.sim.logicsim import simulate
from repro.sim.patterns import PatternSet
from repro.tester.datalog import Datalog, FailRecord


class TestCandidateSites:
    def test_envelope_is_union_of_cones(self, c17_netlist):
        datalog = Datalog("c17", 4, [FailRecord(1, frozenset({"22"}))])
        sites = candidate_sites(c17_netlist, datalog)
        nets = {s.net for s in sites}
        assert nets == c17_netlist.fanin_cone(["22"])

    def test_multiple_patterns_union(self, c17_netlist):
        datalog = Datalog(
            "c17",
            4,
            [FailRecord(0, frozenset({"22"})), FailRecord(2, frozenset({"23"}))],
        )
        nets = {s.net for s in candidate_sites(c17_netlist, datalog)}
        assert nets == c17_netlist.fanin_cone(["22", "23"])

    def test_branch_sites_inside_envelope_only(self, c17_netlist):
        datalog = Datalog("c17", 4, [FailRecord(1, frozenset({"22"}))])
        sites = candidate_sites(c17_netlist, datalog)
        for site in sites:
            if site.branch:
                assert site.branch[0] in c17_netlist.fanin_cone(["22"])

    def test_no_branches_flag(self, c17_netlist):
        datalog = Datalog("c17", 4, [FailRecord(1, frozenset({"22"}))])
        assert all(
            s.is_stem
            for s in candidate_sites(c17_netlist, datalog, include_branches=False)
        )

    def test_deterministic_order(self, c17_netlist):
        datalog = Datalog("c17", 4, [FailRecord(1, frozenset({"22", "23"}))])
        a = candidate_sites(c17_netlist, datalog)
        b = candidate_sites(c17_netlist, datalog)
        assert a == b


class TestFlipCriticality:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_matches_per_pattern_brute_force(self, seed):
        n = random_dag(50, n_inputs=6, n_outputs=4, seed=seed)
        pats = PatternSet.random(n, 12, seed=seed)
        base = simulate(n, pats)
        from tests.conftest import naive_simulate

        for site in [s for s in n.sites() if s.is_stem][::5]:
            crit = flip_criticality(n, pats, site, base)
            for i in range(pats.n):
                assignment = pats.pattern(i)
                golden = naive_simulate(n, assignment)
                # brute-force: flip the net by evaluating with an override
                flipped = simulate(
                    n,
                    pats.subset([i]),
                    {site: (base[site.net] >> i & 1) ^ 1},
                )
                for out in n.outputs:
                    want = flipped[out] != golden[out]
                    got = bool(crit.get(out, 0) >> i & 1)
                    assert got == want, (site, i, out)


class TestCptTrace:
    @pytest.mark.parametrize("seed", [1, 3, 8])
    def test_sound_subset_of_flip_criticality(self, seed):
        """Every CPT-traced net truly flips the output (soundness).

        Completeness is NOT asserted: classic CPT misses multiple-path
        sensitization through non-critical stems -- the documented
        limitation that motivates the exact flip-based engine.
        """
        n = random_dag(40, n_inputs=6, n_outputs=3, seed=seed)
        pats = PatternSet.random(n, 6, seed=seed)
        base = simulate(n, pats)
        for out in n.outputs:
            for i in range(pats.n):
                traced = cpt_trace(n, pats, base, i, out)
                exact = {out}
                for net in n.nets():
                    if net == out:
                        continue
                    crit = flip_criticality(n, pats, Site(net), base)
                    if crit.get(out, 0) >> i & 1:
                        exact.add(net)
                assert traced <= exact, (out, i, traced - exact)

    def test_exact_on_tree_circuits(self):
        """On fanout-free circuits CPT is complete as well."""
        from repro.circuit.generators import parity_tree

        n = parity_tree(8)
        pats = PatternSet.random(n, 8, seed=2)
        base = simulate(n, pats)
        out = n.outputs[0]
        for i in range(pats.n):
            traced = cpt_trace(n, pats, base, i, out)
            exact = {out}
            for net in n.nets():
                if net == out:
                    continue
                crit = flip_criticality(n, pats, Site(net), base)
                if crit.get(out, 0) >> i & 1:
                    exact.add(net)
            assert traced == exact, (out, i)

    def test_critical_nets_include_output(self, c17_netlist):
        pats = PatternSet.exhaustive(c17_netlist)
        base = simulate(c17_netlist, pats)
        traced = cpt_trace(c17_netlist, pats, base, 0, "22")
        assert "22" in traced
