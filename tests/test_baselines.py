"""Single-fault and SLAT baseline behavior, including their failure modes."""

import pytest

from repro.circuit.builder import NetlistBuilder
from repro.circuit.generators import ripple_carry_adder
from repro.circuit.netlist import Site
from repro.core.single_fault import diagnose_single_fault
from repro.core.slat import diagnose_slat
from repro.faults.models import StuckAtDefect
from repro.sim.patterns import PatternSet
from repro.tester.harness import apply_test


@pytest.fixture(scope="module")
def rca6():
    return ripple_carry_adder(6)


@pytest.fixture(scope="module")
def pats(rca6):
    return PatternSet.random(rca6, 40, seed=61)


class TestSingleFaultBaseline:
    def test_exact_match_for_single_stuck(self, rca6, pats):
        fault = StuckAtDefect(Site("n12"), 0)
        result = apply_test(rca6, pats, [fault])
        report = diagnose_single_fault(rca6, pats, result.datalog)
        assert report.method == "single-stuck-at"
        # An exact (IoU=1) candidate exists and the true net is among them.
        assert report.multiplets[0].iou == 1.0
        assert any(c.site.net == "n12" for c in report.candidates)

    def test_degrades_for_double_defects(self, rca6, pats):
        defects = [StuckAtDefect(Site("a0"), 1), StuckAtDefect(Site("b5"), 0)]
        result = apply_test(rca6, pats, defects)
        report = diagnose_single_fault(rca6, pats, result.datalog)
        # No single fault reproduces the composite response.
        assert report.stats["n_exact_matches"] == 0
        assert report.stats["best_iou"] < 1.0

    def test_passing_device(self, rca6, pats):
        result = apply_test(rca6, pats, [])
        report = diagnose_single_fault(rca6, pats, result.datalog)
        assert not report.candidates


class TestSlatBaseline:
    def test_single_stuck_fully_slat(self, rca6, pats):
        fault = StuckAtDefect(Site("n12"), 0)
        result = apply_test(rca6, pats, [fault])
        report = diagnose_slat(rca6, pats, result.datalog)
        assert report.stats["n_non_slat_patterns"] == 0
        assert report.stats["slat_fraction"] == 1.0
        assert any(c.site.net == "n12" for c in report.candidates)

    def test_independent_doubles_stay_slat(self, rca6, pats):
        """Defects failing disjoint patterns keep every pattern SLAT."""
        defects = [StuckAtDefect(Site("a0"), 1), StuckAtDefect(Site("b5"), 0)]
        result = apply_test(rca6, pats, defects)
        report = diagnose_slat(rca6, pats, result.datalog)
        assert report.multiplets
        assert len({c.site for c in report.candidates}) >= 1

    def test_interacting_defects_create_non_slat_patterns(self):
        """Two defects failing disjoint-cone outputs on one pattern break
        the SLAT premise: no single site reaches both failing outputs."""
        b = NetlistBuilder("ns")
        p, q = b.inputs("p", "q")
        b.output(b.not_(p, name="z1"))
        b.output(b.not_(q, name="z2"))
        n = b.build()
        pats = PatternSet.from_vectors(n.inputs, [(0, 0), (0, 1), (1, 0), (1, 1)])
        defects = [StuckAtDefect(Site("p"), 1), StuckAtDefect(Site("q"), 1)]
        result = apply_test(n, pats, defects)
        # Pattern 0 (p=q=0): both outputs fail simultaneously.
        assert result.datalog.failing_outputs_of(0) == {"z1", "z2"}
        report = diagnose_slat(n, pats, result.datalog)
        # No single stuck-at flips both z1 and z2 (disjoint cones).
        assert report.stats["n_non_slat_patterns"] >= 1
        assert {(0, "z1"), (0, "z2")} <= set(report.uncovered_atoms)

    def test_passing_device(self, rca6, pats):
        result = apply_test(rca6, pats, [])
        report = diagnose_slat(rca6, pats, result.datalog)
        assert not report.candidates

    def test_tie_group_expansion(self, rca6, pats):
        """Equivalent faults (same per-test matches) are all reported."""
        fault = StuckAtDefect(Site("b1"), 1)
        result = apply_test(rca6, pats, [fault])
        report = diagnose_slat(rca6, pats, result.datalog)
        # b1 feeds XOR/AND gates; the fanout-free equivalents tie with it.
        assert len(report.candidates) >= 1
        sites = {c.site.net for c in report.candidates}
        assert "b1" in sites
