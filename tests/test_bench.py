"""Unit tests for ISCAS .bench parsing and writing."""

import itertools

import pytest

from repro.circuit.bench import C17_BENCH, parse_bench, parse_bench_file, write_bench
from repro.circuit.builder import NetlistBuilder
from repro.circuit.generators import mux_tree
from repro.errors import CircuitError, ParseError
from repro.sim.logicsim import simulate_outputs
from repro.sim.patterns import PatternSet

from tests.conftest import naive_simulate


class TestParse:
    def test_c17_shape(self):
        n = parse_bench(C17_BENCH, name="c17")
        assert len(n.inputs) == 5
        assert len(n.outputs) == 2
        assert n.n_gates == 6

    def test_comments_and_blank_lines_ignored(self):
        n = parse_bench("# hello\n\nINPUT(a)\nOUTPUT(z)\nz = NOT(a)\n")
        assert n.n_gates == 1

    def test_case_insensitive_kinds(self):
        n = parse_bench("INPUT(a)\nOUTPUT(z)\nz = nOt(a)\n")
        assert n.gates["z"].kind.value == "not"

    def test_buff_alias(self):
        n = parse_bench("INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n")
        assert n.gates["z"].kind.value == "buf"

    def test_unknown_kind(self):
        with pytest.raises(ParseError, match="unknown gate kind"):
            parse_bench("INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n")

    def test_garbage_line_reports_lineno(self):
        with pytest.raises(ParseError, match="line 2"):
            parse_bench("INPUT(a)\nwhat is this\n")

    def test_combinational_loop_rejected_at_parse(self):
        text = (
            "INPUT(a)\nOUTPUT(z)\n"
            "x = AND(a, y)\n"
            "y = OR(x, a)\n"
            "z = BUF(y)\n"
        )
        with pytest.raises(CircuitError) as info:
            parse_bench(text, name="loopy")
        # The error carries the circuit name and the looping nets, so a
        # broken benchmark file is locatable without a debugger.
        assert "loopy" in str(info.value)
        assert set(info.value.cycle) == {"x", "y"}
        assert "cycle" in str(info.value)

    def test_dff_scan_replacement(self):
        text = (
            "INPUT(clk_d)\nOUTPUT(q_obs)\n"
            "q = DFF(d_in)\n"
            "d_in = NOT(q)\n"
            "q_obs = BUFF(q)\n"
        )
        n = parse_bench(text)
        # q becomes a pseudo input; d_in a pseudo output.
        assert "q" in n.inputs
        assert "d_in" in n.outputs

    def test_dff_arity_error(self):
        with pytest.raises(ParseError, match="DFF"):
            parse_bench("INPUT(a)\nq = DFF(a, a)\n")

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "c17.bench"
        path.write_text(C17_BENCH)
        n = parse_bench_file(path)
        assert n.name == "c17"
        assert n.n_gates == 6


class TestWrite:
    def _functionally_equal(self, a, b, n_random=64):
        assert tuple(a.inputs) == tuple(b.inputs)
        assert tuple(a.outputs) == tuple(b.outputs)
        pats = PatternSet.random(a, n_random, seed=9)
        assert simulate_outputs(a, pats) == simulate_outputs(b, pats)

    def test_roundtrip_plain_gates(self):
        original = parse_bench(C17_BENCH, name="c17")
        again = parse_bench(write_bench(original), name="c17")
        self._functionally_equal(original, again)

    def test_roundtrip_lowers_mux(self):
        original = mux_tree(3)
        text = write_bench(original)
        assert "MUX" not in text
        again = parse_bench(text, name="muxtree3")
        self._functionally_equal(original, again)

    def test_roundtrip_lowers_consts(self):
        b = NetlistBuilder("consts")
        a = b.input("a")
        c0, c1 = b.const0(), b.const1()
        b.output(b.xor(a, c1, name="z1"))
        b.output(b.or_(a, c0, name="z0"))
        original = b.build()
        text = write_bench(original)
        assert "CONST" not in text.upper() or "=" in text
        again = parse_bench(text)
        for va in (0, 1):
            want = naive_simulate(original, {"a": va})
            got = naive_simulate(again, {"a": va})
            assert got["z1"] == want["z1"] and got["z0"] == want["z0"]
